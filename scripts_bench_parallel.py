"""Record the parallel-execution baseline (BENCH_parallel.json).

Times Table-1-class workloads serially and under
``MajicSession(parallel=N)`` — the MatlabMPI-style scatter/compute/
gather backend — and records per-workload wall times, speedups and the
message traffic.  Three rows cover the three sharding regimes:

* ``mandel`` — a **tile** plan with real row sharding: each rank
  computes its own block of the membership grid, so this is the row
  the speedup target applies to;
* ``fractal`` — a **tile** plan that replays the full RNG chain per
  rank (the iterate is sequentially dependent), so it demonstrates
  bit-identical sharding of a stochastic workload, not speedup;
* ``sor`` — the **replicate** plan: the parent computes inline and the
  ranks return distributed row blocks as a cross-check, so the
  parallel time measures pure supervision overhead.

Every parallel result is asserted **bit-identical** to the serial run
(bytes, shapes, dtypes — and for fractal the RNG post-state) before any
timing is reported; a mismatch aborts the script.

Speedup is machine-dependent: the JSON records ``cores`` (what the
container actually offers) and the CI gate only enforces a speedup
floor when at least two cores are present.  Bit-identity is enforced
unconditionally.

Usage::

    PYTHONPATH=src python scripts_bench_parallel.py [--quick]
        [--workers N] [--repeats N] [--transport file|pipe] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform as host_platform
import time

from repro.benchsuite.registry import source_of
from repro.benchsuite.workloads import boxed_workload
from repro.core.majic import MajicSession
from repro.runtime.builtins import GLOBAL_RANDOM

SEED = 20020617


def workloads(quick: bool) -> dict:
    return {
        "mandel": {
            "scale": (120, 80) if quick else (250, 100),
            "plan": "tile",
        },
        "fractal": {
            "scale": (2000,) if quick else (20000,),
            "plan": "tile",
        },
        "sor": {
            "scale": (30, 1.5, 1e-6, 80) if quick else
                     (60, 1.5, 1e-8, 200),
            "plan": "replicate",
        },
    }


def fingerprint(outputs) -> tuple:
    import numpy as np

    parts = []
    for value in outputs:
        data = np.ascontiguousarray(value.view())
        parts.append((data.shape, str(data.dtype), data.tobytes()))
    return tuple(parts)


def run_once(session, name, scale):
    GLOBAL_RANDOM.seed(SEED)
    args = boxed_workload(name, scale)
    start = time.perf_counter()
    outputs = session.call_boxed(name, args, nargout=1)
    elapsed = time.perf_counter() - start
    return elapsed, fingerprint(outputs), GLOBAL_RANDOM.snapshot()


def bench_engine(name, spec, repeats, parallel=None, transport="file"):
    kwargs = {}
    if parallel:
        kwargs = {"parallel": parallel, "parallel_transport": transport}
    session = MajicSession(**kwargs)
    try:
        session.add_source(source_of(name))
        _, digest, rng = run_once(session, name, spec["scale"])  # warm
        best = math.inf
        for _ in range(repeats):
            elapsed, again, rng2 = run_once(session, name, spec["scale"])
            assert again == digest and rng2 == rng, (
                f"{name}: nondeterministic across repeats"
            )
            best = min(best, elapsed)
        fallbacks = session.diagnostics.counts().get("parallel_fallback", 0)
        return best, digest, rng, fallbacks
    finally:
        session.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small scales / few repeats (CI smoke)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker ranks (default: min(4, cores))")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--transport", default="file",
                        choices=("file", "pipe"))
    parser.add_argument("--out", default="BENCH_parallel.json")
    options = parser.parse_args(argv)
    cores = os.cpu_count() or 1
    workers = options.workers or max(2, min(4, cores))
    repeats = options.repeats or (3 if options.quick else 5)

    per_workload: dict[str, dict] = {}
    for name, spec in workloads(options.quick).items():
        serial_s, serial_digest, serial_rng, _ = bench_engine(
            name, spec, repeats
        )
        parallel_s, parallel_digest, parallel_rng, fallbacks = bench_engine(
            name, spec, repeats, parallel=workers,
            transport=options.transport,
        )
        bit_identical = (
            parallel_digest == serial_digest and parallel_rng == serial_rng
        )
        assert bit_identical, (
            f"{name}: parallel result diverged from the serial run"
        )
        assert fallbacks == 0, (
            f"{name}: {fallbacks} parallel calls fell back to serial"
        )
        speedup = serial_s / parallel_s
        per_workload[name] = {
            "plan": spec["plan"],
            "scale": list(spec["scale"]),
            "serial_s": round(serial_s, 6),
            "parallel_s": round(parallel_s, 6),
            "speedup": round(speedup, 4),
            "bit_identical": True,
        }
        print(f"{name:>8} [{spec['plan']:9}]: serial {serial_s:.4f}s  "
              f"parallel({workers}) {parallel_s:.4f}s  x{speedup:.2f}  "
              f"bit-identical")

    result = {
        "description": "MatlabMPI-style parallel backend vs serial "
                       "execution; best-of-N single-call wall times",
        "quick": options.quick,
        "repeats": repeats,
        "workers": workers,
        "transport": options.transport,
        "cores": cores,
        "python": host_platform.python_version(),
        "machine": host_platform.machine(),
        "workloads": per_workload,
        "mandel_speedup": per_workload["mandel"]["speedup"],
        "all_bit_identical": True,
    }
    with open(options.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"cores={cores} workers={workers} "
          f"mandel speedup x{result['mandel_speedup']}")
    if cores < 2:
        print("note: single-core machine; speedup is not meaningful here "
              "(bit-identity still enforced)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
