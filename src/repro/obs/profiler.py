"""A MATLAB-``profile``-style profiler sourced from the span tree.

MATLAB users ask ``profile on``, run their code, then ``profile report``;
:class:`Profiler` reproduces that surface on :class:`MajicSession`
(``session.profile("on") / ("off") / ("report")``).  Per-function call
counts, cumulative time and **self** time are reported split by execution
tier — interpreter, JIT-compiled, or repository-served speculative code —
which is exactly the visibility the Section 2.2.1 degradation contract
needs: a function silently demoted to interpretation shows up in the
report under the wrong tier with the wrong self time, instead of hiding.

There is deliberately no second timing mechanism here: the profiler
consumes the same execution spans the tracer records, and the Figure 6
:class:`~repro.core.timing.ExecutionBreakdown` is derived from the same
spans (``ExecutionBreakdown.from_spans``), so the profiler's total self
time and the breakdown's execution total agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import NULL_TRACER, self_times

#: Span category recorded around every function execution (compiled or
#: interpreted) by the repository.
EXECUTION = "execution"
#: Span categories the per-rank attribution buckets (MatlabMPI splits a
#: parallel run's time the same way: launch / communication / computation).
LAUNCH = "launch"
MPI = "mpi"


@dataclass
class RankAttribution:
    """One rank's launch/communication/computation split (MatlabMPI-style)."""

    rank: int
    launch_s: float = 0.0   # rank boot: fork + session construction
    comm_s: float = 0.0     # MPI_Send/MPI_Recv time attached to real work
    comp_s: float = 0.0     # execution-span self time on that rank

    @property
    def total_s(self) -> float:
        return self.launch_s + self.comm_s + self.comp_s


def rank_attribution(spans) -> list[RankAttribution]:
    """Split the span window's time per rank into the MatlabMPI columns.

    *Launch* is the ``launch``-category spans (each rank records one
    ``rank_boot``).  *Communication* is ``mpi``-category spans **with a
    parent** — a worker's idle wait for its next task is a parentless
    ``MPI_Recv`` and counts as neither communication nor computation.
    *Computation* is the exclusive (self) time of ``execution`` spans.
    """
    exclusive = self_times(spans)
    rows: dict[int, RankAttribution] = {}

    def row(rank: int) -> RankAttribution:
        entry = rows.get(rank)
        if entry is None:
            entry = rows[rank] = RankAttribution(rank=rank)
        return entry

    for span in spans:
        rank = getattr(span, "rank", 0)
        if span.category == LAUNCH:
            row(rank).launch_s += span.duration
        elif span.category == MPI and span.parent_id is not None:
            row(rank).comm_s += span.duration
        elif span.category == EXECUTION:
            row(rank).comp_s += exclusive[span.span_id]
    return sorted(rows.values(), key=lambda entry: entry.rank)


@dataclass
class FunctionProfile:
    """One (function, tier) row of the report."""

    function: str
    tier: str
    calls: int
    total_s: float   # cumulative: sum over activations (recursion nests)
    self_s: float    # exclusive: child spans (callees, compiles) removed


class ProfileReport:
    """The ``profile report`` result: rows sorted by self time."""

    def __init__(
        self,
        entries: list[FunctionProfile],
        window_s: float = 0.0,
        ranks: list[RankAttribution] | None = None,
    ):
        self.entries = sorted(
            entries, key=lambda e: (-e.self_s, e.function, e.tier)
        )
        self.window_s = window_s
        self.ranks = list(ranks or ())

    @property
    def total_self_s(self) -> float:
        """Total exclusive execution time — by construction equal to the
        ``execution`` total of the span-derived :class:`ExecutionBreakdown`."""
        return sum(entry.self_s for entry in self.entries)

    @property
    def total_calls(self) -> int:
        return sum(entry.calls for entry in self.entries)

    def row(self, function: str, tier: str | None = None) -> FunctionProfile | None:
        for entry in self.entries:
            if entry.function == function and (tier is None or entry.tier == tier):
                return entry
        return None

    def render(self) -> str:
        header = (
            f"{'function':<20} {'tier':<12} {'calls':>7} "
            f"{'total (s)':>11} {'self (s)':>11}"
        )
        lines = ["Profile report (self time, descending)", header,
                 "-" * len(header)]
        for entry in self.entries:
            lines.append(
                f"{entry.function:<20} {entry.tier:<12} {entry.calls:>7} "
                f"{entry.total_s:>11.6f} {entry.self_s:>11.6f}"
            )
        lines.append(
            f"{'TOTAL':<20} {'':<12} {self.total_calls:>7} "
            f"{'':>11} {self.total_self_s:>11.6f}"
        )
        # The per-rank section only appears when the window shows actual
        # distributed activity: several ranks, or launch/comm time on one.
        distributed = len(self.ranks) > 1 or any(
            entry.launch_s or entry.comm_s for entry in self.ranks
        )
        if distributed:
            rank_header = (
                f"{'rank':>4} {'launch (s)':>11} {'comm (s)':>11} "
                f"{'comp (s)':>11} {'total (s)':>11}"
            )
            lines += ["", "Per-rank attribution (MatlabMPI columns)",
                      rank_header, "-" * len(rank_header)]
            for entry in self.ranks:
                lines.append(
                    f"{entry.rank:>4} {entry.launch_s:>11.6f} "
                    f"{entry.comm_s:>11.6f} {entry.comp_s:>11.6f} "
                    f"{entry.total_s:>11.6f}"
                )
        return "\n".join(lines)

    def rank_row(self, rank: int) -> RankAttribution | None:
        for entry in self.ranks:
            if entry.rank == rank:
                return entry
        return None

    def __str__(self) -> str:
        return self.render()


def report_from_spans(spans, window_s: float = 0.0) -> ProfileReport:
    """Aggregate execution spans into per-(function, tier) rows."""
    exclusive = self_times(spans)
    rows: dict[tuple[str, str], FunctionProfile] = {}
    for span in spans:
        if span.category != EXECUTION:
            continue
        tier = str(span.args.get("tier", "unknown"))
        key = (span.name, tier)
        entry = rows.get(key)
        if entry is None:
            entry = rows[key] = FunctionProfile(
                function=span.name, tier=tier, calls=0,
                total_s=0.0, self_s=0.0,
            )
        entry.calls += 1
        entry.total_s += span.duration
        entry.self_s += exclusive[span.span_id]
    return ProfileReport(
        list(rows.values()), window_s=window_s,
        ranks=rank_attribution(spans),
    )


class Profiler:
    """``profile on/off/report/clear`` state machine over one session's
    observability object (enables tracing on demand, restoring the
    previous recorder on ``off`` when it owned the switch)."""

    def __init__(self, obs):
        self.obs = obs
        self.active = False
        self._owns_tracer = False
        self._start_index = 0
        self._stop_index: int | None = None

    def on(self) -> None:
        if self.active:
            return
        if not self.obs.tracer.enabled:
            self.obs.enable_tracing()
            self._owns_tracer = True
        self._start_index = len(self.obs.tracer.spans())
        self._stop_index = None
        self.active = True

    def off(self) -> None:
        if not self.active:
            return
        self._stop_index = len(self.obs.tracer.spans())
        self.active = False
        if self._owns_tracer:
            # Keep the recorded spans for the report; stop recording new
            # ones by detaching the recorder the profiler installed.
            self._window = self.obs.tracer.spans()[self._start_index:]
            self.obs.disable_tracing()
            self._owns_tracer = False
            self._start_index = 0
            self._stop_index = len(self._window)

    def clear(self) -> None:
        self.active = False
        self._start_index = len(self.obs.tracer.spans())
        self._stop_index = None
        self._window = ()

    _window: tuple = ()

    def _spans(self):
        if self._owns_tracer or self.obs.tracer.enabled:
            spans = self.obs.tracer.spans()
            stop = (
                len(spans) if self._stop_index is None else self._stop_index
            )
            return spans[self._start_index:stop]
        return self._window

    def report(self) -> ProfileReport:
        spans = self._spans()
        window = 0.0
        if spans:
            window = max(s.start + s.duration for s in spans) - min(
                s.start for s in spans
            )
        return report_from_spans(spans, window_s=window)

    def spans(self):
        """The profiled window's raw spans (breakdown derivation)."""
        return tuple(self._spans())
