"""A MATLAB-``profile``-style profiler sourced from the span tree.

MATLAB users ask ``profile on``, run their code, then ``profile report``;
:class:`Profiler` reproduces that surface on :class:`MajicSession`
(``session.profile("on") / ("off") / ("report")``).  Per-function call
counts, cumulative time and **self** time are reported split by execution
tier — interpreter, JIT-compiled, or repository-served speculative code —
which is exactly the visibility the Section 2.2.1 degradation contract
needs: a function silently demoted to interpretation shows up in the
report under the wrong tier with the wrong self time, instead of hiding.

There is deliberately no second timing mechanism here: the profiler
consumes the same execution spans the tracer records, and the Figure 6
:class:`~repro.core.timing.ExecutionBreakdown` is derived from the same
spans (``ExecutionBreakdown.from_spans``), so the profiler's total self
time and the breakdown's execution total agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import NULL_TRACER, self_times

#: Span category recorded around every function execution (compiled or
#: interpreted) by the repository.
EXECUTION = "execution"


@dataclass
class FunctionProfile:
    """One (function, tier) row of the report."""

    function: str
    tier: str
    calls: int
    total_s: float   # cumulative: sum over activations (recursion nests)
    self_s: float    # exclusive: child spans (callees, compiles) removed


class ProfileReport:
    """The ``profile report`` result: rows sorted by self time."""

    def __init__(self, entries: list[FunctionProfile], window_s: float = 0.0):
        self.entries = sorted(
            entries, key=lambda e: (-e.self_s, e.function, e.tier)
        )
        self.window_s = window_s

    @property
    def total_self_s(self) -> float:
        """Total exclusive execution time — by construction equal to the
        ``execution`` total of the span-derived :class:`ExecutionBreakdown`."""
        return sum(entry.self_s for entry in self.entries)

    @property
    def total_calls(self) -> int:
        return sum(entry.calls for entry in self.entries)

    def row(self, function: str, tier: str | None = None) -> FunctionProfile | None:
        for entry in self.entries:
            if entry.function == function and (tier is None or entry.tier == tier):
                return entry
        return None

    def render(self) -> str:
        header = (
            f"{'function':<20} {'tier':<12} {'calls':>7} "
            f"{'total (s)':>11} {'self (s)':>11}"
        )
        lines = ["Profile report (self time, descending)", header,
                 "-" * len(header)]
        for entry in self.entries:
            lines.append(
                f"{entry.function:<20} {entry.tier:<12} {entry.calls:>7} "
                f"{entry.total_s:>11.6f} {entry.self_s:>11.6f}"
            )
        lines.append(
            f"{'TOTAL':<20} {'':<12} {self.total_calls:>7} "
            f"{'':>11} {self.total_self_s:>11.6f}"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def report_from_spans(spans, window_s: float = 0.0) -> ProfileReport:
    """Aggregate execution spans into per-(function, tier) rows."""
    exclusive = self_times(spans)
    rows: dict[tuple[str, str], FunctionProfile] = {}
    for span in spans:
        if span.category != EXECUTION:
            continue
        tier = str(span.args.get("tier", "unknown"))
        key = (span.name, tier)
        entry = rows.get(key)
        if entry is None:
            entry = rows[key] = FunctionProfile(
                function=span.name, tier=tier, calls=0,
                total_s=0.0, self_s=0.0,
            )
        entry.calls += 1
        entry.total_s += span.duration
        entry.self_s += exclusive[span.span_id]
    return ProfileReport(list(rows.values()), window_s=window_s)


class Profiler:
    """``profile on/off/report/clear`` state machine over one session's
    observability object (enables tracing on demand, restoring the
    previous recorder on ``off`` when it owned the switch)."""

    def __init__(self, obs):
        self.obs = obs
        self.active = False
        self._owns_tracer = False
        self._start_index = 0
        self._stop_index: int | None = None

    def on(self) -> None:
        if self.active:
            return
        if not self.obs.tracer.enabled:
            self.obs.enable_tracing()
            self._owns_tracer = True
        self._start_index = len(self.obs.tracer.spans())
        self._stop_index = None
        self.active = True

    def off(self) -> None:
        if not self.active:
            return
        self._stop_index = len(self.obs.tracer.spans())
        self.active = False
        if self._owns_tracer:
            # Keep the recorded spans for the report; stop recording new
            # ones by detaching the recorder the profiler installed.
            self._window = self.obs.tracer.spans()[self._start_index:]
            self.obs.disable_tracing()
            self._owns_tracer = False
            self._start_index = 0
            self._stop_index = len(self._window)

    def clear(self) -> None:
        self.active = False
        self._start_index = len(self.obs.tracer.spans())
        self._stop_index = None
        self._window = ()

    _window: tuple = ()

    def _spans(self):
        if self._owns_tracer or self.obs.tracer.enabled:
            spans = self.obs.tracer.spans()
            stop = (
                len(spans) if self._stop_index is None else self._stop_index
            )
            return spans[self._start_index:stop]
        return self._window

    def report(self) -> ProfileReport:
        spans = self._spans()
        window = 0.0
        if spans:
            window = max(s.start + s.duration for s in spans) - min(
                s.start for s in spans
            )
        return report_from_spans(spans, window_s=window)

    def spans(self):
        """The profiled window's raw spans (breakdown derivation)."""
        return tuple(self._spans())
