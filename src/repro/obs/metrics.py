"""Counters, gauges and histograms for session-level aggregates.

Where :mod:`repro.obs.trace` answers "what happened, in what order, on
which thread", the metrics registry answers the steady-state questions:
what fraction of calls is still interpreted, what the cache hit ratio is,
how deep the speculation queue runs, how long each compile phase takes.
MatlabMPI's experience (Kepner & Ahalt, 2002) is the motivating precedent:
once a MATLAB system goes concurrent, per-worker aggregate counters are
the prerequisite for every scaling claim.

The model is deliberately the Prometheus one (see
:mod:`repro.obs.export_prom` for the text exposition):

* a **Counter** only goes up (``inc``);
* a **Gauge** is a set/inc/dec value (queue depth);
* a **Histogram** observes values into cumulative buckets plus a running
  sum/count (compile latency per phase).

Every instrument supports label dimensions (``labels(tier="jit")``),
children are created on first use, and all mutation is lock-protected so
background speculation workers and the foreground session can share one
registry.  The disabled counterpart (:data:`NULL_METRICS`) hands out one
shared no-op instrument, keeping the metrics-off path allocation-free.
"""

from __future__ import annotations

import threading

#: Default histogram buckets, tuned for compile/execute latencies in
#: seconds (sub-millisecond JIT phases up to multi-second source builds).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _Instrument:
    """Common label plumbing: a parent instrument owns one child per
    label-value combination; an unlabelled instrument is its own child."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: tuple = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def labels(self, **labelvalues):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _self_child(self):
        """The single child of an unlabelled instrument."""
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled {self.labelnames}; use .labels()"
            )
        return self.labels()

    def _make_child(self):
        raise NotImplementedError

    def samples(self) -> list[tuple[tuple, object]]:
        """(label-values, child) pairs in creation order."""
        with self._lock:
            return list(self._children.items())


class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock):
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Counter(_Instrument):
    kind = "counter"

    def _make_child(self):
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0, **labelvalues) -> None:
        if labelvalues or not self.labelnames:
            target = self.labels(**labelvalues)
        else:
            target = self._self_child()
        target.inc(amount)

    @property
    def value(self) -> float:
        return self._self_child().value


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Gauge(_Instrument):
    kind = "gauge"

    def _make_child(self):
        return _GaugeChild(self._lock)

    def set(self, value: float, **labelvalues) -> None:
        self.labels(**labelvalues).set(value)

    def inc(self, amount: float = 1.0, **labelvalues) -> None:
        self.labels(**labelvalues).inc(amount)

    def dec(self, amount: float = 1.0, **labelvalues) -> None:
        self.labels(**labelvalues).dec(amount)

    @property
    def value(self) -> float:
        return self._self_child().value


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock, buckets):
        self._lock = lock
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1

    def absorb(self, counts, sum_delta: float, count_delta: int) -> None:
        """Fold a shipped bucket-count delta in (cross-rank merge)."""
        with self._lock:
            for index, delta in enumerate(counts[: len(self.counts)]):
                self.counts[index] += delta
            self.sum += sum_delta
            self.count += count_delta

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper-bound, cumulative count) pairs, ``+Inf`` last."""
        with self._lock:
            pairs = list(zip(self.buckets, self.counts))
            pairs.append((float("inf"), self.count))
            return pairs


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))

    def _make_child(self):
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float, **labelvalues) -> None:
        self.labels(**labelvalues).observe(value)


class MetricsRegistry:
    """Name → instrument table; get-or-create semantics per name."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name, help, labelnames, **extra):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(
                    name, help=help, labelnames=labelnames, **extra
                )
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name, help="", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def collect(self) -> list[_Instrument]:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self, structured: bool = False) -> dict:
        """Plain numbers for assertions: counters/gauges map label tuples
        to values, histograms to their running sums.

        ``structured=True`` returns the full-fidelity form used by the
        cross-rank delta/merge protocol: per metric, its kind/help/
        labelnames (and buckets), plus every child's complete state —
        histogram bucket counts included, so bucket-level deltas fold into
        the parent exactly.
        """
        if not structured:
            out: dict[str, dict[tuple, float]] = {}
            for metric in self.collect():
                values: dict[tuple, float] = {}
                for key, child in metric.samples():
                    values[key] = (
                        child.sum if metric.kind == "histogram" else child.value
                    )
                out[metric.name] = values
            return out
        state: dict[str, dict] = {}
        for metric in self.collect():
            children: dict[tuple, object] = {}
            for key, child in metric.samples():
                if metric.kind == "histogram":
                    with child._lock:
                        children[key] = {
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                        }
                else:
                    children[key] = child.value
            entry: dict = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "children": children,
            }
            if metric.kind == "histogram":
                entry["buckets"] = list(metric.buckets)
            state[metric.name] = entry
        return state

    @staticmethod
    def delta(base: dict, current: dict) -> dict:
        """``current - base`` over two structured snapshots.

        This is what a forked rank ships with each task reply: only what
        changed since the previous shipment, so the parent's ``merge``
        never double-counts fork-inherited or already-shipped values.
        Gauges are point-in-time readings, not accumulations, and are
        excluded (a rank's queue depth has no meaning added to the
        parent's).
        """
        out: dict[str, dict] = {}
        for name, entry in current.items():
            if entry["kind"] == "gauge":
                continue
            base_children = base.get(name, {}).get("children", {})
            children: dict[tuple, object] = {}
            for key, value in entry["children"].items():
                before = base_children.get(key)
                if entry["kind"] == "histogram":
                    if before is None:
                        before = {"counts": [], "sum": 0.0, "count": 0}
                    counts = [
                        c - (before["counts"][i] if i < len(before["counts"])
                             else 0)
                        for i, c in enumerate(value["counts"])
                    ]
                    diff = {
                        "counts": counts,
                        "sum": value["sum"] - before["sum"],
                        "count": value["count"] - before["count"],
                    }
                    if diff["count"] or any(counts) or diff["sum"]:
                        children[key] = diff
                else:
                    moved = value - (before or 0.0)
                    if moved:
                        children[key] = moved
            if children:
                out[name] = {**entry, "children": children}
        return out

    def merge(self, delta: dict) -> None:
        """Fold a structured delta (from :meth:`delta`) into this registry.

        Instruments are created on demand with the shipped kind, help,
        labelnames and buckets; counter deltas ``inc`` and histogram
        deltas land bucket-by-bucket, so the merged exposition is exactly
        what one process observing both streams would have recorded.
        """
        for name, entry in delta.items():
            labelnames = tuple(entry.get("labelnames", ()))
            kind = entry["kind"]
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""), labelnames)
                for key, value in entry["children"].items():
                    if value > 0:
                        metric.labels(**dict(zip(labelnames, key))).inc(value)
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""), labelnames,
                    buckets=tuple(entry.get("buckets", DEFAULT_BUCKETS)),
                )
                for key, value in entry["children"].items():
                    child = metric.labels(**dict(zip(labelnames, key)))
                    child.absorb(
                        value["counts"], value["sum"], value["count"]
                    )
            # Gauges never travel (see delta()); unknown kinds are skipped
            # rather than raised — a merge must not break the reply path.


class _NullChild:
    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_CHILD = _NullChild()


class _NullInstrument:
    __slots__ = ()
    kind = "null"

    def labels(self, **labelvalues):
        return _NULL_CHILD

    def inc(self, amount: float = 1.0, **labelvalues) -> None:
        return None

    def dec(self, amount: float = 1.0, **labelvalues) -> None:
        return None

    def set(self, value: float, **labelvalues) -> None:
        return None

    def observe(self, value: float, **labelvalues) -> None:
        return None

    def samples(self) -> list:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: one shared instrument absorbs everything."""

    enabled = False

    def counter(self, name, help="", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labelnames=(), buckets=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def collect(self) -> list:
        return []

    def snapshot(self, structured: bool = False) -> dict:
        return {}

    @staticmethod
    def delta(base: dict, current: dict) -> dict:
        return {}

    def merge(self, delta: dict) -> None:
        return None


NULL_METRICS = NullMetrics()
