"""``repro.obs.server`` — a live observability endpoint for one session.

The multi-tenant compile server direction (ROADMAP) plans to scrape "the
existing Prometheus metrics endpoint"; until now that endpoint was only a
``metrics_text()`` string.  :class:`ObsServer` makes it a real scrape
target: a stdlib :mod:`http.server` running on a daemon thread, wired as
``MajicSession(serve_metrics=port)`` (port 0 binds an ephemeral port,
exposed as ``session.obs_server.port``).

Endpoints
---------
* ``GET /metrics`` — Prometheus text exposition (v0.0.4) of the session's
  registry, rendered at scrape time through the existing
  :func:`~repro.obs.export_prom.prometheus_text`; includes every counter
  merged back from parallel worker ranks.
* ``GET /healthz`` — a JSON liveness/health document: pid, uptime,
  recorded span/diagnostic counts, parallel rank liveness.
* ``GET /trace`` — the current Chrome-trace JSON (the same document
  ``session.trace_json()`` returns), so a browser or Perfetto can pull a
  live distributed trace out of a running session.

The server is read-only, binds loopback by default, handles each scrape
on its own thread (``ThreadingHTTPServer``), and renders everything from
thread-safe recorder snapshots — concurrent scrapes during execution are
safe by construction (and property-tested).
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export_chrome import chrome_trace_json
from repro.obs.export_prom import prometheus_text

#: Content type Prometheus scrapers expect from a text-format endpoint.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObsServer:
    """One session's scrape endpoint (daemon thread, loopback by default)."""

    def __init__(self, session, port: int = 0, host: str = "127.0.0.1"):
        self.session = session
        self.started = time.time()
        outer = self

        class Handler(BaseHTTPRequestHandler):
            # One session can serve many concurrent scrapers; keep the
            # stdlib request log out of the session's stdout.
            def log_message(self, format, *args):  # noqa: A002
                return None

            def _reply(self, status: int, content_type: str, body: str):
                data = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def do_GET(self):  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        self._reply(
                            200, PROM_CONTENT_TYPE,
                            prometheus_text(outer.session.obs.metrics),
                        )
                    elif path == "/healthz":
                        self._reply(
                            200, "application/json",
                            json.dumps(outer.health()) + "\n",
                        )
                    elif path == "/trace":
                        self._reply(
                            200, "application/json",
                            chrome_trace_json(outer.session.obs.tracer),
                        )
                    else:
                        self._reply(404, "text/plain", "not found\n")
                except Exception as exc:  # noqa: BLE001 - scrape must not kill
                    try:
                        self._reply(500, "text/plain", f"error: {exc!r}\n")
                    except Exception:  # noqa: BLE001 - client went away
                        pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"majic-obs-server-{self.port}",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def health(self) -> dict:
        session = self.session
        parallel = getattr(session, "parallel", None)
        ranks_alive = 0
        if parallel is not None:
            ranks_alive = sum(
                1 for proc in parallel.procs.values() if proc.is_alive()
            )
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started, 3),
            "trace": session.obs.tracer.enabled,
            "metrics": session.obs.metrics.enabled,
            "spans": len(session.obs.tracer),
            "diagnostics": len(session.repository.diagnostics),
            "parallel_ranks_alive": ranks_alive,
            "parallel_enabled": bool(parallel is not None and parallel.enabled),
        }

    def close(self) -> None:
        """Stop serving; idempotent."""
        httpd = self._httpd
        if httpd is None:
            return
        self._httpd = None
        try:
            httpd.shutdown()
            httpd.server_close()
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass
        self._thread.join(timeout=2.0)
