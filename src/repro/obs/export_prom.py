"""Prometheus text exposition of a :class:`~repro.obs.metrics.MetricsRegistry`.

Produces the plain-text format scrape endpoints serve (version 0.0.4):
``# HELP`` / ``# TYPE`` headers followed by one sample line per labelled
child; histograms expand into cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.  The session-level entry point is
:meth:`MajicSession.metrics_text`, and the fault/experiment harnesses
write the same text via ``--metrics-out``.
"""

from __future__ import annotations


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _labels(names, values, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry) -> str:
    """Render every registered metric; deterministic order, trailing
    newline, parseable by any Prometheus scraper."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labelvalues, child in metric.samples():
            if metric.kind == "histogram":
                for bound, count in child.cumulative():
                    le = _labels(
                        metric.labelnames, labelvalues,
                        extra=f'le="{_format_number(bound)}"',
                    )
                    lines.append(f"{metric.name}_bucket{le} {count}")
                labels = _labels(metric.labelnames, labelvalues)
                lines.append(
                    f"{metric.name}_sum{labels} {_format_number(child.sum)}"
                )
                lines.append(f"{metric.name}_count{labels} {child.count}")
            else:
                labels = _labels(metric.labelnames, labelvalues)
                lines.append(
                    f"{metric.name}{labels} {_format_number(child.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry, path) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))
    return str(path)
