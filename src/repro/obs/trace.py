"""Thread-safe hierarchical tracing (the observability substrate).

The paper's evaluation is an argument about *where time goes*: Figure 6
splits every run into disambiguation / type inference / code generation /
execution, and the Section 2.2.1 contract ("compiled code is an
optimization, never a requirement") is only operable when degradations to
interpretation are visible.  A :class:`Tracer` records that story as a
tree of :class:`Span` objects — one per parse, compile phase, compiled
execution, interpreter fallback, cache probe — that a single session can
render as a text tree or export as Chrome-trace JSON
(:mod:`repro.obs.export_chrome`).

Design constraints
------------------
* **Thread safety.**  Background speculation workers and the foreground
  session record into one tracer; the finished-span list is guarded by a
  lock while the *current-span stack* is thread-local, so recording never
  contends between threads.
* **Cross-thread parentage.**  A worker has no call-stack relationship to
  the foreground thread, so the foreground captures a parent token
  (:meth:`Tracer.current_id`) at submit time and the worker restores it
  with :meth:`Tracer.adopt` — the worker's spans then hang off the
  foreground ``speculate_async`` span in the tree.
* **Near-zero cost when disabled.**  The default recorder is
  :data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns one shared
  no-op context manager: the disabled path allocates no spans (asserted
  by a tracemalloc guard test).  Hot call sites additionally check
  ``tracer.enabled`` so they do not even build the attribute dicts.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid


class Span:
    """One timed region: a node in the session's trace tree.

    Spans are context managers; entering assigns the id, parent (the top
    of the current thread's span stack) and start time, exiting records
    the duration and appends the span to the tracer's finished list.
    ``start`` is seconds relative to the tracer's epoch.
    """

    __slots__ = (
        "tracer", "name", "category", "args",
        "span_id", "parent_id", "start", "duration", "thread", "tid",
        "rank", "pid",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.span_id = 0
        self.parent_id: int | None = None
        self.start = 0.0
        self.duration = 0.0
        self.thread = ""
        self.tid = 0
        # Process identity for merged cross-rank traces: rank 0 / pid 0
        # mean "this process" (the exporter substitutes os.getpid()).
        self.rank = 0
        self.pid = 0

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.span_id = next(tracer._ids)
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        current = threading.current_thread()
        self.thread = current.name
        self.tid = current.ident or 0
        self.start = time.perf_counter() - tracer.epoch
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self.tracer
        self.duration = (time.perf_counter() - tracer.epoch) - self.start
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        with tracer._lock:
            tracer._spans.append(self)

    def __repr__(self) -> str:  # debugging aid, never on the hot path
        return (
            f"Span({self.name!r}, {self.category!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration * 1e3:.3f}ms)"
        )


class _Adopted:
    """Context manager pushing a foreign parent id onto this thread's
    span stack (cross-thread parent propagation for worker threads)."""

    __slots__ = ("tracer", "parent_id", "_pushed")

    def __init__(self, tracer: "Tracer", parent_id: int | None):
        self.tracer = tracer
        self.parent_id = parent_id
        self._pushed = False

    def __enter__(self) -> "_Adopted":
        if self.parent_id is not None:
            self.tracer._stack().append(self.parent_id)
            self._pushed = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._pushed:
            stack = self.tracer._stack()
            if stack and stack[-1] == self.parent_id:
                stack.pop()


class Tracer:
    """Hierarchical span recorder shared by every layer of a session."""

    enabled = True

    def __init__(self, trace_id: str | None = None):
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        # perf_counter epoch for span timestamps plus the wall-clock
        # instant it corresponds to (Chrome traces want absolute-ish ts).
        self.epoch = time.perf_counter()
        self.wall_epoch = time.time()
        # Distributed trace identity: propagated to parallel worker ranks
        # through the message envelope so every process's spans carry the
        # same id and can be correlated after the merge.
        self.trace_id = trace_id or uuid.uuid4().hex[:16]

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str, **args) -> Span:
        """Open a timed region (use as a context manager)."""
        return Span(self, name, category, args)

    def instant(self, name: str, category: str, **args) -> Span:
        """Record a zero-duration event (deopts, quarantines, ...)."""
        span = Span(self, name, category, args)
        span.span_id = next(self._ids)
        stack = self._stack()
        span.parent_id = stack[-1] if stack else None
        current = threading.current_thread()
        span.thread = current.name
        span.tid = current.ident or 0
        span.start = time.perf_counter() - self.epoch
        with self._lock:
            self._spans.append(span)
        return span

    def complete(
        self, name: str, category: str, start: float, duration: float, **args
    ) -> Span:
        """Record an already-measured region (``start`` is an epoch-relative
        perf_counter value as produced by ``rel_now``).  Used where a
        context manager does not fit — e.g. the communicator records a
        receive only once a message was actually delivered."""
        span = Span(self, name, category, args)
        span.span_id = next(self._ids)
        stack = self._stack()
        span.parent_id = stack[-1] if stack else None
        current = threading.current_thread()
        span.thread = current.name
        span.tid = current.ident or 0
        span.start = start
        span.duration = duration
        with self._lock:
            self._spans.append(span)
        return span

    def rel_now(self) -> float:
        """The current instant on the tracer's epoch-relative clock."""
        return time.perf_counter() - self.epoch

    def current_id(self) -> int | None:
        """Token identifying the innermost open span on this thread
        (capture before handing work to another thread)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def adopt(self, parent_id: int | None) -> _Adopted:
        """Parent subsequent spans on *this* thread under ``parent_id``."""
        return _Adopted(self, parent_id)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        """Every finished span so far (open spans are not included)."""
        with self._lock:
            return tuple(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_tree(self) -> str:
        """The span forest as an indented text tree (roots in start
        order; spans whose parent never closed render as roots too)."""
        spans = self.spans()
        if not spans:
            return "(no spans recorded)"
        known = {span.span_id for span in spans}
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in known else None
            children.setdefault(parent, []).append(span)
        for bucket in children.values():
            bucket.sort(key=lambda s: s.start)
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = "".join(
                f" {key}={value}" for key, value in sorted(span.args.items())
            )
            lines.append(
                f"{'  ' * depth}- {span.name} [{span.category}] "
                f"{span.duration * 1e3:.3f}ms{attrs} ({span.thread})"
            )
            for child in children.get(span.span_id, ()):
                walk(child, depth + 1)

        for root in children.get(None, ()):
            walk(root, 0)
        return "\n".join(lines)


def serialize_spans(spans) -> list[dict]:
    """Spans as plain dicts: the wire format worker ranks ship back to the
    parent with every task reply (pickled inside the reply envelope)."""
    return [
        {
            "name": span.name,
            "category": span.category,
            "args": dict(span.args),
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start": span.start,
            "duration": span.duration,
            "thread": span.thread,
            "tid": span.tid,
        }
        for span in spans
    ]


def merge_remote_spans(
    tracer: Tracer,
    batch: dict,
    idmap: dict[int, int],
    default_parent: int | None = None,
) -> int:
    """Fold one rank's shipped span buffer into ``tracer``.

    ``batch`` carries ``rank``, ``pid``, ``wall_epoch`` and a ``spans``
    list from :func:`serialize_spans`.  Remote span ids are remapped into
    the parent tracer's id space through the per-rank ``idmap`` (persistent
    across batches, so a later batch can still reference an earlier
    parent); spans whose parent is unknown on this side are re-parented
    under ``default_parent`` — the parent-side span that dispatched the
    task — which is how a rank's tree hangs off the session's tree.
    Timestamps are rebased through the wall-clock epochs of the two
    tracers, so rank rows line up on one timeline.  Returns the number of
    spans merged.
    """
    rank = int(batch.get("rank", 0))
    pid = int(batch.get("pid", 0))
    offset = float(batch.get("wall_epoch", tracer.wall_epoch)) - tracer.wall_epoch
    records = batch.get("spans", ())
    if not records:
        return 0
    # Two passes: ids first (children close before their parents, so a
    # child's parent may appear later in the same batch), then links.
    for record in records:
        remote_id = record["span_id"]
        if remote_id not in idmap:
            idmap[remote_id] = next(tracer._ids)
    merged: list[Span] = []
    for record in records:
        span = Span(tracer, record["name"], record["category"],
                    dict(record["args"]))
        span.span_id = idmap[record["span_id"]]
        remote_parent = record["parent_id"]
        if remote_parent is not None and remote_parent in idmap:
            span.parent_id = idmap[remote_parent]
        else:
            span.parent_id = default_parent
        span.start = record["start"] + offset
        span.duration = record["duration"]
        span.thread = f"rank{rank}:{record['thread']}"
        span.tid = record["tid"]
        span.rank = rank
        span.pid = pid or os.getpid()
        merged.append(span)
    with tracer._lock:
        tracer._spans.extend(merged)
    return len(merged)


class _NullSpan:
    """The shared do-nothing context manager of the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled recorder: every operation is a no-op and :meth:`span`
    returns one preallocated context manager, so instrumented code pays a
    method call and nothing else (and allocates no spans)."""

    enabled = False
    trace_id = ""
    wall_epoch = 0.0
    epoch = 0.0

    def span(self, name: str, category: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str, **args) -> None:
        return None

    def complete(self, name, category, start, duration, **args) -> None:
        return None

    def rel_now(self) -> float:
        return 0.0

    def current_id(self) -> None:
        return None

    def adopt(self, parent_id) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> tuple:
        return ()

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def render_tree(self) -> str:
        return "(tracing disabled)"


NULL_TRACER = NullTracer()


def self_times(spans) -> dict[int, float]:
    """Per-span self time: duration minus the duration of direct children.

    This is the one timing substrate shared by the profiler and the
    Figure 6 :class:`~repro.core.timing.ExecutionBreakdown`: both consume
    the same subtraction, so their totals agree by construction.
    """
    known = {span.span_id for span in spans}
    child_dur: dict[int, float] = {}
    for span in spans:
        if span.parent_id in known:
            child_dur[span.parent_id] = (
                child_dur.get(span.parent_id, 0.0) + span.duration
            )
    return {
        span.span_id: max(span.duration - child_dur.get(span.span_id, 0.0), 0.0)
        for span in spans
    }
