"""The crash flight recorder: bounded breadcrumbs + postmortem bundles.

A chaos-sweep failure used to leave one ``parallel_fallback`` log line and
nothing else; this module turns every supervised failure into a
debuggable artifact.  The :class:`FlightRecorder` keeps an always-on
bounded ring of recent breadcrumbs (one tuple append per note — the
overhead budget is the same ≤5% hot-path bar the PR 3 null-object work
established, recorded in ``BENCH_obs.json``), subscribes to the session's
:class:`~repro.repository.diagnostics.DiagnosticsLog`, and on a faulting
event — worker crash, watchdog timeout, guarded deopt, parallel fallback —
writes a **postmortem bundle** to the dump directory.

Bundle schema (``majic-postmortem/1``)
--------------------------------------
One JSON object per file::

    {
      "schema":      "majic-postmortem/1",
      "reason":      "<event kind / dump reason>",
      "fault_site":  "<function or site name>",
      "rank":        <int>,            // 0 = the session process
      "pid":         <int>,
      "trace_id":    "<distributed trace id, may be empty>",
      "wall_time":   <float>,          // time.time() at dump
      "error":       "<repr of the triggering exception, may be empty>",
      "env":         {"python": ..., "platform": ..., "cwd": ...},
      "breadcrumbs": [{"wall_time", "kind", "name", "detail"}, ...],
      "diagnostics": [{"kind", "function", "detail", "cause",
                       "signature", "seq", "wall_time", "thread",
                       "rank"}, ...],
      "spans":       [{"name", "category", "start", "duration",
                       "thread", "rank", "args"}, ...],  // last N
      "metrics":     {"<metric>": {"<label tuple>": value, ...}, ...}
    }

Dump directory layout
---------------------
``<dump_dir>/postmortem-<pid>-r<rank>-<seq>-<reason>.json`` — one file
per dump, ``seq`` monotonic per process.  The default directory is
``~/.pymajic/postmortem`` (sibling of the compile cache); sessions and
worker ranks of one run share it, so a crashed rank's bundle lands next
to the parent's view of the same fault.

Dumps are bounded per recorder (``max_dumps``) so a chaos storm cannot
fill the disk, and every write is wrapped: the flight recorder must never
crash the execution path it is recording.
"""

from __future__ import annotations

import json
import os
import platform as host_platform
import threading
import time
from collections import deque
from pathlib import Path

SCHEMA = "majic-postmortem/1"

#: Default dump directory (sibling of the ~/.pymajic/cache compile cache).
DEFAULT_DUMP_DIR = Path.home() / ".pymajic" / "postmortem"

#: Diagnostic kinds that trigger an automatic postmortem dump.  These are
#: exactly the supervised failure domains: a guarded deopt, a watchdog
#: cancellation, a sandboxed first-run death, a poisoned background task,
#: and every parallel-rank failure mode.
DUMP_KINDS = frozenset({
    "deopt",
    "watchdog_timeout",
    "sandbox_failure",
    "poison_task",
    "parallel_fallback",
    "parallel_worker_restart",
    "parallel_degraded",
})

#: How many spans of the tracer's tail a bundle carries.
SPAN_TAIL = 120


class FlightRecorder:
    """One session's (or one rank's) always-on incident recorder."""

    enabled = True

    def __init__(
        self,
        dump_dir=None,
        capacity: int = 256,
        max_dumps: int = 32,
        rank: int = 0,
    ):
        self.dump_dir = Path(dump_dir) if dump_dir else DEFAULT_DUMP_DIR
        self.rank = int(rank)
        self.max_dumps = int(max_dumps)
        self.dumps: list[str] = []
        self._seq = 0
        self._lock = threading.Lock()
        # deque(maxlen) appends are O(1) and atomic under the GIL: the
        # hot path pays one tuple build and one append, nothing else.
        self._crumbs: deque = deque(maxlen=max(8, int(capacity)))
        self._tracer = None
        self._metrics = None
        self._diagnostics = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, obs, diagnostics=None) -> None:
        """Bind the session's recorders (dump-time sources) and subscribe
        to its diagnostics log (breadcrumbs + automatic dump triggers)."""
        self._tracer = obs.tracer
        self._metrics = obs.metrics
        if diagnostics is not None and self._diagnostics is None:
            self._diagnostics = diagnostics
            diagnostics.add_listener(self._on_diagnostic)

    def _on_diagnostic(self, event) -> None:
        self.note(event.kind, event.function, event.detail)
        if event.kind in DUMP_KINDS:
            self.dump(
                reason=event.kind,
                fault_site=event.function,
                rank=getattr(event, "rank", 0) or self.rank,
                error=event.cause,
            )

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def note(self, kind: str, name: str, detail: str = "") -> None:
        """One breadcrumb: O(1), allocation-light, safe from any thread."""
        self._crumbs.append((time.time(), kind, name, detail))

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def breadcrumbs(self) -> list[dict]:
        return [
            {"wall_time": wall, "kind": kind, "name": name, "detail": detail}
            for wall, kind, name, detail in list(self._crumbs)
        ]

    def _span_tail(self) -> list[dict]:
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            return []
        try:
            spans = tracer.spans()[-SPAN_TAIL:]
            return [
                {
                    "name": s.name,
                    "category": s.category,
                    "start": s.start,
                    "duration": s.duration,
                    "thread": s.thread,
                    "rank": getattr(s, "rank", 0),
                    "args": {k: repr(v) for k, v in s.args.items()},
                }
                for s in spans
            ]
        except Exception:  # noqa: BLE001 - best-effort capture
            return []

    def _diagnostics_tail(self) -> list[dict]:
        log = self._diagnostics
        if log is None:
            return []
        try:
            return [
                {
                    "kind": e.kind,
                    "function": e.function,
                    "detail": e.detail,
                    "cause": e.cause,
                    "signature": e.signature,
                    "seq": e.seq,
                    "wall_time": e.wall_time,
                    "thread": e.thread,
                    "rank": getattr(e, "rank", 0),
                }
                for e in log.events()[-SPAN_TAIL:]
            ]
        except Exception:  # noqa: BLE001
            return []

    def _metrics_snapshot(self) -> dict:
        metrics = self._metrics
        if metrics is None or not metrics.enabled:
            return {}
        try:
            return {
                name: {",".join(key): value for key, value in values.items()}
                for name, values in metrics.snapshot().items()
            }
        except Exception:  # noqa: BLE001
            return {}

    def dump(
        self,
        reason: str,
        fault_site: str = "",
        rank: int | None = None,
        error: str = "",
        extra: dict | None = None,
    ) -> str | None:
        """Write one postmortem bundle; returns its path (None when the
        dump budget is spent or the write failed — never raises)."""
        with self._lock:
            if len(self.dumps) >= self.max_dumps:
                return None
            self._seq += 1
            seq = self._seq
        try:
            tracer = self._tracer
            bundle = {
                "schema": SCHEMA,
                "reason": reason,
                "fault_site": fault_site,
                "rank": self.rank if rank is None else int(rank),
                "pid": os.getpid(),
                "trace_id": getattr(tracer, "trace_id", "") if tracer else "",
                "wall_time": time.time(),
                "error": error,
                "env": {
                    "python": host_platform.python_version(),
                    "platform": host_platform.platform(),
                    "cwd": os.getcwd(),
                },
                "breadcrumbs": self.breadcrumbs(),
                "diagnostics": self._diagnostics_tail(),
                "spans": self._span_tail(),
                "metrics": self._metrics_snapshot(),
            }
            if extra:
                bundle["extra"] = extra
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            name = (
                f"postmortem-{os.getpid()}-r{bundle['rank']}-{seq}-"
                f"{reason.replace('/', '_')}.json"
            )
            path = self.dump_dir / name
            tmp = path.with_suffix(".json.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(bundle, handle, indent=2)
                handle.write("\n")
            os.replace(tmp, path)  # atomic: a reader never sees a torn bundle
            with self._lock:
                self.dumps.append(str(path))
            return str(path)
        except Exception:  # noqa: BLE001 - the recorder must never crash
            return None


class NullFlightRecorder:
    """Disabled recorder: every operation is a no-op (the default)."""

    enabled = False
    dump_dir = None
    rank = 0
    dumps: list = []

    def attach(self, obs, diagnostics=None) -> None:
        return None

    def note(self, kind: str, name: str, detail: str = "") -> None:
        return None

    def breadcrumbs(self) -> list:
        return []

    def dump(self, reason, fault_site="", rank=None, error="", extra=None):
        return None


NULL_FLIGHT = NullFlightRecorder()


def load_bundle(path) -> dict:
    """Read one postmortem bundle back (tests, tooling)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
