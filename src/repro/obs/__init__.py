"""Unified observability for a MaJIC session (tracing, metrics, profiling).

Three pillars share one wiring point, the :class:`Observability` facade:

* **Tracing** (:mod:`repro.obs.trace`): hierarchical spans around parse,
  disambiguation, type inference, code generation, compiled execution,
  interpreter fallback, cache traffic and background speculation, with
  cross-thread parent propagation into worker threads; exportable as
  Chrome-trace JSON (:mod:`repro.obs.export_chrome`) or a text tree.
* **Metrics** (:mod:`repro.obs.metrics`): a counters/gauges/histograms
  registry — per-phase compile latency, cache hit ratio, tiered call
  counts, speculation queue depth — with Prometheus text exposition
  (:mod:`repro.obs.export_prom`).  The repository's
  :class:`~repro.repository.diagnostics.DiagnosticsLog` feeds the
  registry through a listener, so every robustness counter (deopts,
  quarantines, budget skips, compile failures) comes for free.
* **Profiling** (:mod:`repro.obs.profiler`): a MATLAB-``profile``-style
  per-function report split by execution tier, derived from the same
  spans as the Figure 6 breakdown.

Both recorders are **null objects when disabled** (the default): the
instrumented hot paths pay one attribute check and allocate nothing, a
property guarded by tests and the recorded ``BENCH_obs.json`` baseline.
Enable per session with ``MajicSession(trace=True, metrics=True)``.
"""

from __future__ import annotations

from repro.obs.export_chrome import (
    chrome_trace,
    chrome_trace_json,
    write_chrome_trace,
)
from repro.obs.export_prom import prometheus_text, write_prometheus
from repro.obs.flight import (
    DUMP_KINDS,
    FlightRecorder,
    NULL_FLIGHT,
    NullFlightRecorder,
    load_bundle,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.profiler import (
    FunctionProfile,
    Profiler,
    ProfileReport,
    RankAttribution,
    rank_attribution,
    report_from_spans,
)
from repro.obs.server import ObsServer
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    merge_remote_spans,
    self_times,
    serialize_spans,
)

#: Execution-tier label values used across spans, metrics and reports.
TIER_INTERPRETER = "interpreter"
TIER_JIT = "jit"
TIER_SPEC = "spec"

#: Metrics the diagnostics->metrics bridge derives from events; excluded
#: from cross-rank merges because surfaced rank diagnostics re-derive them.
_LISTENER_DERIVED = frozenset({
    "majic_events_total", "majic_deopt_total", "majic_quarantine_total",
})


class Observability:
    """One session's observability switchboard.

    Holds the (real or null) tracer and metrics registry, pre-binds the
    hot-path instruments so the per-call cost is a dict-free ``inc()``,
    and subscribes to a :class:`DiagnosticsLog` so robustness events feed
    the metrics and the trace stream without any extra call sites.
    """

    def __init__(
        self,
        trace: bool = False,
        metrics: bool = False,
        flight=None,
        trace_id: str | None = None,
    ):
        self.tracer = Tracer(trace_id=trace_id) if trace else NULL_TRACER
        self.metrics = MetricsRegistry() if metrics else NULL_METRICS
        # The crash flight recorder (repro.obs.flight); NULL_FLIGHT keeps
        # the disabled path a no-op attribute away.
        self.flight = flight if flight is not None else NULL_FLIGHT
        self._bound_logs: list = []
        # Per-rank remote->local span id maps for merged distributed
        # traces (persistent, so later batches can reference earlier
        # parents).
        self._rank_idmaps: dict[int, dict[int, int]] = {}
        self._rebuild_instruments()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def enable_tracing(self) -> None:
        """Swap the null tracer for a live one (``profile on``)."""
        if not self.tracer.enabled:
            self.tracer = Tracer()

    def disable_tracing(self) -> None:
        if self.tracer.enabled:
            self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    def _rebuild_instruments(self) -> None:
        registry = self.metrics
        self._calls = registry.counter(
            "majic_calls_total",
            "Function executions by tier (interpreter vs compiled).",
            labelnames=("tier",),
        )
        self._call_children = {
            TIER_INTERPRETER: self._calls.labels(tier=TIER_INTERPRETER),
            TIER_JIT: self._calls.labels(tier=TIER_JIT),
            TIER_SPEC: self._calls.labels(tier=TIER_SPEC),
        }
        self._compiles = registry.counter(
            "majic_compiles_total",
            "Completed compiles by pipeline mode.",
            labelnames=("mode",),
        )
        self._compile_phase_seconds = registry.histogram(
            "majic_compile_phase_seconds",
            "Compile latency split by phase (the Figure 6 categories).",
            labelnames=("mode", "phase"),
        )
        self._cache_requests = registry.counter(
            "majic_cache_requests_total",
            "Persistent-cache probes by result.",
            labelnames=("result",),
        )
        self._events = registry.counter(
            "majic_events_total",
            "Diagnostics events by kind (deopt, quarantine, ...).",
            labelnames=("kind",),
        )
        self._queue_depth = registry.gauge(
            "majic_speculation_queue_depth",
            "Background compiles queued or in flight.",
        )
        self._kernel_hits = registry.counter(
            "majic_kernel_cache_hits_total",
            "Fused elementwise kernel cache hits.",
        )
        self._kernel_misses = registry.counter(
            "majic_kernel_cache_misses_total",
            "Fused elementwise kernel cache misses (kernel compiles).",
        )
        self._kernel_run_seconds = registry.histogram(
            "majic_kernel_run_seconds",
            "Per-call latency of fused elementwise kernels.",
            labelnames=("kernel",),
        )
        self._kernel_evictions = registry.counter(
            "majic_kernel_cache_evictions_total",
            "Fused kernels dropped by the kernel cache's LRU bound.",
        )
        # Native-tier instruments (repro.native): compile outcomes,
        # per-kernel native run latency and fallback-to-Python reasons.
        self._native_compiles = registry.counter(
            "majic_native_compiles_total",
            "Native kernel compiles by result (compiled, cached, failed, "
            "ineligible).",
            labelnames=("result",),
        )
        self._native_run_seconds = registry.histogram(
            "majic_native_run_seconds",
            "Per-call latency of native (C) fused kernels.",
            labelnames=("kernel",),
        )
        self._native_fallbacks = registry.counter(
            "majic_native_fallback_total",
            "Native dispatches that fell back to the Python kernel, by "
            "reason (guard, domain, run_fault, fault).",
            labelnames=("reason",),
        )
        # Resilience counters: dedicated first-class metrics (the labelled
        # majic_events_total stream still carries every kind; these exist
        # so dashboards can alert without label arithmetic).
        self._deopts = registry.counter(
            "majic_deopt_total",
            "Guarded deoptimizations (compiled run fell back to the "
            "interpreter).",
        )
        self._quarantines = registry.counter(
            "majic_quarantine_total",
            "Functions demoted to interpreter-only after repeated strikes.",
        )
        self._worker_restarts = registry.counter(
            "majic_worker_restarts_total",
            "Dead speculation workers respawned by the supervisor.",
        )
        self._watchdog_timeouts = registry.counter(
            "majic_watchdog_timeouts_total",
            "Watchdog deadline cancellations by operation kind.",
            labelnames=("kind",),
        )
        # Parallel-backend instruments (repro.parallel): call/fallback
        # counters, message traffic and per-call latency.
        self._parallel_calls = registry.counter(
            "majic_parallel_calls_total",
            "Calls executed through the parallel backend, by plan kind.",
            labelnames=("plan",),
        )
        self._parallel_fallbacks = registry.counter(
            "majic_parallel_fallback_total",
            "Parallel calls that fell back to serial execution.",
        )
        self._parallel_messages = registry.counter(
            "majic_parallel_messages_total",
            "MPI-style messages by outcome (sent, received, dropped).",
            labelnames=("kind",),
        )
        self._parallel_bytes = registry.counter(
            "majic_parallel_bytes_total",
            "Serialized message payload bytes moved by the transport.",
            labelnames=("kind",),
        )
        self._parallel_restarts = registry.counter(
            "majic_parallel_worker_restarts_total",
            "Dead parallel worker ranks respawned by the driver.",
        )
        self._parallel_seconds = registry.histogram(
            "majic_parallel_call_seconds",
            "Wall-clock latency of scatter/compute/gather parallel calls.",
            labelnames=("function",),
        )
        # Adaptive-tiering instruments (repro.tiering): the controller's
        # promotion/demotion traffic and warm-profile restores.
        self._tier_promotions = registry.counter(
            "majic_tier_promotions_total",
            "Adaptive-tiering promotions landed, by destination tier.",
            labelnames=("tier",),
        )
        self._tier_demotions = registry.counter(
            "majic_tier_demotions_total",
            "Adaptive-tiering demotions, by reason (slower, deopt, "
            "quarantine).",
            labelnames=("reason",),
        )
        self._tier_profile_restores = registry.counter(
            "majic_tier_profile_restores_total",
            "Persisted hotness profiles restored by warm sessions.",
        )

    # ------------------------------------------------------------------
    # Hot-path helpers (no-ops when metrics are disabled)
    # ------------------------------------------------------------------
    def record_call(self, tier: str) -> None:
        if not self.metrics.enabled:
            return
        child = self._call_children.get(tier)
        if child is None:
            child = self._call_children[tier] = self._calls.labels(tier=tier)
        child.inc()

    def record_compile(self, mode: str, phase_times) -> None:
        if not self.metrics.enabled:
            return
        self._compiles.inc(mode=mode)
        observe = self._compile_phase_seconds.observe
        observe(phase_times.disambiguation, mode=mode, phase="disambiguation")
        observe(phase_times.type_inference, mode=mode, phase="type_inference")
        observe(phase_times.codegen, mode=mode, phase="codegen")

    def record_cache(self, result: str) -> None:
        if not self.metrics.enabled:
            return
        self._cache_requests.inc(result=result)

    def record_kernel_cache(self, hit: bool) -> None:
        if not self.metrics.enabled:
            return
        (self._kernel_hits if hit else self._kernel_misses).inc()

    def record_kernel_run(self, kernel: str, seconds: float) -> None:
        if not self.metrics.enabled:
            return
        self._kernel_run_seconds.observe(seconds, kernel=kernel)

    def record_kernel_cache_eviction(self, count: int = 1) -> None:
        if not self.metrics.enabled:
            return
        self._kernel_evictions.inc(count)

    def record_native_compile(self, result: str) -> None:
        if not self.metrics.enabled:
            return
        self._native_compiles.inc(result=result)

    def record_native_run(self, kernel: str, seconds: float) -> None:
        if not self.metrics.enabled:
            return
        self._native_run_seconds.observe(seconds, kernel=kernel)

    def record_native_fallback(self, reason: str) -> None:
        if not self.metrics.enabled:
            return
        self._native_fallbacks.inc(reason=reason)

    def record_promotion(self, tier: str) -> None:
        if not self.metrics.enabled:
            return
        self._tier_promotions.inc(tier=tier)

    def record_demotion(self, reason: str) -> None:
        if not self.metrics.enabled:
            return
        self._tier_demotions.inc(reason=reason)

    def record_profile_restore(self) -> None:
        if not self.metrics.enabled:
            return
        self._tier_profile_restores.inc()

    def set_queue_depth(self, depth: int) -> None:
        if not self.metrics.enabled:
            return
        self._queue_depth.labels().set(depth)

    def record_worker_restart(self) -> None:
        if not self.metrics.enabled:
            return
        self._worker_restarts.inc()

    def record_parallel_call(self, plan: str) -> None:
        if not self.metrics.enabled:
            return
        self._parallel_calls.inc(plan=plan)

    def record_parallel_fallback(self) -> None:
        if not self.metrics.enabled:
            return
        self._parallel_fallbacks.inc()

    def record_parallel_message(self, kind: str, nbytes: int = 0) -> None:
        if not self.metrics.enabled:
            return
        self._parallel_messages.inc(kind=kind)
        if nbytes:
            self._parallel_bytes.inc(nbytes, kind=kind)

    def record_parallel_restart(self) -> None:
        if not self.metrics.enabled:
            return
        self._parallel_restarts.inc()

    def record_parallel_seconds(self, function: str, seconds: float) -> None:
        if not self.metrics.enabled:
            return
        self._parallel_seconds.observe(seconds, function=function)

    def record_watchdog_timeout(self, kind: str) -> None:
        if not self.metrics.enabled:
            return
        self._watchdog_timeouts.inc(kind=kind)

    # ------------------------------------------------------------------
    # Cross-rank absorption (the distributed-tracing merge point)
    # ------------------------------------------------------------------
    def absorb_rank(self, batch: dict, diagnostics=None,
                    default_parent: int | None = None) -> None:
        """Fold one worker rank's shipped observability payload in.

        ``batch`` is the dict a rank attaches to its task reply: a span
        buffer (:func:`~repro.obs.trace.serialize_spans`), a structured
        metrics delta (:meth:`MetricsRegistry.delta`) and the rank's new
        :class:`DiagnosticEvent` records.  Spans merge into the parent
        tracer under ``default_parent`` (the parent-side span that
        dispatched the task), metric deltas fold into the parent registry
        without double counting, and diagnostics surface into the parent
        log with the originating ``rank`` attached.
        """
        if not batch:
            return
        rank = int(batch.get("rank", 0))
        if self.tracer.enabled and batch.get("spans"):
            idmap = self._rank_idmaps.setdefault(rank, {})
            merge_remote_spans(
                self.tracer, batch, idmap, default_parent=default_parent
            )
        if self.metrics.enabled and batch.get("metrics"):
            delta = batch["metrics"]
            if diagnostics is not None:
                # Surfacing the rank's diagnostics below re-fires the
                # parent's diagnostics->metrics bridge, which already
                # counts these; merging the rank's own listener-derived
                # counters too would double-count every event.
                delta = {
                    name: entry for name, entry in delta.items()
                    if name not in _LISTENER_DERIVED
                }
            self.metrics.merge(delta)
        if diagnostics is not None:
            for event in batch.get("diagnostics", ()):
                diagnostics.record(
                    event.get("kind", "unknown"),
                    event.get("function", ""),
                    detail=event.get("detail", ""),
                    cause=event.get("cause", ""),
                    signature=event.get("signature", ""),
                    rank=rank,
                    wall_time=event.get("wall_time"),
                )

    # ------------------------------------------------------------------
    # Diagnostics bridge
    # ------------------------------------------------------------------
    def bind_diagnostics(self, log) -> None:
        """Mirror every :class:`DiagnosticEvent` into the metrics
        registry and (as an instant) into the trace stream."""
        if not self.enabled or log in self._bound_logs:
            return
        self._bound_logs.append(log)
        log.add_listener(self._on_diagnostic)

    def _on_diagnostic(self, event) -> None:
        if self.metrics.enabled:
            self._events.inc(kind=event.kind)
            if event.kind == "deopt":
                self._deopts.inc()
            elif event.kind == "quarantine":
                self._quarantines.inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(
                event.kind, "diagnostic",
                function=event.function, detail=event.detail,
            )


#: Shared always-off facade; the default for components constructed
#: without a session.  Never mutated (``enable_tracing`` is only reached
#: through a session-owned instance).
DISABLED = Observability()


__all__ = [
    "Observability",
    "DISABLED",
    "DUMP_KINDS",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "ObsServer",
    "RankAttribution",
    "load_bundle",
    "merge_remote_spans",
    "rank_attribution",
    "serialize_spans",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "self_times",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "Profiler",
    "ProfileReport",
    "FunctionProfile",
    "report_from_spans",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "TIER_INTERPRETER",
    "TIER_JIT",
    "TIER_SPEC",
]
