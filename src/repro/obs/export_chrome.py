"""Chrome-trace / Perfetto JSON export of a session's span tree.

The output follows the Trace Event Format (the ``chrome://tracing`` /
Perfetto "JSON object" flavour): a top-level object with a
``traceEvents`` array of complete-duration events (``ph == "X"``) carrying
``pid``/``tid``/``ts``/``dur`` in microseconds, instant events
(``ph == "i"``) for zero-duration diagnostics (deopts, quarantines), and
thread-name metadata events (``ph == "M"``).  Each event's ``args`` embeds
the span's own id and parent id, so the hierarchical tree — including
cross-thread parent links from background speculation workers back to the
foreground ``speculate_async`` span — survives the export losslessly and
can be reassembled from the JSON alone.
"""

from __future__ import annotations

import json
import os


def chrome_trace(tracer) -> dict:
    """The tracer's spans as a Trace-Event-Format compatible dict."""
    pid = os.getpid()
    events: list[dict] = []
    threads_seen: dict[int, str] = {}
    for span in tracer.spans():
        if span.tid not in threads_seen:
            threads_seen[span.tid] = span.thread
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event = {
            "name": span.name,
            "cat": span.category,
            "pid": pid,
            "tid": span.tid,
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.duration > 0.0:
            event["ph"] = "X"
            event["dur"] = span.duration * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": thread_name},
        }
        for tid, thread_name in threads_seen.items()
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "pymajic",
            "wall_epoch": getattr(tracer, "wall_epoch", 0.0),
        },
    }


def chrome_trace_json(tracer, indent: int | None = None) -> str:
    return json.dumps(chrome_trace(tracer), indent=indent)


def write_chrome_trace(tracer, path) -> str:
    """Serialize to ``path``; returns the path for chaining/logging."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(tracer))
    return str(path)
