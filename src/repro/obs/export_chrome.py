"""Chrome-trace / Perfetto JSON export of a session's span tree.

The output follows the Trace Event Format (the ``chrome://tracing`` /
Perfetto "JSON object" flavour): a top-level object with a
``traceEvents`` array of complete-duration events (``ph == "X"``) carrying
``pid``/``tid``/``ts``/``dur`` in microseconds, instant events
(``ph == "i"``) for zero-duration diagnostics (deopts, quarantines), and
thread-name metadata events (``ph == "M"``).  Each event's ``args`` embeds
the span's own id and parent id, so the hierarchical tree — including
cross-thread parent links from background speculation workers back to the
foreground ``speculate_async`` span — survives the export losslessly and
can be reassembled from the JSON alone.

Distributed traces (``MajicSession(parallel=N, trace=True)``) add two
constructs on top:

* spans merged from worker ranks carry their own ``pid`` (the forked
  rank's OS pid), so each rank renders as its own process row; a
  ``process_name`` metadata event labels the row ``rank N``;
* a matched ``MPI_Send``/``MPI_Recv`` pair shares a ``flow_id`` argument,
  which the export turns into Chrome flow events (``ph == "s"`` at the
  send, ``ph == "f"`` at the receive) — the arrows connecting each send
  to its receive across rank rows.
"""

from __future__ import annotations

import json
import os


def chrome_trace(tracer) -> dict:
    """The tracer's spans as a Trace-Event-Format compatible dict."""
    own_pid = os.getpid()
    events: list[dict] = []
    threads_seen: dict[tuple[int, int], str] = {}
    ranks_seen: dict[int, int] = {}
    for span in tracer.spans():
        rank = getattr(span, "rank", 0)
        pid = getattr(span, "pid", 0) or own_pid
        if pid not in ranks_seen:
            ranks_seen[pid] = rank
        if (pid, span.tid) not in threads_seen:
            threads_seen[(pid, span.tid)] = span.thread
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if rank:
            args["rank"] = rank
        event = {
            "name": span.name,
            "cat": span.category,
            "pid": pid,
            "tid": span.tid,
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.duration > 0.0:
            event["ph"] = "X"
            event["dur"] = span.duration * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
        flow = span.args.get("flow")
        flow_id = span.args.get("flow_id")
        if flow in ("s", "f") and flow_id is not None:
            flow_event = {
                "name": "mpi_msg",
                "cat": "mpi",
                "ph": flow,
                "id": str(flow_id),
                "pid": pid,
                "tid": span.tid,
                # Bind the arrow endpoints inside their slices: the start
                # anchors at the end of the send, the finish at the end of
                # the matching receive.
                "ts": (span.start + span.duration) * 1e6,
            }
            if flow == "f":
                flow_event["bp"] = "e"
            events.append(flow_event)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": thread_name},
        }
        for (pid, tid), thread_name in threads_seen.items()
    ]
    metadata.extend(
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"rank {rank}"},
        }
        for pid, rank in ranks_seen.items()
    )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "pymajic",
            "wall_epoch": getattr(tracer, "wall_epoch", 0.0),
            "trace_id": getattr(tracer, "trace_id", ""),
        },
    }


def chrome_trace_json(tracer, indent: int | None = None) -> str:
    return json.dumps(chrome_trace(tracer), indent=indent)


def write_chrome_trace(tracer, path) -> str:
    """Serialize to ``path``; returns the path for chaining/logging."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(tracer))
    return str(path)
