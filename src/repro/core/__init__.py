"""MaJIC core: the public session API and platform configurations."""

from repro.core.majic import MajicSession
from repro.core.platformcfg import (
    PlatformConfig,
    AblationFlags,
    SPARC,
    MIPS,
    platform_by_name,
)
from repro.core.timing import Stopwatch, ExecutionBreakdown

__all__ = [
    "MajicSession",
    "PlatformConfig",
    "AblationFlags",
    "SPARC",
    "MIPS",
    "platform_by_name",
    "Stopwatch",
    "ExecutionBreakdown",
]
