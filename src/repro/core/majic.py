"""The public MaJIC session API.

A :class:`MajicSession` bundles the interactive front end, the code
repository and a platform configuration::

    from repro import MajicSession

    s = MajicSession(platform="sparc")
    s.add_source('''
    function p = poly(x)
    p = x.^5 + 3*x + 2;
    ''')
    s.eval("y = 2 + 2;")
    print(s.call("poly", 4))        # -> 1038.0 (JIT compiled on demand)
    s.speculate_all()               # ahead-of-time pass
    print(s.call("poly", 5.0))      # served by speculative code
"""

from __future__ import annotations

import sys

from repro.codegen.jitgen import JitOptions
from repro.codegen.srcgen import SrcOptions
from repro.core.platformcfg import AblationFlags, PlatformConfig, platform_by_name
from repro.interp.frontend import Invocation, MajicFrontEnd
from repro.repository.repo import CodeRepository
from repro.runtime.builtins import GLOBAL_RANDOM
from repro.runtime.display import OutputSink
from repro.runtime.values import from_python, to_python

# Recursive MATLAB benchmarks (ackermann) interpret/execute through deep
# host recursion; lift the host limit once at import.
if sys.getrecursionlimit() < 100_000:
    sys.setrecursionlimit(100_000)


class MajicSession:
    """The user-facing MaJIC system (front end + repository)."""

    def __init__(
        self,
        platform: str | PlatformConfig = "sparc",
        ablation: AblationFlags | None = None,
        jit_options: JitOptions | None = None,
        src_options: SrcOptions | None = None,
        inline_enabled: bool = True,
        seed: int | None = 0,
    ):
        if isinstance(platform, str):
            platform = platform_by_name(platform)
        self.platform = platform
        self.ablation = ablation or AblationFlags()
        self.sink = OutputSink()
        self.repository = CodeRepository(
            jit_options=jit_options or platform.jit_options(self.ablation),
            src_options=src_options or platform.src_options(ablation=self.ablation),
            sink=self.sink,
            inline_enabled=inline_enabled,
        )
        self.frontend = MajicFrontEnd(self.repository, sink=self.sink)
        if seed is not None:
            GLOBAL_RANDOM.seed(seed)

    # ------------------------------------------------------------------
    # Source management
    # ------------------------------------------------------------------
    def add_source(self, text: str) -> list[str]:
        """Register one or more function definitions from source text."""
        return self.repository.add_source(text)

    def add_path(self, directory) -> list[str]:
        """Put a directory of ``.m`` files on the snooped path."""
        return self.repository.add_path(directory)

    def rescan(self) -> list[str]:
        """Re-snoop the path, picking up changed files."""
        return self.repository.rescan()

    def speculate_all(self) -> list[str]:
        """Run the speculative ahead-of-time compiler over everything."""
        return self.repository.speculate_all()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def eval(self, text: str) -> None:
        """Interpret top-level code in the session workspace."""
        self.frontend.eval(text)

    def call(self, name: str, *args, nargout: int = 1):
        """Call a user function; returns unboxed host value(s).

        With ``nargout == 1`` the single result is returned bare; larger
        ``nargout`` returns a tuple.
        """
        boxed = [from_python(a) for a in args]
        outputs = self.frontend.call(name, boxed, nargout=nargout)
        unboxed = tuple(to_python(v) for v in outputs)
        if nargout <= 1:
            return unboxed[0] if unboxed else None
        return unboxed

    def call_boxed(self, name: str, args, nargout: int = 1):
        """Call with/returning boxed MxArray values (harness use)."""
        return self.frontend.call(name, list(args), nargout=nargout)

    def get(self, name: str):
        """Read a workspace variable as a host value."""
        value = self.frontend.workspace.get(name)
        return None if value is None else to_python(value)

    def output(self) -> str:
        """Everything the session printed so far."""
        return self.sink.getvalue()

    def reseed(self, seed: int) -> None:
        """Reset the shared random stream (deterministic comparisons)."""
        GLOBAL_RANDOM.seed(seed)

    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.repository.stats

    def invocation(self, name: str, *args, nargout: int = 1) -> Invocation:
        return Invocation(
            name=name,
            args=[from_python(a) for a in args],
            nargout=nargout,
        )
