"""The public MaJIC session API.

A :class:`MajicSession` bundles the interactive front end, the code
repository and a platform configuration::

    from repro import MajicSession

    s = MajicSession(platform="sparc")
    s.add_source('''
    function p = poly(x)
    p = x.^5 + 3*x + 2;
    ''')
    s.eval("y = 2 + 2;")
    print(s.call("poly", 4))        # -> 1038.0 (JIT compiled on demand)
    s.speculate_all()               # ahead-of-time pass
    print(s.call("poly", 5.0))      # served by speculative code
"""

from __future__ import annotations

import sys

from repro.codegen.jitgen import JitOptions
from repro.codegen.srcgen import SrcOptions
from repro.core.platformcfg import AblationFlags, PlatformConfig, platform_by_name
from repro.interp.frontend import Invocation, MajicFrontEnd
from repro.obs import (
    FlightRecorder,
    Observability,
    Profiler,
    chrome_trace_json,
    prometheus_text,
)
from repro.repository.background import SpeculationEngine
from repro.repository.cache import DEFAULT_CACHE_DIR, RepositoryCache
from repro.repository.repo import CodeRepository, CompileBudget
from repro.runtime.builtins import GLOBAL_RANDOM
from repro.runtime.display import OutputSink
from repro.resilience import DEFAULT_POLICY, ResiliencePolicy
from repro.runtime.values import from_python, to_python

#: Sentinel distinguishing "not passed" from an explicit None (= disable).
_UNSET = object()


def ensure_recursion_limit(limit: int) -> None:
    """Raise (never lower) the host recursion limit.

    Recursive MATLAB benchmarks (ackermann) interpret/execute through deep
    host recursion.  Sessions call this with their platform's
    ``host_recursion_limit``; pass ``recursion_limit=0`` to
    :class:`MajicSession` to opt out of the process-wide mutation.
    """
    if limit and sys.getrecursionlimit() < limit:
        sys.setrecursionlimit(limit)


class MajicSession:
    """The user-facing MaJIC system (front end + repository)."""

    def __init__(
        self,
        platform: str | PlatformConfig = "sparc",
        ablation: AblationFlags | None = None,
        jit_options: JitOptions | None = None,
        src_options: SrcOptions | None = None,
        inline_enabled: bool = True,
        seed: int | None = 0,
        recursion_limit: int | None = None,
        compile_budget: CompileBudget | None = None,
        max_strikes: int = 3,
        fault_plan=None,
        cache_dir=None,
        background: bool = False,
        workers: int | None = None,
        trace: bool = False,
        metrics: bool = False,
        fusion: bool = True,
        native: bool = False,
        native_sync: bool = False,
        native_hot_threshold: int = 2,
        native_min_elems: int | None = None,
        adaptive: bool = False,
        adaptive_sync: bool = False,
        tiering=None,
        resilience=None,
        sandbox: bool | None = None,
        run_deadline: float | None = None,
        compile_deadline: float | object = _UNSET,
        sandbox_timeout: float | None = None,
        diagnostics_capacity: int | None = None,
        parallel: int | None = None,
        parallel_transport: str = "file",
        flight=None,
        serve_metrics: int | None = None,
    ):
        if isinstance(platform, str):
            platform = platform_by_name(platform)
        self.platform = platform
        self.ablation = ablation or AblationFlags()
        # Host recursion headroom: None = the platform default; 0 opts out
        # of touching the process-wide limit entirely.
        if recursion_limit is None:
            recursion_limit = platform.host_recursion_limit
        ensure_recursion_limit(recursion_limit)
        self.sink = OutputSink()
        # Supervision policy (repro.resilience): a ResiliencePolicy, with
        # the common knobs liftable as direct kwargs (sandbox=True,
        # run_deadline=..., compile_deadline=...; an explicit
        # compile_deadline=None disarms the compile watchdog).
        policy = resilience if resilience is not None else DEFAULT_POLICY
        overrides = {}
        if sandbox is not None:
            overrides["sandbox"] = bool(sandbox)
        if run_deadline is not None:
            overrides["run_deadline"] = run_deadline
        if compile_deadline is not _UNSET:
            overrides["compile_deadline"] = compile_deadline
        if sandbox_timeout is not None:
            overrides["sandbox_timeout"] = sandbox_timeout
        if overrides:
            policy = policy.with_overrides(**overrides)
        self.resilience: ResiliencePolicy = policy
        # Observability: a per-session switchboard (null recorders unless
        # trace/metrics asked for them), shared by the repository, the
        # compilers it constructs and the background workers.
        # The crash flight recorder: flight=True keeps breadcrumbs and
        # dumps postmortem bundles into the default ~/.pymajic/postmortem
        # directory; a path dumps there instead; None/False disables it
        # (the null recorder costs one attribute check).
        flight_recorder = None
        if flight:
            flight_recorder = FlightRecorder(
                dump_dir=None if flight is True else flight
            )
        self.obs = Observability(
            trace=trace, metrics=metrics, flight=flight_recorder
        )
        self._profiler = Profiler(self.obs)
        # Disk persistence: cache_dir=True selects ~/.pymajic/cache; a
        # path (str/Path) selects that directory; None disables it.
        cache = None
        self.cache_dir = None
        if cache_dir:
            if cache_dir is True:
                cache_dir = DEFAULT_CACHE_DIR
            self.cache_dir = cache_dir
            cache = RepositoryCache(
                cache_dir,
                fault_plan=fault_plan,
                io_retries=policy.cache_io_retries,
                io_backoff=policy.cache_io_backoff,
            )
        # fusion=False is the escape hatch disabling fused elementwise
        # kernels in both consumers (JIT codegen and the interpreter's
        # fast path); an explicit jit_options.fusion is respected.
        resolved_jit = jit_options or platform.jit_options(self.ablation)
        if not fusion:
            from dataclasses import replace as _replace

            resolved_jit = _replace(resolved_jit, fusion=False)
        # Profile-guided adaptive tiering: adaptive=True builds the online
        # tier controller (repro.tiering) that watches every served call
        # and promotes hot functions interpreter -> jit -> spec in the
        # background (adaptive_sync=True compiles at the decision point —
        # deterministic tests, fuzzing and the faults harness).  ``tiering``
        # accepts a TieringPolicy overriding the thresholds.  The native
        # kernel tier rides the same controller: adaptive implies native
        # (harmlessly disabled when no C toolchain exists).
        self.tiering = None
        if adaptive:
            from repro.tiering import TierController, TieringPolicy

            policy_t = tiering if tiering is not None else TieringPolicy()
            self.tiering = TierController(
                policy=policy_t,
                obs=self.obs,
                fault_plan=fault_plan,
                sync=adaptive_sync,
                submit=self._submit_background_task,
            )
            native = True
            native_hot_threshold = policy_t.native_hot_threshold
            if adaptive_sync:
                native_sync = True
        # The native (C) tier: native=True probes for a toolchain and, if
        # one exists, compiles hot fused kernels to autotuned ``.so``s
        # out-of-band (native_sync=True compiles inline — deterministic
        # tests and the faults harness).  Artifacts live next to the
        # repository cache when one is configured, else under
        # ~/.pymajic/native, so warm sessions recompile nothing.  With no
        # toolchain the engine constructs disabled and every dispatch
        # stays on the Python kernels.
        self.native = None
        if native and fusion:
            from repro.native import NativeArtifactStore, NativeEngine
            from repro.native.artifacts import DEFAULT_NATIVE_DIR

            if cache is not None:
                native_dir = cache.directory / "native"
            else:
                native_dir = DEFAULT_NATIVE_DIR
            self.native = NativeEngine(
                store=NativeArtifactStore(native_dir),
                fault_plan=fault_plan,
                obs=self.obs,
                policy=policy,
                submit=self._submit_native_task,
                sync=native_sync,
                hot_threshold=native_hot_threshold,
                min_elems=native_min_elems,
                hotness=(
                    self.tiering.kernel_hotness
                    if self.tiering is not None else None
                ),
            )
        self.repository = CodeRepository(
            jit_options=resolved_jit,
            src_options=src_options or platform.src_options(ablation=self.ablation),
            sink=self.sink,
            inline_enabled=inline_enabled,
            compile_budget=compile_budget,
            max_strikes=max_strikes,
            fault_plan=fault_plan,
            cache=cache,
            obs=self.obs,
            resilience=policy,
            diagnostics_capacity=diagnostics_capacity,
            native=self.native,
        )
        if self.tiering is not None:
            self.tiering.bind(self.repository)
            if self.native is None or not self.native.enabled:
                # Nothing else is counting fused-kernel dispatches; let
                # the interpreter feed the shared kernel counter so the
                # summary still surfaces kernel hotness without a
                # toolchain.
                self.repository._interpreter.kernel_hotness = (
                    self.tiering.kernel_hotness
                )
        self.frontend = MajicFrontEnd(self.repository, sink=self.sink)
        # The flight recorder breadcrumbs every diagnostic and writes a
        # postmortem bundle on deopts, watchdog timeouts, sandbox deaths,
        # poison tasks and parallel-rank failures (repro.obs.flight).
        self.obs.flight.attach(self.obs, self.repository.diagnostics)
        # Background speculation: a daemon worker pool (lazily started by
        # speculate_async when background=False was given here).
        self._workers = workers or platform.speculation_workers
        self._fault_plan = fault_plan
        self.engine: SpeculationEngine | None = None
        self._closed = False
        # Source bookkeeping for the parallel backend: worker ranks are
        # separate processes and must re-register every function the
        # parent knows (the repository keeps parsed programs, not text).
        self._source_texts: list[str] = []
        self._source_paths: list[str] = []
        # MatlabMPI/pMatlab-style parallel execution: parallel=N forks N
        # worker ranks behind a scatter/compute/gather driver.  Built
        # before the first call so children fork while the session is
        # still single-threaded (no background workers running).
        self.parallel: "ParallelExecutor | None" = None
        if parallel:
            from repro.parallel.driver import ParallelExecutor

            self.parallel = ParallelExecutor(
                self,
                workers=int(parallel),
                transport=parallel_transport,
                fault_plan=fault_plan,
                obs=self.obs,
            )
        if background:
            self.engine = SpeculationEngine(
                self.repository,
                workers=self._workers,
                fault_plan=fault_plan,
                obs=self.obs,
                policy=policy,
            )
        if seed is not None:
            GLOBAL_RANDOM.seed(seed)
        # Live observability endpoint: serve_metrics=PORT exposes
        # /metrics, /healthz and /trace on a loopback daemon thread
        # (port 0 picks an ephemeral port; see session.obs_server.port).
        self.obs_server = None
        if serve_metrics is not None:
            from repro.obs.server import ObsServer

            self.obs_server = ObsServer(self, port=int(serve_metrics))

    # ------------------------------------------------------------------
    # Source management
    # ------------------------------------------------------------------
    def add_source(self, text: str) -> list[str]:
        """Register one or more function definitions from source text."""
        names = self.repository.add_source(text)
        if isinstance(text, str):
            self._source_texts.append(text)
        return names

    def add_path(self, directory) -> list[str]:
        """Put a directory of ``.m`` files on the snooped path."""
        names = self.repository.add_path(directory)
        self._source_paths.append(str(directory))
        return names

    def shipped_sources(self) -> list[str]:
        """Source texts registered so far (parallel ranks replay these)."""
        return self._source_texts

    def shipped_paths(self) -> list[str]:
        """Snooped directories registered so far."""
        return self._source_paths

    def rescan(self) -> list[str]:
        """Re-snoop the path, picking up changed files."""
        return self.repository.rescan()

    def speculate_all(self, budget: float | CompileBudget | None = None):
        """Run the speculative ahead-of-time compiler over everything.

        ``budget`` (seconds, or a
        :class:`~repro.repository.repo.CompileBudget`) bounds the pass:
        functions that don't fit are skipped and reported, never raised.
        Returns the list of compiled names (a
        :class:`~repro.repository.repo.SpeculationReport` carrying
        ``skipped`` / ``failed`` / ``elapsed`` as well).
        """
        return self.repository.speculate_all(budget=budget)

    # ------------------------------------------------------------------
    # Background speculation (the hidden-compile-time machinery)
    # ------------------------------------------------------------------
    def speculate_async(self) -> int:
        """Queue every known function for *background* speculation.

        Returns immediately (this is the point: compile time hides behind
        user think-time) with the number of functions queued.  Starts the
        worker pool on first use when the session was not constructed
        with ``background=True``.
        """
        if self.engine is None:
            self.engine = SpeculationEngine(
                self.repository,
                workers=self._workers,
                fault_plan=self._fault_plan,
                obs=self.obs,
                policy=self.resilience,
            )
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self.engine.submit_all()
        with tracer.span("speculate_async", "speculation"):
            return self.engine.submit_all()

    def _submit_native_task(self, fn, label: str) -> bool:
        """Native compiles ride the supervised speculation worker pool
        (started lazily), so the foreground never blocks on a C compile."""
        return self._submit_background_task(fn, label)

    def _submit_background_task(self, fn, label: str, on_done=None) -> bool:
        """Queue one out-of-band task (native compile, tier promotion) on
        the supervised worker pool, starting it lazily."""
        if self._closed:
            return False
        if self.engine is None:
            self.engine = SpeculationEngine(
                self.repository,
                workers=self._workers,
                fault_plan=self._fault_plan,
                obs=self.obs,
                policy=self.resilience,
            )
        return self.engine.submit_task(fn, label, on_done=on_done)

    def pending_speculation(self) -> int:
        """Background compiles still queued or in flight."""
        return 0 if self.engine is None else self.engine.pending()

    def drain_speculation(self, timeout: float | None = None) -> bool:
        """Wait for the background queue to go quiet; False on timeout."""
        return True if self.engine is None else self.engine.drain(timeout)

    def close(self) -> None:
        """Tear the session down; idempotent.

        Stops the background workers and their supervisor, disarms the
        repository's watchdog deadlines (no registrations leak into the
        process-wide monitor after close) and disables the sandbox tier.
        A closed session can still evaluate code — it simply runs without
        supervision or background compilation.
        """
        if self._closed:
            return
        self._closed = True
        if self.obs_server is not None:
            self.obs_server.close()
            self.obs_server = None
        if self.parallel is not None:
            self.parallel.shutdown()
            self.parallel = None
        if self.engine is not None:
            self.engine.shutdown()
            self.engine = None
        if self.tiering is not None:
            # Persist learned hotness + winning-tier verdicts after the
            # worker pool has drained, so in-flight promotions count.
            self.tiering.save()
        if self.native is not None:
            # No threads of its own to stop; disabling the engine routes
            # every later dispatch back to the Python kernels (a closed
            # session runs unsupervised, so no native code either).
            self.native.enabled = False
        repo = self.repository
        guard = getattr(repo, "guard", None)
        if guard is not None:
            guard.compile_deadline = None
            guard.run_deadline = None
        repo._run_guard_enabled = False
        repo.sandbox = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def eval(self, text: str) -> None:
        """Interpret top-level code in the session workspace."""
        self.frontend.eval(text)

    def call(self, name: str, *args, nargout: int = 1):
        """Call a user function; returns unboxed host value(s).

        With ``nargout == 1`` the single result is returned bare; larger
        ``nargout`` returns a tuple.
        """
        boxed = [from_python(a) for a in args]
        outputs = self.call_boxed(name, boxed, nargout=nargout)
        unboxed = tuple(to_python(v) for v in outputs)
        if nargout <= 1:
            return unboxed[0] if unboxed else None
        return unboxed

    def call_boxed(self, name: str, args, nargout: int = 1):
        """Call with/returning boxed MxArray values (harness use).

        With ``parallel=N`` the call routes through the scatter/compute/
        gather driver, which falls back to serial execution on any
        worker fault (results stay bit-identical either way).
        """
        if self.parallel is not None and self.parallel.enabled:
            return self.parallel.call(name, list(args), nargout=nargout)
        return self.frontend.call(name, list(args), nargout=nargout)

    def get(self, name: str):
        """Read a workspace variable as a host value."""
        value = self.frontend.workspace.get(name)
        return None if value is None else to_python(value)

    def output(self) -> str:
        """Everything the session printed so far."""
        return self.sink.getvalue()

    def reseed(self, seed: int) -> None:
        """Reset the shared random stream (deterministic comparisons)."""
        GLOBAL_RANDOM.seed(seed)

    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.repository.stats

    @property
    def diagnostics(self):
        """The robustness event log (deopts, quarantines, budget skips,
        compile failures) — see :mod:`repro.repository.diagnostics`."""
        return self.repository.diagnostics

    # ------------------------------------------------------------------
    # Observability surface
    # ------------------------------------------------------------------
    def profile(self, action: str = "report"):
        """MATLAB-style profiler control: ``profile("on"|"off"|"report"|
        "clear")``.

        ``on`` enables span recording (even on a session constructed
        without ``trace=True``); ``off`` stops it, keeping the recorded
        window; ``report`` returns a
        :class:`~repro.obs.profiler.ProfileReport` of per-function
        self/cumulative time and call counts split by tier.
        """
        action = action.lower()
        if action == "on":
            self._profiler.on()
            # The diagnostics bridge no-ops while everything is disabled,
            # so (re)bind now that a live tracer exists.
            self.obs.bind_diagnostics(self.repository.diagnostics)
            return None
        if action == "off":
            self._profiler.off()
            return None
        if action == "clear":
            self._profiler.clear()
            return None
        if action == "report":
            return self._profiler.report()
        raise ValueError(
            f"profile() expects 'on', 'off', 'report' or 'clear'; got {action!r}"
        )

    def profile_spans(self):
        """Raw spans of the current profiled window (Figure 6 input)."""
        return self._profiler.spans()

    def trace_json(self) -> str:
        """The recorded spans as Chrome-trace/Perfetto JSON."""
        return chrome_trace_json(self.obs.tracer)

    def trace_tree(self) -> str:
        """The recorded spans as an indented text tree."""
        return self.obs.tracer.render_tree()

    def metrics_text(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return prometheus_text(self.obs.metrics)

    def summary(self) -> str:
        """One-screen session health report (tiers, cache, degradations)."""
        stats = self.stats
        calls = stats.calls_jit + stats.calls_spec + stats.calls_interpreted
        compiled_calls = stats.calls_jit + stats.calls_spec
        compiled_pct = 100.0 * compiled_calls / calls if calls else 0.0
        cache_probes = stats.cache_hits + stats.jit_compiles + stats.speculative_compiles
        counts = self.diagnostics.counts()
        lines = [
            "MaJIC session summary",
            "---------------------",
            f"calls            {calls} total: {stats.calls_jit} jit, "
            f"{stats.calls_spec} spec, {stats.calls_interpreted} interpreted "
            f"({compiled_pct:.1f}% compiled)",
            f"compiles         {stats.jit_compiles} jit, "
            f"{stats.speculative_compiles} speculative "
            f"({stats.background_compiles} in background), "
            f"{stats.compile_failures} failed",
            f"compile time     {stats.jit_compile_seconds:.4f}s jit, "
            f"{stats.speculative_compile_seconds:.4f}s speculative",
            f"cache            {stats.cache_hits} hits, "
            f"{stats.cache_stores} stores"
            + (
                f" ({100.0 * stats.cache_hits / cache_probes:.1f}% hit ratio)"
                if cache_probes
                else ""
            ),
            f"degradations     {stats.deopts} deopts, "
            f"{stats.quarantines} quarantines, "
            f"{stats.budget_skips} budget skips",
            f"diagnostics      {len(self.diagnostics)} events recorded, "
            f"{self.diagnostics.dropped} dropped"
            + (f" ({', '.join(f'{k}={v}' for k, v in sorted(counts.items()))})"
               if counts else ""),
            f"speculation      {self.pending_speculation()} pending in background",
        ]
        if self.tiering is not None:
            report = self.tiering.report()
            counts_t = report["counts"]
            per_tier = ", ".join(
                f"{count} {tier}"
                for tier, count in sorted(
                    counts_t.items(), key=lambda item: item[0]
                )
            ) or "no functions observed"
            lines.append(
                f"tiering          adaptive: {per_tier}; "
                f"{report['promotions']} promotions "
                f"({report['profile_restores']} profiles restored), "
                f"{report['demotions']} demotions, "
                f"{report['kernels_tracked']} kernels tracked"
            )
        lines += [
            f"observability    trace={'on' if self.obs.tracer.enabled else 'off'}, "
            f"metrics={'on' if self.obs.metrics.enabled else 'off'}"
            + (f", {len(self.obs.tracer.spans())} spans recorded"
               if self.obs.tracer.enabled else ""),
        ]
        return "\n".join(lines)

    def invocation(self, name: str, *args, nargout: int = 1) -> Invocation:
        return Invocation(
            name=name,
            args=[from_python(a) for a in args],
            nargout=nargout,
        )
