"""Timing utilities for the measurement harness (Figure 6 breakdowns)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Stopwatch:
    """A context-manager stopwatch."""

    def __init__(self):
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += time.perf_counter() - self._start
        self._start = None


@dataclass
class ExecutionBreakdown:
    """Where one benchmark run spent its time (Figure 6's categories)."""

    disambiguation: float = 0.0
    type_inference: float = 0.0
    codegen: float = 0.0
    execution: float = 0.0

    @property
    def compile(self) -> float:
        return self.disambiguation + self.type_inference + self.codegen

    @property
    def total(self) -> float:
        return self.compile + self.execution

    def fractions(self) -> dict[str, float]:
        """Normalized shares (the stacked bars of Figure 6)."""
        total = self.total or 1.0
        return {
            "disamb": self.disambiguation / total,
            "typeinf": self.type_inference / total,
            "codegen": self.codegen / total,
            "exec": self.execution / total,
        }

    def add_phases(self, phase_times) -> None:
        self.disambiguation += phase_times.disambiguation
        self.type_inference += phase_times.type_inference
        self.codegen += phase_times.codegen

    @classmethod
    def from_spans(cls, spans) -> "ExecutionBreakdown":
        """Re-derive Figure 6's categories from a traced session's spans.

        Each compile-phase span category maps to its breakdown bucket;
        ``execution`` spans contribute *self* time (duration minus direct
        children) so nested interpreter->compiled calls are not double
        counted.  Built on the same :func:`repro.obs.trace.self_times`
        substrate as the profiler, so the two reports agree by
        construction.
        """
        from repro.obs.trace import self_times

        spans = tuple(spans)
        selfs = self_times(spans)
        breakdown = cls()
        for span in spans:
            if span.category == "disambiguation":
                breakdown.disambiguation += span.duration
            elif span.category == "type_inference":
                breakdown.type_inference += span.duration
            elif span.category == "codegen":
                breakdown.codegen += span.duration
            elif span.category == "execution":
                breakdown.execution += selfs.get(span.span_id, 0.0)
        return breakdown
