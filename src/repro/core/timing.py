"""Timing utilities for the measurement harness (Figure 6 breakdowns)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Stopwatch:
    """A context-manager stopwatch."""

    def __init__(self):
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += time.perf_counter() - self._start
        self._start = None


@dataclass
class ExecutionBreakdown:
    """Where one benchmark run spent its time (Figure 6's categories)."""

    disambiguation: float = 0.0
    type_inference: float = 0.0
    codegen: float = 0.0
    execution: float = 0.0

    @property
    def compile(self) -> float:
        return self.disambiguation + self.type_inference + self.codegen

    @property
    def total(self) -> float:
        return self.compile + self.execution

    def fractions(self) -> dict[str, float]:
        """Normalized shares (the stacked bars of Figure 6)."""
        total = self.total or 1.0
        return {
            "disamb": self.disambiguation / total,
            "typeinf": self.type_inference / total,
            "codegen": self.codegen / total,
            "exec": self.execution / total,
        }

    def add_phases(self, phase_times) -> None:
        self.disambiguation += phase_times.disambiguation
        self.type_inference += phase_times.type_inference
        self.codegen += phase_times.codegen
