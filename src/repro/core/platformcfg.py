"""Platform configurations and ablation flags.

The paper evaluates on two machines whose relevant differences are
qualitative, not absolute speed:

* **SPARC** (UltraSparc 10, Sparcworks C) — "the native Fortran-90 compiler
  generates relatively poor code, causing MaJIC to outperform FALCON in a
  few of the benchmarks"; the JIT code generator "was optimized for this
  platform".
* **MIPS** (SGI Origin 200, MIPSPro C) — "the native compiler is
  excellent, causing MaJIC's JIT compiler to fall behind FALCON"; the JIT
  "is not yet completely implemented" there (some benchmarks run at
  reduced performance, `adapt` is excluded).

We model exactly those differences: the modelled native backend's
optimization level (which both FALCON and MaJIC-speculative inherit, since
both compile through the native toolchain) and the JIT's maturity.

:class:`AblationFlags` carries the Figure 7 switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.codegen.jitgen import JitOptions
from repro.codegen.srcgen import SrcOptions
from repro.inference.engine import InferenceOptions


@dataclass(frozen=True)
class AblationFlags:
    """Figure 7: individually disabled JIT optimizations."""

    no_ranges: bool = False        # disable range propagation
    no_min_shapes: bool = False    # disable minimum-shape propagation
    no_regalloc: bool = False      # spill every register

    @property
    def label(self) -> str:
        parts = []
        if self.no_ranges:
            parts.append("no ranges")
        if self.no_min_shapes:
            parts.append("no min. shapes")
        if self.no_regalloc:
            parts.append("no regalloc")
        return ", ".join(parts) or "full"


@dataclass(frozen=True)
class PlatformConfig:
    """One modelled evaluation platform."""

    name: str
    description: str
    # Strength of the modelled native toolchain (srcgen optimization gate).
    native_opt_level: int
    # JIT maturity on this platform.
    jit_num_registers: int = 12
    jit_unroll: bool = True
    jit_dgemv: bool = True
    # Benchmarks excluded on this platform (paper: adapt on MIPS).
    excluded_benchmarks: tuple[str, ...] = ()
    # Host recursion headroom sessions request (deeply recursive MATLAB
    # code interprets through host recursion); 0 = leave the limit alone.
    host_recursion_limit: int = 100_000
    # Width of the background speculation worker pool ("the compiler runs
    # during user think-time"); sessions use this when asked to speculate
    # in the background without an explicit worker count.
    speculation_workers: int = 2

    # ------------------------------------------------------------------
    def jit_options(self, ablation: AblationFlags | None = None) -> JitOptions:
        flags = ablation or AblationFlags()
        inference = InferenceOptions(
            range_propagation=not flags.no_ranges,
            min_shape_propagation=not flags.no_min_shapes,
        )
        return JitOptions(
            num_registers=self.jit_num_registers,
            spill_everything=flags.no_regalloc,
            unroll_enabled=self.jit_unroll and not flags.no_min_shapes,
            dgemv_enabled=self.jit_dgemv,
            inference=inference,
        )

    def src_options(
        self,
        majic_opts: bool = True,
        ablation: AblationFlags | None = None,
    ) -> SrcOptions:
        flags = ablation or AblationFlags()
        inference = InferenceOptions(
            range_propagation=not flags.no_ranges,
            min_shape_propagation=not flags.no_min_shapes,
        )
        return SrcOptions(
            native_opt_level=self.native_opt_level,
            majic_opts=majic_opts and not flags.no_min_shapes,
            versioning=True,
            inference=inference,
        )


SPARC = PlatformConfig(
    name="sparc",
    description="400MHz UltraSparc 10 / Solaris 7 / Sparcworks C 5.0 "
    "(weak native backend, fully tuned JIT)",
    native_opt_level=1,
)

MIPS = PlatformConfig(
    name="mips",
    description="SGI Origin 200, 180MHz R10000 / IRIX 6.5 / MIPSPro C "
    "(strong native backend, incomplete JIT)",
    native_opt_level=2,
    jit_num_registers=6,
    jit_unroll=False,
    jit_dgemv=False,
    excluded_benchmarks=("adapt",),
)

_PLATFORMS = {"sparc": SPARC, "mips": MIPS}


def platform_by_name(name: str) -> PlatformConfig:
    try:
        return _PLATFORMS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r} (choose from {sorted(_PLATFORMS)})"
        ) from None
