"""Seeded random-program generation for the differential fuzzer.

The generator is a tiny attribute grammar driven by ``random.Random``:
the same seed always yields the same program text and argument list, so
every mismatch report is reproducible with ``python -m repro.fuzz --seed
N --count 1``.

The grammar deliberately stays inside the subset every backend supports
and keeps floating-point evaluation order deterministic — bit-identity
across backends is the *assertion*, so the generator must not introduce
legitimate divergence (e.g. reassociated reductions).  Within that
boundary it reaches for the constructs that historically break
compilers: matrices that change shape in loops, elementwise operator
chains (the fused-kernel path), slicing and linear stores (subscript
check elision), scalar/matrix overloads of the same variable, bool/char
values, and guaranteed out-of-range reads (error-path identity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Scalar parameters every generated function receives.
SCALAR_PARAMS = ("x", "y")
#: The matrix parameter (shape randomized per program).
MATRIX_PARAM = "M"

#: Builtins applied to scalar expressions.
SCALAR_FUNCS = ("abs", "floor", "ceil", "round", "sign", "cos", "sin")
#: Builtins applied to matrix expressions (shape-preserving).
MATRIX_FUNCS = ("abs", "floor", "round", "cos", "sin", "sign")
#: Reductions folding a matrix into a scalar-ish value.
REDUCE_FUNCS = ("sum", "numel", "length", "min", "max")

SCALAR_VARS = ("s", "t", "u")
MATRIX_VARS = ("A", "B")


@dataclass(frozen=True)
class GeneratedProgram:
    """One reproducible fuzz case: source text + concrete arguments."""

    seed: int
    name: str
    source: str
    args: tuple
    expects_error: bool = False
    features: tuple[str, ...] = field(default=())


class _Gen:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.seed = seed
        self.features: list[str] = []

    # -- scalar expressions -------------------------------------------
    def scalar_atom(self) -> str:
        r = self.rng
        choice = r.randrange(6)
        if choice == 0:
            return r.choice(SCALAR_PARAMS)
        if choice == 1:
            return r.choice(SCALAR_VARS)
        if choice == 2:
            return str(r.randrange(-9, 10))
        if choice == 3:
            return f"{r.randrange(1, 20) / 4}"
        if choice == 4:
            self.features.append("reduce")
            fn = r.choice(REDUCE_FUNCS)
            if fn in ("min", "max"):
                # min/max of a matrix returns a row vector; reduce twice.
                return f"{fn}({fn}({self.matrix_atom()}))"
            if fn == "sum":
                return f"sum(sum({self.matrix_atom()}))"
            return f"{fn}({self.matrix_atom()})"
        return f"{r.choice(SCALAR_VARS)}"

    def scalar_expr(self, depth: int = 2) -> str:
        r = self.rng
        if depth <= 0 or r.random() < 0.35:
            return self.scalar_atom()
        if r.random() < 0.2:
            fn = r.choice(SCALAR_FUNCS)
            return f"{fn}({self.scalar_expr(depth - 1)})"
        op = r.choice(("+", "-", "*", "/"))
        left = self.scalar_expr(depth - 1)
        right = self.scalar_expr(depth - 1)
        if op == "/":
            right = f"(abs({right}) + 3)"  # keep divisors away from zero
        return f"({left} {op} {right})"

    # -- matrix expressions -------------------------------------------
    def matrix_atom(self) -> str:
        r = self.rng
        choice = r.randrange(4)
        if choice == 0:
            return MATRIX_PARAM
        if choice in (1, 2):
            return r.choice(MATRIX_VARS)
        self.features.append("slice")
        return f"{MATRIX_PARAM}(1:2, :)" if r.random() < 0.5 else \
            f"{MATRIX_PARAM}(:, 1:2)"

    def matrix_expr(self, depth: int = 2) -> str:
        r = self.rng
        if depth <= 0 or r.random() < 0.3:
            return self.matrix_atom()
        roll = r.random()
        if roll < 0.2:
            fn = r.choice(MATRIX_FUNCS)
            return f"{fn}({self.matrix_expr(depth - 1)})"
        if roll < 0.45:
            self.features.append("elementwise")
            op = r.choice((".*", "+", "-"))
            return (
                f"({self.matrix_expr(depth - 1)} {op} "
                f"{self.matrix_expr(depth - 1)})"
            )
        self.features.append("broadcast")
        op = r.choice(("*", "+", "-", ".*"))
        return f"({self.matrix_expr(depth - 1)} {op} {self.scalar_expr(1)})"

    # -- statements ----------------------------------------------------
    def statement(self, depth: int = 1) -> str:
        r = self.rng
        kinds = ["sassign", "sassign", "massign", "store", "slice_assign"]
        if depth > 0:
            kinds += ["if", "for", "while", "disp"]
        kind = r.choice(kinds)
        if kind == "sassign":
            return f"{r.choice(SCALAR_VARS)} = {self.scalar_expr()};"
        if kind == "massign":
            return f"{r.choice(MATRIX_VARS)} = {self.matrix_expr()};"
        if kind == "store":
            self.features.append("store")
            target = r.choice(MATRIX_VARS)
            i, j = r.randrange(1, 4), r.randrange(1, 4)
            if r.random() < 0.4:
                return f"v({r.randrange(1, 6)}) = {self.scalar_expr(1)};"
            return f"{target}({i}, {j}) = {self.scalar_expr(1)};"
        if kind == "slice_assign":
            self.features.append("slice")
            target = r.choice(MATRIX_VARS)
            row = r.randrange(1, 3)
            return f"{target}({row}, :) = {MATRIX_PARAM}({row}, :);"
        if kind == "if":
            cond = f"{self.scalar_expr(1)} > {self.scalar_expr(0)}"
            then = self.statement(0)
            orelse = self.statement(0)
            return f"if {cond},\n  {then}\nelse\n  {orelse}\nend"
        if kind == "while":
            self.features.append("while")
            var = r.choice(SCALAR_VARS)
            bound = r.randrange(2, 6)
            body = self.statement(0)
            return (
                f"w = 0;\nwhile w < {bound},\n  {body}\n"
                f"  w = w + 1;\n  {var} = {var} + w;\nend"
            )
        if kind == "disp":
            self.features.append("display")
            return f"disp({self.scalar_expr(1)});"
        stop = r.randrange(2, 6)
        body = self.statement(0)
        return f"for k = 1:{stop},\n  {body}\n  s = s + k;\nend"

    # ------------------------------------------------------------------
    def program(self) -> GeneratedProgram:
        r = self.rng
        name = f"fuzz{self.seed}"
        rows = r.randrange(2, 5)
        cols = r.randrange(2, 5)
        lines = [
            f"function [r1, r2] = {name}(x, y, M)",
            "s = x + 1; t = y - 1; u = x * y;",
            "A = M; B = M';" if r.random() < 0.3 else "A = M; B = M .* 2;",
            "v = zeros(1, 5);",
        ]
        if "'" in lines[2]:
            self.features.append("transpose")
            # transpose only squares cleanly; force square matrices
            cols = rows
        for _ in range(r.randrange(2, 7)):
            lines.append(self.statement())
        expects_error = r.random() < 0.12
        if expects_error:
            self.features.append("error")
            # A guaranteed out-of-range read: every backend must raise
            # the same MATLAB error text.
            lines.append(f"s = M({rows + 7}, {cols + 7});")
        lines.append("r1 = s + t + u + sum(v);")
        lines.append("r2 = A + B .* 0 + sum(sum(A));")
        source = "\n".join(lines) + "\n"
        # Concrete arguments: quarter-integer scalars and matrix entries
        # keep intermediate values exactly representable, so differences
        # can only come from diverging operation order — the thing the
        # fuzzer is hunting.
        x = r.randrange(-20, 21) / 4
        y = r.randrange(-20, 21) / 4
        matrix = [
            [r.randrange(-12, 13) / 4 for _ in range(cols)]
            for _ in range(rows)
        ]
        return GeneratedProgram(
            seed=self.seed,
            name=name,
            source=source,
            args=(x, y, matrix),
            expects_error=expects_error,
            features=tuple(sorted(set(self.features))),
        )


def generate_program(seed: int) -> GeneratedProgram:
    """The deterministic fuzz case for one seed."""
    return _Gen(seed).program()
