"""CLI for the differential fuzzer: ``python -m repro.fuzz``.

Examples::

    python -m repro.fuzz                         # 50 cases, all backends
    python -m repro.fuzz --seed 120 --count 200
    python -m repro.fuzz --backends jit,fused,parallel --verbose
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.runner import BACKENDS, DEFAULT_BACKENDS, fuzz


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing across every execution backend.",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="first program seed (default 0)",
    )
    parser.add_argument(
        "--count", type=int, default=50,
        help="number of consecutive seeds to check (default 50)",
    )
    parser.add_argument(
        "--backends", default=",".join(DEFAULT_BACKENDS),
        help="comma-separated backend labels (default: all); "
             f"known: {', '.join(BACKENDS)}",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print every case as it runs",
    )
    args = parser.parse_args(argv)

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        parser.error(f"unknown backends: {', '.join(unknown)}")

    def on_case(program, mismatches):
        status = "MISMATCH" if mismatches else "ok"
        if args.verbose or mismatches:
            features = ",".join(program.features) or "-"
            print(f"seed {program.seed:6d}  [{features}]  {status}")
        for mismatch in mismatches:
            print(f"  {mismatch}")
            print("  --- program ---")
            for line in program.source.splitlines():
                print(f"  | {line}")

    report = fuzz(
        seed=args.seed, count=args.count, backends=backends, on_case=on_case,
    )
    print(
        f"checked {report.checked} programs on {len(backends)} backends: "
        f"{len(report.mismatches)} mismatches "
        f"({report.errored_programs} programs raised, identically or not)"
    )
    return 1 if report.mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
