"""Execute generated programs on every backend and compare bit-for-bit.

The interpreter is ground truth (the paper's Section 2.2.1 contract).
For each backend we canonicalize the run into a :class:`RunResult`:

* every output as ``(shape, dtype, raw little-endian bytes)`` — byte
  equality is NaN-payload- and signed-zero-exact;
* the display sink's text;
* the MATLAB error message, when the program raised.

A backend matches iff all three are equal.  Anything else — a different
result bit, a differently formatted ``disp``, a different error string —
is a :class:`Mismatch`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.falcon import FalconCompilerEngine
from repro.baselines.mcc import MccCompilerEngine
from repro.core.majic import MajicSession
from repro.errors import MatlabError
from repro.frontend.parser import parse
from repro.fuzz.grammar import GeneratedProgram, generate_program
from repro.interp.interpreter import Interpreter
from repro.runtime.builtins import GLOBAL_RANDOM
from repro.runtime.display import OutputSink
from repro.runtime.mxarray import MxArray
from repro.runtime.values import from_python
from repro.tiering import TieringPolicy

#: RNG seed applied before every backend run (programs using ``rand``
#: must read the same stream everywhere).
RNG_SEED = 20020617

#: Hair-trigger thresholds for the adaptive backend: the top-level call's
#: callees promote after a single observation, so generated programs with
#: loops/recursion exercise interpreter->jit->spec switches mid-run.
_AGGRESSIVE_TIERING = TieringPolicy(jit_threshold=1.0, spec_threshold=2.0)


@dataclass(frozen=True)
class RunResult:
    """Canonicalized observable behaviour of one program run."""

    outputs: tuple
    display: str
    error: str | None

    def matches(self, other: "RunResult") -> bool:
        return (
            self.outputs == other.outputs
            and self.display == other.display
            and self.error == other.error
        )


@dataclass(frozen=True)
class Mismatch:
    seed: int
    backend: str
    field: str
    expected: object
    actual: object

    def __str__(self) -> str:
        return (
            f"seed {self.seed}: backend '{self.backend}' diverged on "
            f"{self.field}: expected {self.expected!r}, got {self.actual!r}"
        )


def _canon_value(value) -> tuple:
    if isinstance(value, MxArray):
        if value.is_string:
            return ("char", value.text)
        data = np.ascontiguousarray(value.view())
        return ("mat", data.shape, str(data.dtype), data.tobytes())
    return ("host", repr(value))


def _canonical(outputs, sink: OutputSink, error) -> RunResult:
    return RunResult(
        outputs=tuple(_canon_value(v) for v in (outputs or ())),
        display=sink.getvalue(),
        error=str(error) if error is not None else None,
    )


def _boxed_args(program: GeneratedProgram):
    return [from_python(a) for a in program.args]


# ----------------------------------------------------------------------
# Backend runners
# ----------------------------------------------------------------------
def _run_interpreter(program: GeneratedProgram) -> RunResult:
    table = {fn.name: fn for fn in parse(program.source).functions}
    sink = OutputSink()
    interp = Interpreter(function_lookup=table.get, sink=sink)
    GLOBAL_RANDOM.seed(RNG_SEED)
    outputs = error = None
    try:
        outputs = interp.call_function(
            table[program.name], _boxed_args(program), 2
        )
    except MatlabError as exc:
        error = exc
    return _canonical(outputs, sink, error)


def _run_session(program: GeneratedProgram, **kwargs) -> RunResult:
    speculate = kwargs.pop("speculate", False)
    background = kwargs.pop("background", False)
    session = MajicSession(seed=None, **kwargs)
    try:
        session.add_source(program.source)
        if background:
            session.speculate_async()
            if not session.drain_speculation(timeout=60):
                raise RuntimeError("background speculation queue hung")
        elif speculate:
            session.speculate_all()
        GLOBAL_RANDOM.seed(RNG_SEED)
        outputs = error = None
        try:
            outputs = session.call_boxed(
                program.name, _boxed_args(program), nargout=2
            )
        except MatlabError as exc:
            error = exc
        return _canonical(outputs, session.sink, error)
    finally:
        session.close()


def _run_baseline(program: GeneratedProgram, factory) -> RunResult:
    sink = OutputSink()
    engine = factory(sink=sink)
    engine.add_source(program.source)
    GLOBAL_RANDOM.seed(RNG_SEED)
    outputs = error = None
    try:
        outputs = engine.execute(program.name, _boxed_args(program), 2)
    except MatlabError as exc:
        error = exc
    return _canonical(outputs, sink, error)


#: Label -> runner.  ``interpreter`` is the ground truth every other
#: backend is compared against.
BACKENDS = {
    "interpreter": _run_interpreter,
    "jit": lambda p: _run_session(p, fusion=False),
    "fused": lambda p: _run_session(p),
    "spec": lambda p: _run_session(p, speculate=True),
    "background": lambda p: _run_session(p, background=True),
    "falcon": lambda p: _run_baseline(p, FalconCompilerEngine),
    "mcc": lambda p: _run_baseline(p, MccCompilerEngine),
    "parallel": lambda p: _run_session(p, parallel=2),
    # Adaptive tiering with promotion thresholds low enough that tier
    # switches happen *mid-program* (sync mode keeps runs deterministic):
    # the continuous bit-identity check for the online controller.
    "adaptive": lambda p: _run_session(
        p, adaptive=True, adaptive_sync=True, tiering=_AGGRESSIVE_TIERING
    ),
}

DEFAULT_BACKENDS = tuple(label for label in BACKENDS if label != "interpreter")


def run_backend(label: str, program: GeneratedProgram) -> RunResult:
    return BACKENDS[label](program)


def check_program(
    program: GeneratedProgram, backends=DEFAULT_BACKENDS
) -> list[Mismatch]:
    """Run one program everywhere; report every divergence from the
    interpreter."""
    expected = _run_interpreter(program)
    mismatches: list[Mismatch] = []
    for label in backends:
        if label == "interpreter":
            continue
        actual = run_backend(label, program)
        for field_name in ("outputs", "display", "error"):
            want = getattr(expected, field_name)
            got = getattr(actual, field_name)
            if want != got:
                mismatches.append(Mismatch(
                    seed=program.seed, backend=label, field=field_name,
                    expected=want, actual=got,
                ))
    return mismatches


@dataclass
class FuzzReport:
    checked: int = 0
    errored_programs: int = 0
    mismatches: list = None

    def __post_init__(self):
        if self.mismatches is None:
            self.mismatches = []

    @property
    def ok(self) -> bool:
        return not self.mismatches


def fuzz(
    seed: int = 0,
    count: int = 50,
    backends=DEFAULT_BACKENDS,
    on_case=None,
) -> FuzzReport:
    """Check ``count`` consecutive seeds starting at ``seed``."""
    report = FuzzReport()
    for case_seed in range(seed, seed + count):
        program = generate_program(case_seed)
        found = check_program(program, backends)
        report.checked += 1
        expected = _run_interpreter(program)
        if expected.error is not None:
            report.errored_programs += 1
        report.mismatches.extend(found)
        if on_case is not None:
            on_case(program, found)
    return report
