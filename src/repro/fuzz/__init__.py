"""Grammar-driven differential fuzzing across every execution backend.

A seeded generator (:mod:`repro.fuzz.grammar`) produces random MATLAB
programs — scalar and matrix arithmetic, elementwise operators, ``for``
/ ``while`` / ``if`` control flow, slicing, stores and a curated builtin
set — and the runner (:mod:`repro.fuzz.runner`) executes each program on
every backend (interpreter, JIT, fused-kernel JIT, speculative,
background-speculative, the FALCON and mcc baselines, and the
MatlabMPI-style parallel driver), asserting that outputs, display text
and error messages are **bit-identical** to the interpreter's.

Use as a library (the differential pytest suite), or as a CLI::

    python -m repro.fuzz --seed 0 --count 50
    python -m repro.fuzz --backends jit,fused,parallel --count 200
"""

from __future__ import annotations

from repro.fuzz.grammar import GeneratedProgram, generate_program
from repro.fuzz.runner import (
    BACKENDS,
    RunResult,
    check_program,
    fuzz,
    run_backend,
)

__all__ = [
    "BACKENDS",
    "GeneratedProgram",
    "RunResult",
    "check_program",
    "fuzz",
    "generate_program",
    "run_backend",
]
