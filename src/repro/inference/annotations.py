"""Type annotations: the output of type inference (Section 2.3).

``S`` in the paper — one conservative type per expression node — plus the
derived facts the code generators consume: per-variable summaries,
subscript-safety classifications (Section 2.4, "Subscript check removal")
and the inferred output types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.frontend import ast_nodes as ast
from repro.typesys.mtype import MType


class SubscriptSafety(enum.Enum):
    """How much checking a compiled array access still needs."""

    CHECKED = "checked"        # full MATLAB checks
    GROW_ONLY = "grow_only"    # index proven positive+integral; may grow
    SAFE = "safe"              # proven in bounds: direct access


@dataclass
class Annotations:
    """Everything inference learned about one function body."""

    # id(expression node) -> inferred type
    expr_types: dict[int, MType] = field(default_factory=dict)
    # join of a variable's types over all its definitions
    var_types: dict[str, MType] = field(default_factory=dict)
    # id(Apply used as index / LValue) -> subscript safety class
    load_safety: dict[int, SubscriptSafety] = field(default_factory=dict)
    store_safety: dict[int, SubscriptSafety] = field(default_factory=dict)
    # inferred types of the declared outputs at function exit
    output_types: dict[str, MType] = field(default_factory=dict)
    converged: bool = True
    iterations: int = 0

    # ------------------------------------------------------------------
    def type_of(self, node: ast.Expr) -> MType:
        return self.expr_types.get(id(node), MType.top())

    def set_type(self, node: ast.Expr, mtype: MType) -> None:
        self.expr_types[id(node)] = mtype

    def note_var(self, name: str, mtype: MType) -> None:
        existing = self.var_types.get(name)
        self.var_types[name] = mtype if existing is None else existing.join(mtype)

    def var_type(self, name: str) -> MType:
        return self.var_types.get(name, MType.top())

    def safety_of_load(self, node: ast.Expr) -> SubscriptSafety:
        return self.load_safety.get(id(node), SubscriptSafety.CHECKED)

    def safety_of_store(self, target: ast.LValue) -> SubscriptSafety:
        return self.store_safety.get(id(target), SubscriptSafety.CHECKED)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counts used by tests and the experiment reports."""
        return {
            "expressions": len(self.expr_types),
            "safe_loads": sum(
                1 for s in self.load_safety.values() if s is SubscriptSafety.SAFE
            ),
            "checked_loads": sum(
                1 for s in self.load_safety.values() if s is SubscriptSafety.CHECKED
            ),
            "safe_stores": sum(
                1 for s in self.store_safety.values() if s is SubscriptSafety.SAFE
            ),
            "grow_stores": sum(
                1 for s in self.store_safety.values()
                if s is SubscriptSafety.GROW_ONLY
            ),
            "checked_stores": sum(
                1 for s in self.store_safety.values()
                if s is SubscriptSafety.CHECKED
            ),
        }
