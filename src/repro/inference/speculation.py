"""The type speculator (Section 2.5).

Speculative type inference assumes nothing about the calling context.  It
*guesses* likely argument types by back-propagating hints from syntactic
constructs in the body to the input parameters, alternating backward and
forward passes until the speculated signature converges:

1. a forward pass types the body under the current guessed signature;
2. a backward pass visits every hint site (colon operands, relational
   operands, bracket arguments, Fortran-77-style subscripts, builtin
   arguments with integer-scalar affinity) and, wherever a hinted operand
   traces back to a formal parameter, *meets* the hint into that
   parameter's guessed type;
3. repeat until nothing changes (or a pass cap is hit).

A parameter whose hints conflict (meet = bottom), or that receives no
hints at all, stays at ⊤ — the generated code for it falls back to the
generic complex-matrix path, which is exactly the paper's documented
failure mode for ``qmr`` and ``mei``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CondAtom, ForIterAtom, StmtAtom
from repro.analysis.disambiguate import DisambiguationResult, Disambiguator
from repro.analysis.usedef import UseDefChains, build_use_def
from repro.frontend import ast_nodes as ast
from repro.inference.annotations import Annotations
from repro.inference.calculator import RuleContext, TypeCalculator, default_calculator
from repro.inference.engine import InferenceOptions, TypeInferenceEngine
from repro.typesys.mtype import MType
from repro.typesys.signature import Signature


@dataclass
class SpeculationResult:
    """Outcome of speculative inference for one function."""

    signature: Signature
    annotations: Annotations
    # parameters that received at least one usable hint
    narrowed: dict[str, bool] = field(default_factory=dict)
    passes: int = 0

    @property
    def fully_narrowed(self) -> bool:
        return all(self.narrowed.values()) if self.narrowed else True


class Speculator:
    """Alternating backward/forward speculative type inference."""

    def __init__(
        self,
        calculator: TypeCalculator | None = None,
        options: InferenceOptions | None = None,
        max_passes: int = 4,
    ):
        self.calculator = calculator or default_calculator()
        self.options = options or InferenceOptions()
        self.max_passes = max_passes

    # ------------------------------------------------------------------
    def speculate(
        self,
        fn: ast.FunctionDef,
        disambiguation: DisambiguationResult | None = None,
    ) -> SpeculationResult:
        if disambiguation is None:
            disambiguation = Disambiguator(lambda name: False).run_function(fn)
        chains = build_use_def(disambiguation.cfg, fn.params)
        engine = TypeInferenceEngine(self.calculator, self.options)

        param_types: dict[str, MType] = {p: MType.top() for p in fn.params}
        annotations = Annotations()
        passes = 0
        for _ in range(self.max_passes):
            passes += 1
            signature = Signature.of(param_types[p] for p in fn.params)
            annotations = engine.infer(fn, signature, disambiguation)
            updated = self._backward_pass(
                fn, disambiguation, chains, annotations, param_types
            )
            if not updated:
                break

        # Conflicting hints (bottom) mean the guess failed: fall back to ⊤.
        # A parameter no hint touched is guessed from global likelihood
        # ("the compiler guesses the run-time context most likely to occur
        # in practice"): with no evidence it is ever an array, the most
        # likely context is a real scalar; with array evidence but no type
        # evidence it stays ⊤ — the generic complex-matrix default, which
        # is exactly the paper's mei/qmr failure mode.
        array_evidence = self._array_evidence(fn, annotations)
        narrowed: dict[str, bool] = {}
        for name, mtype in param_types.items():
            if mtype.is_bottom:
                param_types[name] = MType.top()
                narrowed[name] = False
            elif mtype.is_top_like:
                if name in array_evidence:
                    narrowed[name] = False
                else:
                    param_types[name] = MType.scalar()
                    narrowed[name] = True
            else:
                narrowed[name] = True

        signature = Signature.of(param_types[p] for p in fn.params)
        annotations = engine.infer(fn, signature, disambiguation)
        return SpeculationResult(
            signature=signature,
            annotations=annotations,
            narrowed=narrowed,
            passes=passes,
        )

    #: Builtins whose argument is characteristically an array.
    _ARRAY_BUILTINS = frozenset(
        {
            "eig", "norm", "diag", "tril", "triu", "inv", "chol", "det",
            "size", "length", "numel", "find", "sort", "reshape", "sum",
            "prod", "mean", "cumsum", "isempty",
        }
    )

    def _array_evidence(self, fn: ast.FunctionDef, annotations) -> set[str]:
        """Parameters the body treats as arrays (matrix ops, transposes,
        array-oriented builtins, loop iterables)."""
        params = set(fn.params)
        evidence: set[str] = set()

        def param_of(expr) -> str | None:
            if isinstance(expr, ast.Ident) and expr.name in params:
                return expr.name
            return None

        for stmt in ast.walk_stmts(fn.body):
            if isinstance(stmt, ast.For):
                name = param_of(stmt.iterable)
                if name:
                    evidence.add(name)
            for top in ast.stmt_exprs(stmt):
                for node in ast.walk_expr(top):
                    if isinstance(node, ast.Transpose):
                        name = param_of(node.operand)
                        if name:
                            evidence.add(name)
                    elif isinstance(node, ast.Apply):
                        if (
                            node.kind is ast.ApplyKind.BUILTIN
                            and node.name in self._ARRAY_BUILTINS
                            and node.args
                        ):
                            name = param_of(node.args[0])
                            if name:
                                evidence.add(name)
                    elif isinstance(node, ast.BinaryOp) and node.op in (
                        "*", "/", "\\",
                    ):
                        left_t = annotations.type_of(node.left)
                        right_t = annotations.type_of(node.right)
                        name = param_of(node.left)
                        if name and not right_t.could_be_scalar:
                            evidence.add(name)
                        name = param_of(node.right)
                        if name and not left_t.could_be_scalar:
                            evidence.add(name)
        return evidence

    # ------------------------------------------------------------------
    def _backward_pass(
        self,
        fn: ast.FunctionDef,
        disambiguation: DisambiguationResult,
        chains: UseDefChains,
        annotations: Annotations,
        param_types: dict[str, MType],
    ) -> bool:
        """Visit every hint site; returns True if any parameter narrowed."""
        self._changed = False
        self._params = set(fn.params)
        self._chains = chains
        self._annotations = annotations
        self._param_types = param_types

        for block in disambiguation.cfg.blocks:
            for atom in block.atoms:
                if isinstance(atom, StmtAtom):
                    for expr in ast.stmt_exprs(atom.stmt):
                        self._visit(expr)
                elif isinstance(atom, CondAtom):
                    kind = "while" if isinstance(atom.owner, ast.While) else "if"
                    self._apply_hints(("cond", kind), [atom.cond])
                    self._visit(atom.cond)
                elif isinstance(atom, ForIterAtom):
                    self._visit(atom.stmt.iterable)
        return self._changed

    def _visit(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Range):
            operands = [expr.start] + (
                [expr.step] if expr.step is not None else []
            ) + [expr.stop]
            self._apply_hints(("colon", ":"), operands)
        elif isinstance(expr, ast.BinaryOp):
            self._apply_hints(("binop", expr.op), [expr.left, expr.right])
        elif isinstance(expr, ast.MatrixLit):
            flat = [item for row in expr.rows for item in row]
            self._apply_hints(("matrix", "[]"), flat)
        elif isinstance(expr, ast.Apply):
            if expr.kind is ast.ApplyKind.INDEX:
                key = ("index", "linear" if len(expr.args) == 1 else "2d")
                self._apply_hints(key, [expr] + list(expr.args), base_is_array=True)
            elif expr.kind is ast.ApplyKind.BUILTIN:
                self._apply_hints(("builtin", expr.name), list(expr.args))
        for child in _children(expr):
            self._visit(child)

    def _apply_hints(
        self,
        key: tuple[str, str],
        operands: list[ast.Expr],
        base_is_array: bool = False,
    ) -> None:
        arg_types = []
        for i, op in enumerate(operands):
            if isinstance(op, ast.ColonAll):
                from repro.inference.rules_indexing import COLON_MARKER

                arg_types.append(COLON_MARKER)
            else:
                arg_types.append(self._annotations.type_of(op))
        ctx = RuleContext(
            args=arg_types,
            range_propagation=self.options.range_propagation,
            min_shape_propagation=self.options.min_shape_propagation,
        )
        hints = self.calculator.backward(key, ctx)
        if hints is None:
            return
        for operand, hint in zip(operands, hints):
            if hint is None:
                continue
            self._hint_operand(operand, hint)

    def _hint_operand(self, operand: ast.Expr, hint: MType) -> None:
        """Fold a hint into the parameter the operand traces back to."""
        name = None
        if isinstance(operand, (ast.Ident, ast.Apply)):
            name = operand.name
        if name is None or name not in self._params:
            return
        if not self._chains.is_param_only(operand):
            # The occurrence may see a local redefinition; hinting the
            # parameter from it would be unsound speculation.
            return
        current = self._param_types[name]
        met = current.meet(hint)
        if met != current:
            self._param_types[name] = met
            self._changed = True


def _children(expr: ast.Expr):
    if isinstance(expr, ast.UnaryOp):
        yield expr.operand
    elif isinstance(expr, ast.BinaryOp):
        yield expr.left
        yield expr.right
    elif isinstance(expr, ast.Transpose):
        yield expr.operand
    elif isinstance(expr, ast.Range):
        yield expr.start
        if expr.step is not None:
            yield expr.step
        yield expr.stop
    elif isinstance(expr, ast.MatrixLit):
        for row in expr.rows:
            yield from row
    elif isinstance(expr, ast.Apply):
        yield from expr.args


def speculate_signature(
    fn: ast.FunctionDef,
    options: InferenceOptions | None = None,
) -> SpeculationResult:
    """Convenience wrapper: speculate one function's signature."""
    return Speculator(options=options).speculate(fn)
