"""Transfer rules for arithmetic, relational and logical operators.

Rules are registered most-restrictive-first, mirroring the paper's ``*``
example: *integer scalar multiply; real scalar multiply; complex scalar
multiply; real scalar × vector or vector × scalar; part of a dgemv
operation; or a generic complex matrix multiply*.
"""

from __future__ import annotations

from repro.inference.calculator import RuleContext, TypeCalculator
from repro.typesys.intrinsic import Intrinsic
from repro.typesys.mtype import MType
from repro.typesys.ranges import Interval
from repro.typesys.shape import Shape


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
def is_int_scalar(t: MType) -> bool:
    return t.is_scalar and t.is_integer_like


def is_real_scalar(t: MType) -> bool:
    return t.is_scalar and t.is_real_like


def is_complex_scalar(t: MType) -> bool:
    return t.is_scalar and t.intrinsic.leq(Intrinsic.COMPLEX) and not t.is_bottom


def is_numeric(t: MType) -> bool:
    return t.intrinsic.leq(Intrinsic.COMPLEX) and not t.is_bottom


def is_real_like(t: MType) -> bool:
    return t.is_real_like


def is_vector(t: MType) -> bool:
    """Definitely a (row or column) vector."""
    return (
        (t.maxshape.rows == 1 and (t.minshape.rows or 0) <= 1)
        or (t.maxshape.cols == 1 and (t.minshape.cols or 0) <= 1)
    ) and not t.is_scalar


def is_matrix_like(t: MType) -> bool:
    return not t.is_scalar


# ----------------------------------------------------------------------
# Shape combination for elementwise operators
# ----------------------------------------------------------------------
def elementwise_shape(a: MType, b: MType) -> tuple[Shape, Shape]:
    """Shape bounds of ``a OP b`` under MATLAB scalar-expansion rules."""
    if a.is_scalar:
        return b.minshape, b.maxshape
    if b.is_scalar:
        return a.minshape, a.maxshape
    if not a.could_be_scalar and not b.could_be_scalar:
        # Shapes must be equal at runtime: intersect the windows.
        return a.minshape.join(b.minshape), a.maxshape.meet(b.maxshape)
    # One side might be scalar: the result can be as small as the other
    # side's minimum and as large as the larger maximum.
    return (
        a.minshape.meet(b.minshape),
        a.maxshape.join(b.maxshape),
    )


def ablate_min(mn, mx, ctx):
    """Apply the min-shape ablation to a derived lower bound.

    Scalar-ness is not minimum-shape information: a result bounded above
    by 1x1 keeps its lower bound even when the ablation is active.
    """
    if ctx.min_shape_propagation or mx.is_scalar:
        return mn
    return Shape.bottom()


def _numeric_join(a: MType, b: MType, at_least: Intrinsic = Intrinsic.INT) -> Intrinsic:
    """Intrinsic of an arithmetic result; bools promote to int."""
    intrinsic = a.intrinsic.join(b.intrinsic)
    if intrinsic is Intrinsic.STRING:
        # Strings coerce to char codes (integers) under arithmetic.
        intrinsic = Intrinsic.INT
    if intrinsic is Intrinsic.TOP:
        return Intrinsic.TOP
    return intrinsic.join(at_least) if intrinsic.leq(Intrinsic.REAL) else intrinsic


def _range_of(op: str, a: MType, b: MType, ctx: RuleContext) -> Interval:
    if not ctx.range_propagation:
        return Interval.top()
    if not (a.is_real_like or a.intrinsic is Intrinsic.STRING) or not (
        b.is_real_like or b.intrinsic is Intrinsic.STRING
    ):
        return Interval.top()
    ra, rb = a.range, b.range
    if op == "+":
        return ra.add(rb)
    if op == "-":
        return ra.sub(rb)
    if op in ("*", ".*"):
        return ra.mul(rb)
    if op in ("/", "./"):
        return ra.div(rb)
    if op in ("\\", ".\\"):
        return rb.div(ra)
    if op in ("^", ".^"):
        return ra.power(rb)
    return Interval.top()


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def register(calc: TypeCalculator) -> None:
    _register_additive(calc, "+")
    _register_additive(calc, "-")
    _register_mtimes(calc)
    _register_elementwise_mul(calc, ".*")
    _register_division(calc, "/")
    _register_division(calc, "./")
    _register_division(calc, "\\")
    _register_division(calc, ".\\")
    _register_power(calc, "^")
    _register_power(calc, ".^")
    for op in ("==", "~=", "<", "<=", ">", ">="):
        _register_relational(calc, op)
    for op in ("&", "|"):
        _register_logical(calc, op)
    for op in ("&&", "||"):
        _register_short_circuit(calc, op)
    _register_unary(calc)
    _register_transpose(calc)
    _register_colon(calc)
    _register_matrixlit(calc)


def _register_additive(calc: TypeCalculator, op: str) -> None:
    key = ("binop", op)

    def scalar_int(ctx: RuleContext) -> list[MType]:
        a, b = ctx.arg(0), ctx.arg(1)
        return [MType.scalar(Intrinsic.INT, _range_of(op, a, b, ctx))]

    calc.rule(
        key,
        f"{op}:int-scalar",
        lambda ctx: is_int_scalar(ctx.arg(0)) and is_int_scalar(ctx.arg(1)),
        scalar_int,
    )

    def scalar_real(ctx: RuleContext) -> list[MType]:
        a, b = ctx.arg(0), ctx.arg(1)
        return [MType.scalar(Intrinsic.REAL, _range_of(op, a, b, ctx))]

    calc.rule(
        key,
        f"{op}:real-scalar",
        lambda ctx: is_real_scalar(ctx.arg(0)) and is_real_scalar(ctx.arg(1)),
        scalar_real,
    )

    calc.rule(
        key,
        f"{op}:complex-scalar",
        lambda ctx: is_complex_scalar(ctx.arg(0)) and is_complex_scalar(ctx.arg(1)),
        lambda ctx: [MType.scalar(Intrinsic.COMPLEX)],
    )

    def elementwise(ctx: RuleContext) -> list[MType]:
        a, b = ctx.arg(0), ctx.arg(1)
        mn, mx = elementwise_shape(a, b)
        mn = ablate_min(mn, mx, ctx)
        return [
            MType(
                _numeric_join(a, b),
                mn,
                mx,
                _range_of(op, a, b, ctx),
            )
        ]

    calc.rule(
        key,
        f"{op}:elementwise",
        lambda ctx: is_numeric(ctx.arg(0)) and is_numeric(ctx.arg(1)),
        elementwise,
    )
    calc.rule(
        key,
        f"{op}:generic",
        lambda ctx: True,
        lambda ctx: [MType.top()],
    )


def _register_mtimes(calc: TypeCalculator) -> None:
    key = ("binop", "*")

    calc.rule(
        key,
        "*:int-scalar",
        lambda ctx: is_int_scalar(ctx.arg(0)) and is_int_scalar(ctx.arg(1)),
        lambda ctx: [
            MType.scalar(
                Intrinsic.INT, _range_of("*", ctx.arg(0), ctx.arg(1), ctx)
            )
        ],
    )
    calc.rule(
        key,
        "*:real-scalar",
        lambda ctx: is_real_scalar(ctx.arg(0)) and is_real_scalar(ctx.arg(1)),
        lambda ctx: [
            MType.scalar(
                Intrinsic.REAL, _range_of("*", ctx.arg(0), ctx.arg(1), ctx)
            )
        ],
    )
    calc.rule(
        key,
        "*:complex-scalar",
        lambda ctx: is_complex_scalar(ctx.arg(0)) and is_complex_scalar(ctx.arg(1)),
        lambda ctx: [MType.scalar(Intrinsic.COMPLEX)],
    )

    def scalar_matrix(ctx: RuleContext) -> list[MType]:
        a, b = ctx.arg(0), ctx.arg(1)
        scalar, matrix = (a, b) if a.is_scalar else (b, a)
        mn = ablate_min(matrix.minshape, matrix.maxshape, ctx)
        return [
            MType(
                _numeric_join(a, b),
                mn,
                matrix.maxshape,
                _range_of("*", a, b, ctx),
            )
        ]

    calc.rule(
        key,
        "*:scalar-x-array",
        lambda ctx: is_numeric(ctx.arg(0))
        and is_numeric(ctx.arg(1))
        and (ctx.arg(0).is_scalar or ctx.arg(1).is_scalar),
        scalar_matrix,
    )

    def matrix_product(ctx: RuleContext) -> list[MType]:
        a, b = ctx.arg(0), ctx.arg(1)
        mn = Shape(
            a.minshape.rows if a.minshape.rows else 0,
            b.minshape.cols if b.minshape.cols else 0,
        )
        mx = Shape(a.maxshape.rows, b.maxshape.cols)
        mn = ablate_min(mn, mx, ctx)
        intrinsic = _numeric_join(a, b, at_least=Intrinsic.REAL)
        return [MType(intrinsic, mn, mx, Interval.top())]

    calc.rule(
        key,
        "*:dgemv",  # matrix × vector, the dgemv-selectable case
        lambda ctx: is_numeric(ctx.arg(0)) and is_vector(ctx.arg(1)),
        matrix_product,
    )
    calc.rule(
        key,
        "*:matrix-product",
        lambda ctx: is_numeric(ctx.arg(0)) and is_numeric(ctx.arg(1)),
        matrix_product,
    )
    calc.rule(
        key,
        "*:generic-complex-matrix",
        lambda ctx: True,
        lambda ctx: [MType.top()],
    )


def _register_elementwise_mul(calc: TypeCalculator, op: str) -> None:
    key = ("binop", op)
    calc.rule(
        key,
        f"{op}:int-scalar",
        lambda ctx: is_int_scalar(ctx.arg(0)) and is_int_scalar(ctx.arg(1)),
        lambda ctx: [
            MType.scalar(
                Intrinsic.INT, _range_of(op, ctx.arg(0), ctx.arg(1), ctx)
            )
        ],
    )
    calc.rule(
        key,
        f"{op}:real-scalar",
        lambda ctx: is_real_scalar(ctx.arg(0)) and is_real_scalar(ctx.arg(1)),
        lambda ctx: [
            MType.scalar(
                Intrinsic.REAL, _range_of(op, ctx.arg(0), ctx.arg(1), ctx)
            )
        ],
    )

    def elementwise(ctx: RuleContext) -> list[MType]:
        a, b = ctx.arg(0), ctx.arg(1)
        mn, mx = elementwise_shape(a, b)
        mn = ablate_min(mn, mx, ctx)
        return [MType(_numeric_join(a, b), mn, mx, _range_of(op, a, b, ctx))]

    calc.rule(
        key,
        f"{op}:elementwise",
        lambda ctx: is_numeric(ctx.arg(0)) and is_numeric(ctx.arg(1)),
        elementwise,
    )
    calc.rule(key, f"{op}:generic", lambda ctx: True, lambda ctx: [MType.top()])


def _register_division(calc: TypeCalculator, op: str) -> None:
    key = ("binop", op)

    calc.rule(
        key,
        f"{op}:real-scalar",
        lambda ctx: is_real_scalar(ctx.arg(0)) and is_real_scalar(ctx.arg(1)),
        lambda ctx: [
            MType.scalar(
                Intrinsic.REAL, _range_of(op, ctx.arg(0), ctx.arg(1), ctx)
            )
        ],
    )
    calc.rule(
        key,
        f"{op}:complex-scalar",
        lambda ctx: is_complex_scalar(ctx.arg(0)) and is_complex_scalar(ctx.arg(1)),
        lambda ctx: [MType.scalar(Intrinsic.COMPLEX)],
    )

    if op in ("./", ".\\"):

        def elementwise(ctx: RuleContext) -> list[MType]:
            a, b = ctx.arg(0), ctx.arg(1)
            mn, mx = elementwise_shape(a, b)
            if not ctx.min_shape_propagation:
                mn = Shape.bottom()
            intrinsic = _numeric_join(a, b, at_least=Intrinsic.REAL)
            return [MType(intrinsic, mn, mx, _range_of(op, a, b, ctx))]

        calc.rule(
            key,
            f"{op}:elementwise",
            lambda ctx: is_numeric(ctx.arg(0)) and is_numeric(ctx.arg(1)),
            elementwise,
        )
    else:

        def scalar_divisor(ctx: RuleContext) -> list[MType]:
            a, b = ctx.arg(0), ctx.arg(1)
            array = a if op == "/" else b
            mn = ablate_min(array.minshape, array.maxshape, ctx)
            intrinsic = _numeric_join(a, b, at_least=Intrinsic.REAL)
            return [MType(intrinsic, mn, array.maxshape, _range_of(op, a, b, ctx))]

        calc.rule(
            key,
            f"{op}:array-by-scalar",
            lambda ctx: is_numeric(ctx.arg(0))
            and is_numeric(ctx.arg(1))
            and (ctx.arg(1).is_scalar if op == "/" else ctx.arg(0).is_scalar),
            scalar_divisor,
        )

        def solve(ctx: RuleContext) -> list[MType]:
            # mldivide/mrdivide: linear solve; shape from the system.
            a, b = ctx.arg(0), ctx.arg(1)
            if op == "\\":
                mx = Shape(a.maxshape.cols, b.maxshape.cols)
            else:
                mx = Shape(a.maxshape.rows, b.maxshape.rows)
            intrinsic = _numeric_join(a, b, at_least=Intrinsic.REAL)
            return [MType(intrinsic, Shape.bottom(), mx, Interval.top())]

        calc.rule(
            key,
            f"{op}:linear-solve",
            lambda ctx: is_numeric(ctx.arg(0)) and is_numeric(ctx.arg(1)),
            solve,
        )
    calc.rule(key, f"{op}:generic", lambda ctx: True, lambda ctx: [MType.top()])


def _register_power(calc: TypeCalculator, op: str) -> None:
    key = ("binop", op)

    def stays_real(ctx: RuleContext) -> bool:
        base, exponent = ctx.arg(0), ctx.arg(1)
        if not (base.is_real_like and exponent.is_real_like):
            return False
        # real^fractional with a possibly negative base goes complex.
        if exponent.is_integer_like:
            return True
        return ctx.range_propagation and base.range.is_nonnegative

    calc.rule(
        key,
        f"{op}:int-scalar",
        lambda ctx: is_int_scalar(ctx.arg(0))
        and is_int_scalar(ctx.arg(1))
        and ctx.range_propagation
        and ctx.arg(1).range.is_nonnegative,
        lambda ctx: [
            MType.scalar(
                Intrinsic.INT, _range_of(op, ctx.arg(0), ctx.arg(1), ctx)
            )
        ],
    )
    calc.rule(
        key,
        f"{op}:real-scalar",
        lambda ctx: is_real_scalar(ctx.arg(0))
        and is_real_scalar(ctx.arg(1))
        and stays_real(ctx),
        lambda ctx: [
            MType.scalar(
                Intrinsic.REAL, _range_of(op, ctx.arg(0), ctx.arg(1), ctx)
            )
        ],
    )
    calc.rule(
        key,
        f"{op}:complex-scalar",
        lambda ctx: is_complex_scalar(ctx.arg(0)) and is_complex_scalar(ctx.arg(1)),
        lambda ctx: [MType.scalar(Intrinsic.COMPLEX)],
    )

    if op == ".^":

        def elementwise(ctx: RuleContext) -> list[MType]:
            a, b = ctx.arg(0), ctx.arg(1)
            mn, mx = elementwise_shape(a, b)
            if not ctx.min_shape_propagation:
                mn = Shape.bottom()
            intrinsic = (
                Intrinsic.REAL if stays_real(ctx) else Intrinsic.COMPLEX
            )
            rng = _range_of(op, a, b, ctx) if stays_real(ctx) else Interval.top()
            return [MType(intrinsic, mn, mx, rng)]

        calc.rule(
            key,
            ".^:elementwise",
            lambda ctx: is_numeric(ctx.arg(0)) and is_numeric(ctx.arg(1)),
            elementwise,
        )
    else:
        calc.rule(
            key,
            "^:matrix-power",
            lambda ctx: is_numeric(ctx.arg(0))
            and is_int_scalar(ctx.arg(1))
            and not ctx.arg(0).is_scalar,
            lambda ctx: [
                MType(
                    Intrinsic.REAL
                    if ctx.arg(0).is_real_like
                    else Intrinsic.COMPLEX,
                    ablate_min(ctx.arg(0).minshape, ctx.arg(0).maxshape, ctx),
                    ctx.arg(0).maxshape,
                    Interval.top(),
                )
            ],
        )
    calc.rule(key, f"{op}:generic", lambda ctx: True, lambda ctx: [MType.top()])


def _register_relational(calc: TypeCalculator, op: str) -> None:
    key = ("binop", op)
    bool01 = Interval.of(0.0, 1.0)

    calc.rule(
        key,
        f"{op}:scalar",
        lambda ctx: ctx.arg(0).is_scalar and ctx.arg(1).is_scalar,
        lambda ctx: [MType.scalar(Intrinsic.BOOL, bool01)],
    )

    def elementwise(ctx: RuleContext) -> list[MType]:
        mn, mx = elementwise_shape(ctx.arg(0), ctx.arg(1))
        if not ctx.min_shape_propagation:
            mn = Shape.bottom()
        return [MType(Intrinsic.BOOL, mn, mx, bool01)]

    calc.rule(key, f"{op}:elementwise", lambda ctx: True, elementwise)


def _register_logical(calc: TypeCalculator, op: str) -> None:
    key = ("binop", op)
    bool01 = Interval.of(0.0, 1.0)
    calc.rule(
        key,
        f"{op}:scalar",
        lambda ctx: ctx.arg(0).is_scalar and ctx.arg(1).is_scalar,
        lambda ctx: [MType.scalar(Intrinsic.BOOL, bool01)],
    )

    def elementwise(ctx: RuleContext) -> list[MType]:
        mn, mx = elementwise_shape(ctx.arg(0), ctx.arg(1))
        if not ctx.min_shape_propagation:
            mn = Shape.bottom()
        return [MType(Intrinsic.BOOL, mn, mx, bool01)]

    calc.rule(key, f"{op}:elementwise", lambda ctx: True, elementwise)


def _register_short_circuit(calc: TypeCalculator, op: str) -> None:
    calc.rule(
        ("binop", op),
        f"{op}:scalar",
        lambda ctx: True,
        lambda ctx: [MType.scalar(Intrinsic.BOOL, Interval.of(0.0, 1.0))],
    )


def _register_unary(calc: TypeCalculator) -> None:
    def neg(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        intrinsic = a.intrinsic
        if intrinsic is Intrinsic.BOOL:
            intrinsic = Intrinsic.INT
        if intrinsic is Intrinsic.STRING:
            intrinsic = Intrinsic.INT
        rng = a.range.neg() if (ctx.range_propagation and a.is_real_like) else Interval.top()
        return [MType(intrinsic, a.minshape, a.maxshape, rng)]

    calc.rule(
        ("unary", "-"),
        "-:numeric",
        lambda ctx: is_numeric(ctx.arg(0)) or ctx.arg(0).is_string,
        neg,
    )
    calc.rule(("unary", "-"), "-:generic", lambda ctx: True, lambda ctx: [MType.top()])

    calc.rule(
        ("unary", "+"),
        "+:identity",
        lambda ctx: True,
        lambda ctx: [ctx.arg(0)],
    )

    def logical_not(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        return [
            MType(Intrinsic.BOOL, a.minshape, a.maxshape, Interval.of(0.0, 1.0))
        ]

    calc.rule(("unary", "~"), "~:any", lambda ctx: True, logical_not)


def _register_transpose(calc: TypeCalculator) -> None:
    def transpose(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        return [
            MType(
                a.intrinsic if is_numeric(a) else Intrinsic.TOP,
                a.minshape.transposed(),
                a.maxshape.transposed(),
                a.range if a.is_real_like else Interval.top(),
            )
        ]

    calc.rule(
        ("transpose", "'"),
        "':numeric",
        lambda ctx: is_numeric(ctx.arg(0)),
        transpose,
    )
    calc.rule(
        ("transpose", "'"), "':generic", lambda ctx: True, lambda ctx: [MType.top()]
    )
    calc.rule(
        ("transpose", ".'"),
        ".':numeric",
        lambda ctx: is_numeric(ctx.arg(0)),
        transpose,
    )
    calc.rule(
        ("transpose", ".'"), ".':generic", lambda ctx: True, lambda ctx: [MType.top()]
    )


def _register_colon(calc: TypeCalculator) -> None:
    key = ("colon", ":")

    def exact(ctx: RuleContext) -> list[MType]:
        # start/stop (and step) are known constants: exact row vector.
        args = ctx.args
        start = args[0].constant_value
        stop = args[-1].constant_value
        step = args[1].constant_value if len(args) == 3 else 1.0
        if step == 0:
            count = 0
        else:
            count = max(int((stop - start) / step + 1e-10) + 1, 0)
        intrinsic = (
            Intrinsic.INT
            if all(a.is_integer_like for a in args)
            else Intrinsic.REAL
        )
        if count == 0:
            return [MType.exact(intrinsic, 1, 0, Interval.bottom())]
        lo, hi = (start, start + step * (count - 1))
        return [
            MType.exact(
                intrinsic, 1, count, Interval.of(min(lo, hi), max(lo, hi))
            )
        ]

    calc.rule(
        key,
        ":const-endpoints",
        lambda ctx: ctx.range_propagation
        and all(a.is_constant for a in ctx.args),
        exact,
    )

    def bounded(ctx: RuleContext) -> list[MType]:
        args = ctx.args
        intrinsic = (
            Intrinsic.INT
            if all(a.is_integer_like for a in args)
            else Intrinsic.REAL
        )
        rng = Interval.top()
        if ctx.range_propagation:
            rng = args[0].range.join(args[-1].range)
        return [
            MType(intrinsic, Shape.exact(1, 0), Shape(1, None), rng)
        ]

    calc.rule(
        key,
        ":numeric-endpoints",
        lambda ctx: all(is_numeric(a) for a in ctx.args),
        bounded,
    )
    calc.rule(key, ":generic", lambda ctx: True, lambda ctx: [
        MType(Intrinsic.REAL, Shape.exact(1, 0), Shape(1, None), Interval.top())
    ])


def _register_matrixlit(calc: TypeCalculator) -> None:
    key = ("matrix", "[]")

    calc.rule(
        key,
        "[]:empty",
        lambda ctx: not ctx.args,
        lambda ctx: [MType.exact(Intrinsic.REAL, 0, 0, Interval.bottom())],
    )

    def all_scalars(ctx: RuleContext) -> bool:
        return all(a.is_scalar for a in ctx.args)

    def scalar_vector(ctx: RuleContext) -> list[MType]:
        # The engine passes element types row-major with a marker of the
        # row structure via nargout (= number of rows).
        rows = max(ctx.nargout, 1)
        cols = len(ctx.args) // rows if rows else 0
        intrinsic = Intrinsic.BOTTOM
        rng = Interval.bottom()
        for a in ctx.args:
            intrinsic = intrinsic.join(a.intrinsic)
            rng = rng.join(a.range if a.is_real_like else Interval.top())
        if not ctx.range_propagation:
            rng = Interval.top()
        return [MType.exact(intrinsic, rows, cols, rng)]

    calc.rule(key, "[]:scalar-elements", all_scalars, scalar_vector)

    def general(ctx: RuleContext) -> list[MType]:
        intrinsic = Intrinsic.BOTTOM
        for a in ctx.args:
            intrinsic = intrinsic.join(a.intrinsic)
        return [
            MType(intrinsic, Shape.bottom(), Shape.top(), Interval.top())
        ]

    calc.rule(
        key,
        "[]:general",
        lambda ctx: all(
            is_numeric(a) or a.is_string for a in ctx.args
        ),
        general,
    )
    calc.rule(key, "[]:generic", lambda ctx: True, lambda ctx: [MType.top()])
