"""The type-inference engine (Sections 2.3 and 2.4).

An iterative join-of-all-paths monotone dataflow analysis over the CFG.
States map variable names to :class:`~repro.typesys.mtype.MType`.  The
engine avoids symbolic computation and caps the number of iterations
(applying interval/shape widening once a block has been revisited a few
times), which is what keeps it fast enough for JIT use.

In JIT mode the entry state comes from the invocation's type signature —
exact intrinsic classes, exact shapes and tight ranges — which is why JIT
inference, although simple, is very precise (Section 2.4).  The same engine
run with a speculated signature implements the forward half of speculative
inference.

After the fixpoint is reached, a final annotation pass re-walks every atom
recording per-expression types and classifying every subscript as
SAFE / GROW_ONLY / CHECKED (Section 2.4, "Subscript check removal").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.cfg import Atom, CondAtom, ForIterAtom, StmtAtom
from repro.analysis.disambiguate import DisambiguationResult, Disambiguator
from repro.frontend import ast_nodes as ast
from repro.inference.annotations import Annotations, SubscriptSafety
from repro.inference.calculator import RuleContext, TypeCalculator, default_calculator
from repro.inference.rules_indexing import COLON_MARKER
from repro.typesys.intrinsic import Intrinsic
from repro.typesys.mtype import MType
from repro.typesys.ranges import Interval
from repro.typesys.shape import Shape
from repro.typesys.signature import Signature

Env = dict[str, MType]

#: Oracle for user-function calls: (name, arg_types, nargout) -> list[MType]
CalleeOracle = Callable[[str, list[MType], int], "list[MType] | None"]


@dataclass
class InferenceOptions:
    """Engine switches; the Figure 7 ablations toggle the first two."""

    range_propagation: bool = True
    min_shape_propagation: bool = True
    max_iterations: int = 40
    widen_after: int = 3


class TypeInferenceEngine:
    """Runs forward type inference over one function body."""

    def __init__(
        self,
        calculator: TypeCalculator | None = None,
        options: InferenceOptions | None = None,
        callee_oracle: CalleeOracle | None = None,
    ):
        self.calculator = calculator or default_calculator()
        self.options = options or InferenceOptions()
        self.callee_oracle = callee_oracle

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def infer(
        self,
        fn: ast.FunctionDef,
        signature: Signature,
        disambiguation: DisambiguationResult | None = None,
    ) -> Annotations:
        """Infer types for ``fn`` under the given parameter signature."""
        if disambiguation is None:
            disambiguation = Disambiguator(lambda name: False).run_function(fn)
        entry: Env = {}
        for name, mtype in zip(fn.params, signature):
            entry[name] = self._sanitize(mtype)
        annotations = self._solve(disambiguation, entry)
        for name, mtype in entry.items():
            annotations.note_var(name, mtype)
        exit_env = self._exit_env
        for output in fn.outputs:
            annotations.output_types[output] = exit_env.get(output, MType.top())
        return annotations

    def infer_body(
        self,
        disambiguation: DisambiguationResult,
        entry: Env,
    ) -> Annotations:
        """Infer types for a script body with a given starting workspace."""
        return self._solve(disambiguation, dict(entry))

    def _sanitize(self, mtype: MType) -> MType:
        if not self.options.range_propagation:
            mtype = mtype.widen_range()
        # The min-shape ablation acts where minimum bounds are *derived*
        # (store-driven growth, elementwise combination — handled in the
        # transfer rules), not on shapes that arrive exactly determined.
        return mtype

    # ------------------------------------------------------------------
    # Fixpoint solver
    # ------------------------------------------------------------------
    def _solve(
        self, disambiguation: DisambiguationResult, entry: Env
    ) -> Annotations:
        cfg = disambiguation.cfg
        self._dis = disambiguation
        order = cfg.reverse_postorder()
        block_in: dict[int, Env] = {}
        block_out: dict[int, Env] = {}
        visits: dict[int, int] = {}
        converged = True
        iterations = 0

        changed = True
        while changed:
            iterations += 1
            if iterations > self.options.max_iterations:
                converged = False
                break
            changed = False
            for block in order:
                widen = visits.get(block.index, 0) >= self.options.widen_after
                if block is cfg.entry:
                    incoming = dict(entry)
                else:
                    incoming = None
                    for pred in block.predecessors:
                        out = block_out.get(pred.index)
                        if out is None:
                            continue
                        incoming = (
                            dict(out)
                            if incoming is None
                            else self._join_env(incoming, out)
                        )
                    if incoming is None:
                        continue  # unreachable so far
                old_in = block_in.get(block.index)
                if old_in is not None and widen:
                    incoming = self._widen_env(old_in, incoming)
                block_in[block.index] = incoming
                env = dict(incoming)
                for atom in block.atoms:
                    self._transfer(atom, env, record=None)
                if env != block_out.get(block.index):
                    block_out[block.index] = env
                    visits[block.index] = visits.get(block.index, 0) + 1
                    changed = True

        # ------------------------------------------------------------------
        # Annotation pass with the converged states.
        # ------------------------------------------------------------------
        annotations = Annotations(converged=converged, iterations=iterations)
        if not converged:
            # Fall back to safe-but-useless: everything top.  The default
            # rule keeps generated code correct, just generic.
            block_in = {b.index: self._top_env(block_in) for b in cfg.blocks}
        for block in cfg.blocks:
            env = dict(block_in.get(block.index, {}))
            for atom in block.atoms:
                self._transfer(atom, env, record=annotations)
        self._exit_env = block_in.get(cfg.exit.index, {})
        return annotations

    def _top_env(self, block_in: dict[int, Env]) -> Env:
        names: set[str] = set()
        for env in block_in.values():
            names.update(env)
        return {name: MType.top() for name in names}

    def _join_env(self, a: Env, b: Env) -> Env:
        result = dict(a)
        for name, mtype in b.items():
            existing = result.get(name)
            result[name] = mtype if existing is None else existing.join(mtype)
        return result

    def _widen_env(self, old: Env, new: Env) -> Env:
        result: Env = {}
        for name, mtype in new.items():
            previous = old.get(name)
            if previous is None:
                result[name] = mtype
                continue
            result[name] = self._widen_type(previous, mtype)
        return result

    def _widen_type(self, old: MType, new: MType) -> MType:
        rng = new.range
        if not old.range.is_bottom and not new.range.is_bottom:
            lo = new.range.lo if new.range.lo >= old.range.lo else -math.inf
            hi = new.range.hi if new.range.hi <= old.range.hi else math.inf
            rng = Interval.of(lo, hi)

        def widen_dim(o, n):
            if o is None or n is None:
                return None
            return n if n <= o else None

        mx = Shape(
            widen_dim(old.maxshape.rows, new.maxshape.rows),
            widen_dim(old.maxshape.cols, new.maxshape.cols),
        )

        def shrink_dim(o, n):
            o = o if o is not None else 0
            n = n if n is not None else 0
            return n if n >= o else 0

        mn = Shape(
            shrink_dim(old.minshape.rows, new.minshape.rows),
            shrink_dim(old.minshape.cols, new.minshape.cols),
        )
        return MType(old.intrinsic.join(new.intrinsic), mn, mx, rng)

    # ------------------------------------------------------------------
    # Transfer functions
    # ------------------------------------------------------------------
    def _transfer(self, atom: Atom, env: Env, record: Annotations | None) -> None:
        if isinstance(atom, StmtAtom):
            stmt = atom.stmt
            if isinstance(stmt, ast.Assign):
                value = self._type_expr(stmt.value, env, record)
                self._assign(stmt.target, value, env, record)
            elif isinstance(stmt, ast.MultiAssign):
                results = self._type_call(
                    stmt.call, env, record, nargout=len(stmt.targets)
                )
                for target, mtype in zip(stmt.targets, results):
                    self._assign(target, mtype, env, record)
            elif isinstance(stmt, ast.ExprStmt):
                value = self._type_expr(stmt.value, env, record)
                env["ans"] = value
                if record is not None:
                    record.note_var("ans", value)
            elif isinstance(stmt, ast.Clear):
                if stmt.names:
                    for name in stmt.names:
                        env.pop(name, None)
                else:
                    env.clear()
            elif isinstance(stmt, ast.Global):
                for name in stmt.names:
                    env.setdefault(name, MType.top())
        elif isinstance(atom, CondAtom):
            self._type_expr(atom.cond, env, record)
        elif isinstance(atom, ForIterAtom):
            iterable = self._type_expr(atom.stmt.iterable, env, record)
            var_type = self._sanitize(self._loop_var_type(iterable))
            env[atom.stmt.var] = var_type
            if record is not None:
                record.note_var(atom.stmt.var, var_type)

    def _loop_var_type(self, iterable: MType) -> MType:
        """Type of a ``for`` variable: one column of the iterable."""
        rows_max = iterable.maxshape.rows
        if rows_max == 1:
            # Row vector (the common `for i = 1:n` case): scalar element.
            return MType.scalar(
                iterable.intrinsic
                if iterable.intrinsic.leq(Intrinsic.COMPLEX)
                and not iterable.is_bottom
                else Intrinsic.TOP,
                iterable.range
                if self.options.range_propagation and iterable.is_real_like
                else Interval.top(),
            )
        intrinsic = (
            iterable.intrinsic
            if iterable.intrinsic.leq(Intrinsic.COMPLEX) and not iterable.is_bottom
            else Intrinsic.TOP
        )
        return MType(
            intrinsic,
            Shape(iterable.minshape.rows, 1),
            Shape(iterable.maxshape.rows, 1),
            iterable.range if iterable.is_real_like else Interval.top(),
        )

    # ------------------------------------------------------------------
    # Assignments
    # ------------------------------------------------------------------
    def _assign(
        self,
        target: ast.LValue,
        value: MType,
        env: Env,
        record: Annotations | None,
    ) -> None:
        if not target.is_indexed:
            env[target.name] = value
            if record is not None:
                record.note_var(target.name, value)
            return

        array = env.get(target.name)
        creating = array is None
        if creating:
            # Store into an undefined name creates a zero-filled array.
            array = MType(
                value.intrinsic.join(Intrinsic.INT),
                Shape.bottom(),
                Shape.bottom(),
                value.range.join(Interval.constant(0.0))
                if value.is_real_like
                else Interval.top(),
            )
        index_types = [
            self._type_index_arg(arg, array, position, len(target.indices), env, record)
            for position, arg in enumerate(target.indices)
        ]
        safety = self._classify_store(array, index_types)
        if record is not None:
            record.store_safety[id(target)] = safety

        new_type = self._array_after_store(array, value, index_types, creating)
        env[target.name] = new_type
        if record is not None:
            record.note_var(target.name, new_type)

    def _array_after_store(
        self,
        array: MType,
        value: MType,
        index_types: list[MType],
        creating: bool,
    ) -> MType:
        intrinsic = array.intrinsic.join(value.intrinsic)
        if not intrinsic.leq(Intrinsic.COMPLEX):
            intrinsic = Intrinsic.TOP
        rng = (
            array.range.join(value.range)
            if self.options.range_propagation
            and array.is_real_like
            and value.is_real_like
            else Interval.top()
        )

        def index_bounds(t: MType) -> tuple[int, int | None]:
            if t.intrinsic is Intrinsic.BOTTOM and t.maxshape.is_top:
                return 0, None  # colon store: shape preserved
            if self.options.range_propagation and not t.range.is_top and not t.range.is_bottom:
                lo = max(int(math.floor(t.range.lo)), 0)
                hi = (
                    int(math.ceil(t.range.hi))
                    if math.isfinite(t.range.hi)
                    else None
                )
                return lo, hi
            return 0, None

        if len(index_types) == 2:
            (rlo, rhi), (clo, chi) = (
                index_bounds(index_types[0]),
                index_bounds(index_types[1]),
            )
            min_rows = max(array.minshape.rows or 0, rlo)
            min_cols = max(array.minshape.cols or 0, clo)

            def grow_dim(old, hi):
                if old is None or hi is None:
                    return None
                return max(old, hi)

            max_rows = grow_dim(array.maxshape.rows, rhi)
            max_cols = grow_dim(array.maxshape.cols, chi)
            mn = Shape(min_rows, min_cols)
            mx = Shape(max_rows, max_cols)
        else:
            lo, hi = index_bounds(index_types[0])
            # Linear store into a vector grows its long dimension.
            mn = array.minshape
            if (array.minshape.rows or 0) <= 1:
                mn = Shape(max(array.minshape.rows or 0, 1 if lo else 0),
                           max(array.minshape.cols or 0, lo))
                mx = Shape(
                    max(array.maxshape.rows or 1, 1)
                    if array.maxshape.rows is not None
                    else None,
                    None
                    if (hi is None or array.maxshape.cols is None)
                    else max(array.maxshape.cols, hi),
                )
            else:
                mx = array.maxshape.join(Shape(hi, 1) if hi else Shape.bottom())
                mn = Shape(max(array.minshape.rows or 0, lo), array.minshape.cols)
        if not self.options.min_shape_propagation:
            # Ablated: the store no longer raises the array's minimum
            # extent (index-driven shape growth is min-shape information);
            # the creation-time minimum is all that remains.
            mn = array.minshape
        return MType(intrinsic, mn, mx, rng)

    # ------------------------------------------------------------------
    # Subscript safety (Section 2.4)
    # ------------------------------------------------------------------
    def _index_is_integral(self, t: MType) -> bool:
        return t.is_integer_like or (
            self.options.range_propagation and t.range.is_integral_constant
        )

    def _classify_load(self, array: MType, index_types: list[MType]) -> SubscriptSafety:
        if any(
            t.intrinsic is Intrinsic.BOTTOM and t.maxshape.is_top
            for t in index_types
        ):
            return SubscriptSafety.SAFE  # bare ':' is safe by construction
        if not all(self._index_is_integral(t) for t in index_types):
            return SubscriptSafety.CHECKED
        if not self.options.range_propagation:
            return SubscriptSafety.CHECKED
        if not all(
            not t.range.is_bottom and t.range.lo >= 1.0 for t in index_types
        ):
            return SubscriptSafety.CHECKED
        if len(index_types) == 1:
            limit = array.minshape.numel
            hi = index_types[0].range.hi
            if limit and math.isfinite(hi) and hi <= limit:
                return SubscriptSafety.SAFE
            return SubscriptSafety.CHECKED
        row_limit = array.minshape.rows or 0
        col_limit = array.minshape.cols or 0
        if (
            math.isfinite(index_types[0].range.hi)
            and index_types[0].range.hi <= row_limit
            and math.isfinite(index_types[1].range.hi)
            and index_types[1].range.hi <= col_limit
        ):
            return SubscriptSafety.SAFE
        return SubscriptSafety.CHECKED

    def _classify_store(self, array: MType, index_types: list[MType]) -> SubscriptSafety:
        load_class = self._classify_load(array, index_types)
        if load_class is SubscriptSafety.SAFE:
            return SubscriptSafety.SAFE
        if not all(self._index_is_integral(t) for t in index_types):
            return SubscriptSafety.CHECKED
        if not self.options.range_propagation:
            return SubscriptSafety.CHECKED
        if all(not t.range.is_bottom and t.range.lo >= 1.0 for t in index_types):
            return SubscriptSafety.GROW_ONLY
        return SubscriptSafety.CHECKED

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _ctx(self, args: list[MType], nargout: int = 1) -> RuleContext:
        return RuleContext(
            args=args,
            nargout=nargout,
            range_propagation=self.options.range_propagation,
            min_shape_propagation=self.options.min_shape_propagation,
        )

    def _type_expr(
        self,
        expr: ast.Expr,
        env: Env,
        record: Annotations | None,
        end_context: tuple[MType, int] | None = None,
    ) -> MType:
        mtype = self._type_expr_inner(expr, env, record, end_context)
        mtype = self._sanitize(mtype)
        if record is not None:
            record.set_type(expr, mtype)
        return mtype

    def _type_expr_inner(
        self,
        expr: ast.Expr,
        env: Env,
        record: Annotations | None,
        end_context: tuple[MType, int] | None,
    ) -> MType:
        if isinstance(expr, ast.Number):
            return MType.constant(expr.value)
        if isinstance(expr, ast.ImagNumber):
            return MType.scalar(Intrinsic.COMPLEX)
        if isinstance(expr, ast.StringLit):
            return MType.exact(Intrinsic.STRING, 1, len(expr.text))
        if isinstance(expr, ast.Ident):
            return self._type_ident(expr, env)
        if isinstance(expr, ast.UnaryOp):
            operand = self._type_expr(expr.operand, env, record, end_context)
            return self.calculator.forward(
                ("unary", expr.op.value), self._ctx([operand])
            )[0]
        if isinstance(expr, ast.BinaryOp):
            left = self._type_expr(expr.left, env, record, end_context)
            right = self._type_expr(expr.right, env, record, end_context)
            return self.calculator.forward(
                ("binop", expr.op), self._ctx([left, right])
            )[0]
        if isinstance(expr, ast.Transpose):
            operand = self._type_expr(expr.operand, env, record, end_context)
            mark = "'" if expr.conjugate else ".'"
            return self.calculator.forward(
                ("transpose", mark), self._ctx([operand])
            )[0]
        if isinstance(expr, ast.Range):
            parts = [self._type_expr(expr.start, env, record, end_context)]
            if expr.step is not None:
                parts.append(self._type_expr(expr.step, env, record, end_context))
            parts.append(self._type_expr(expr.stop, env, record, end_context))
            return self.calculator.forward(("colon", ":"), self._ctx(parts))[0]
        if isinstance(expr, ast.MatrixLit):
            flat = [
                self._type_expr(item, env, record, end_context)
                for row in expr.rows
                for item in row
            ]
            if not flat:
                return self.calculator.forward(
                    ("matrix", "[]"), self._ctx([], nargout=1)
                )[0]
            return self.calculator.forward(
                ("matrix", "[]"), self._ctx(flat, nargout=len(expr.rows))
            )[0]
        if isinstance(expr, ast.EndMarker):
            if end_context is None:
                return MType.scalar(Intrinsic.INT, Interval.of(0.0, math.inf))
            array, dim = end_context
            return self.calculator.forward(
                ("index", "end"), self._ctx([array], nargout=dim)
            )[0]
        if isinstance(expr, ast.ColonAll):
            return COLON_MARKER
        if isinstance(expr, ast.Apply):
            return self._type_call(expr, env, record, nargout=1)[0]
        return MType.top()

    def _type_ident(self, expr: ast.Ident, env: Env) -> MType:
        from repro.analysis.symtab import SymbolKind

        kind = self._dis.kind_of(expr) if self._dis else None
        if kind is SymbolKind.VARIABLE or expr.name in env:
            return env.get(expr.name, MType.top())
        if kind is SymbolKind.BUILTIN:
            return self.calculator.forward(
                ("builtin", expr.name), self._ctx([])
            )[0]
        if kind is SymbolKind.USER_FUNCTION and self.callee_oracle is not None:
            result = self.callee_oracle(expr.name, [], 1)
            if result:
                return result[0]
        return MType.top()

    def _type_index_arg(
        self,
        arg: ast.Expr,
        array: MType,
        position: int,
        arity: int,
        env: Env,
        record: Annotations | None,
    ) -> MType:
        dim = 0 if arity == 1 else position + 1
        return self._type_expr(arg, env, record, end_context=(array, dim))

    def _type_call(
        self,
        expr: ast.Expr,
        env: Env,
        record: Annotations | None,
        nargout: int,
    ) -> list[MType]:
        if not isinstance(expr, ast.Apply):
            return [self._type_expr(expr, env, record)] + [
                MType.top() for _ in range(nargout - 1)
            ]
        kind = expr.kind
        if kind is ast.ApplyKind.INDEX:
            array = env.get(expr.name, MType.top())
            index_types = [
                self._type_index_arg(arg, array, i, len(expr.args), env, record)
                for i, arg in enumerate(expr.args)
            ]
            safety = self._classify_load(array, index_types)
            if record is not None:
                record.load_safety[id(expr)] = safety
            key = ("index", "linear" if len(expr.args) == 1 else "2d")
            result = self.calculator.forward(
                key, self._ctx([array] + index_types)
            )
            out = [result[0]]
        elif kind is ast.ApplyKind.BUILTIN:
            arg_types = [
                self._type_expr(arg, env, record) for arg in expr.args
            ]
            out = self.calculator.forward(
                ("builtin", expr.name), self._ctx(arg_types, nargout=nargout)
            )
        else:
            arg_types = [
                self._type_expr(arg, env, record) for arg in expr.args
            ]
            out = None
            if kind is ast.ApplyKind.USER_FUNCTION and self.callee_oracle is not None:
                out = self.callee_oracle(expr.name, arg_types, nargout)
            if out is None:
                out = [MType.top() for _ in range(nargout)]
        while len(out) < nargout:
            out.append(MType.top())
        if record is not None and out:
            record.set_type(expr, self._sanitize(out[0]))
        return [self._sanitize(t) for t in out]


def infer_function(
    fn: ast.FunctionDef,
    signature: Signature,
    options: InferenceOptions | None = None,
    disambiguation: DisambiguationResult | None = None,
    callee_oracle: CalleeOracle | None = None,
) -> Annotations:
    """Convenience wrapper: JIT-style forward inference for one function."""
    engine = TypeInferenceEngine(options=options, callee_oracle=callee_oracle)
    return engine.infer(fn, signature, disambiguation)
