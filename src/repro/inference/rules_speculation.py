"""Backward (hint) rules used by the type speculator (Section 2.5).

Each rule makes a statement about the *arguments* of a construct rather
than its result, so these run with the calculator in backward mode.  The
hints mirror the paper's list:

* colon operands are almost always integer scalars;
* relational operands (and, stronger, if/while conditions) are real
  scalars;
* if one bracket-operator argument is provably scalar, the others are
  probably scalars too;
* non-colon subscripts are likely scalar (Fortran-77-style indexing), and
  the subscripted variable is a real array;
* arguments of builtins with "integer scalar affinity" (zeros, ones, rand,
  the second argument of size, ...) are likely integer scalars.

A hint of ``None`` for an argument position means "no statement".
"""

from __future__ import annotations

from repro.inference.calculator import RuleContext, TypeCalculator
from repro.inference.rules_indexing import is_colon
from repro.typesys.intrinsic import Intrinsic
from repro.typesys.mtype import MType
from repro.typesys.ranges import Interval
from repro.typesys.shape import Shape

INT_SCALAR_HINT = MType.scalar(Intrinsic.INT)
REAL_SCALAR_HINT = MType.scalar(Intrinsic.REAL)
REAL_ARRAY_HINT = MType(
    Intrinsic.REAL, Shape.bottom(), Shape.top(), Interval.top()
)


def register(calc: TypeCalculator) -> None:
    # ------------------------------------------------------------------
    # Colon operands → integer scalars.
    # ------------------------------------------------------------------
    def colon_hints(ctx: RuleContext) -> list[MType]:
        return [INT_SCALAR_HINT for _ in ctx.args]

    calc.rule(
        ("colon", ":"),
        "spec:colon-int-scalars",
        lambda ctx: True,
        colon_hints,
        direction="backward",
    )

    # ------------------------------------------------------------------
    # Relational operands → real scalars.
    # ------------------------------------------------------------------
    for op in ("==", "~=", "<", "<=", ">", ">="):
        calc.rule(
            ("binop", op),
            f"spec:{op}-real-scalars",
            lambda ctx: True,
            lambda ctx: [REAL_SCALAR_HINT, REAL_SCALAR_HINT],
            direction="backward",
        )

    # if/while conditions: an even stronger version of the same hint.
    for kind in ("if", "while"):
        calc.rule(
            ("cond", kind),
            f"spec:{kind}-cond-scalar",
            lambda ctx: True,
            lambda ctx: [REAL_SCALAR_HINT],
            direction="backward",
        )

    # ------------------------------------------------------------------
    # Bracket operator: one proven scalar → siblings probably scalar.
    # ------------------------------------------------------------------
    def bracket_hints(ctx: RuleContext) -> list[MType]:
        return [
            MType.scalar(Intrinsic.REAL)
            if not arg.is_scalar
            else arg
            for arg in ctx.args
        ]

    calc.rule(
        ("matrix", "[]"),
        "spec:bracket-all-scalars",
        lambda ctx: any(arg.is_scalar for arg in ctx.args),
        bracket_hints,
        direction="backward",
    )

    # ------------------------------------------------------------------
    # Subscripts: Fortran-77-style indexing → scalar indices, array base.
    # ------------------------------------------------------------------
    def index_hints(ctx: RuleContext) -> list[MType]:
        hints: list[MType] = [REAL_ARRAY_HINT]
        for idx in ctx.args[1:]:
            hints.append(None if is_colon(idx) else INT_SCALAR_HINT)
        return hints

    def no_colon(ctx: RuleContext) -> bool:
        # Fortran-90 syntax is indicated by the presence of the colon; its
        # absence indicates Fortran 77, where indices are scalars.
        return not any(is_colon(idx) for idx in ctx.args[1:])

    calc.rule(
        ("index", "linear"),
        "spec:index-f77-scalar",
        no_colon,
        index_hints,
        direction="backward",
    )
    calc.rule(
        ("index", "2d"),
        "spec:index2-f77-scalar",
        no_colon,
        index_hints,
        direction="backward",
    )

    # ------------------------------------------------------------------
    # Builtin argument affinities.
    # ------------------------------------------------------------------
    from repro.runtime.builtins import BUILTINS

    def all_int_scalars(ctx: RuleContext) -> list[MType]:
        return [INT_SCALAR_HINT for _ in ctx.args]

    for name, entry in BUILTINS.items():
        if not entry.int_scalar_affinity:
            continue
        if name == "size":
            calc.rule(
                ("builtin", "size"),
                "spec:size-dim-int-scalar",
                lambda ctx: len(ctx.args) == 2,
                lambda ctx: [None, INT_SCALAR_HINT],
                direction="backward",
            )
            continue
        calc.rule(
            ("builtin", name),
            f"spec:{name}-int-scalars",
            lambda ctx: True,
            all_int_scalars,
            direction="backward",
        )
