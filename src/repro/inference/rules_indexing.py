"""Transfer rules for array subscript expressions ``A(i)`` / ``A(i, j)``.

The engine encodes a bare ``:`` subscript as the distinguished
:data:`COLON_MARKER` type (an impossible value type), so colon selection
rules can be expressed in the same guarded-rule style as everything else.

These rules also implement the element-type extraction that powers the
paper's biggest optimization: a scalar index into a real matrix yields a
*real scalar* whose range is the matrix's element range, which downstream
lets the code generator inline the access as a single load.
"""

from __future__ import annotations

import math

from repro.inference.calculator import RuleContext, TypeCalculator
from repro.inference.rules_arith import ablate_min, is_numeric
from repro.typesys.intrinsic import Intrinsic
from repro.typesys.mtype import MType
from repro.typesys.ranges import Interval
from repro.typesys.shape import Shape

#: Marker for a bare ``:`` subscript (never a real value type).
COLON_MARKER = MType(Intrinsic.BOTTOM, Shape.top(), Shape.top(), Interval.top())


def is_colon(t: MType) -> bool:
    return t.intrinsic is Intrinsic.BOTTOM and t.maxshape.is_top


def _element_type(a: MType, ctx: RuleContext) -> MType:
    """Type of one element extracted from ``a``."""
    intrinsic = a.intrinsic
    if intrinsic is Intrinsic.STRING:
        return MType.string()
    if not intrinsic.leq(Intrinsic.COMPLEX):
        return MType.top()
    rng = a.range if (ctx.range_propagation and a.is_real_like) else Interval.top()
    return MType.scalar(intrinsic, rng)


def _subvector_type(a: MType, idx: MType, ctx: RuleContext) -> MType:
    """Type of ``A(v)`` for a vector subscript ``v``."""
    intrinsic = a.intrinsic if a.intrinsic.leq(Intrinsic.COMPLEX) else Intrinsic.TOP
    rng = a.range if (ctx.range_propagation and a.is_real_like) else Interval.top()
    if idx.has_exact_shape and ctx.min_shape_propagation:
        shape = idx.exact_shape
        # Orientation follows the index for matrices; a vector source keeps
        # its own orientation, so we widen to either orientation.
        mn = Shape(min(shape.rows, shape.cols), min(shape.rows, shape.cols))
        mx = Shape(max(shape.rows, shape.cols), max(shape.rows, shape.cols))
        return MType(intrinsic, mn, mx, rng)
    count = idx.maxshape.numel
    mx = Shape(count, count)
    return MType(intrinsic, Shape.bottom(), mx, rng)


def register(calc: TypeCalculator) -> None:
    linear = ("index", "linear")
    two_d = ("index", "2d")

    # ------------------------------------------------------------------
    # Linear indexing A(idx)
    # ------------------------------------------------------------------
    calc.rule(
        linear,
        "A(i):scalar-element",
        lambda ctx: ctx.arg(1).is_scalar and not is_colon(ctx.arg(1)),
        lambda ctx: [_element_type(ctx.arg(0), ctx)],
    )

    def flatten(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        rng = a.range if (ctx.range_propagation and a.is_real_like) else Interval.top()
        intrinsic = a.intrinsic if a.intrinsic.leq(Intrinsic.COMPLEX) else Intrinsic.TOP
        numel_min = a.minshape.numel or 0
        numel_max = a.maxshape.numel
        mn = ablate_min(Shape(numel_min, 1), Shape(numel_max, 1), ctx)
        return [MType(intrinsic, mn, Shape(numel_max, 1), rng)]

    calc.rule(
        linear,
        "A(:):flatten",
        lambda ctx: is_colon(ctx.arg(1)),
        flatten,
    )
    calc.rule(
        linear,
        "A(v):subvector",
        lambda ctx: is_numeric(ctx.arg(1)),
        lambda ctx: [_subvector_type(ctx.arg(0), ctx.arg(1), ctx)],
    )
    calc.rule(linear, "A(i):generic", lambda ctx: True, lambda ctx: [MType.top()])

    # ------------------------------------------------------------------
    # Two-subscript indexing A(i, j)
    # ------------------------------------------------------------------
    calc.rule(
        two_d,
        "A(i,j):scalar-element",
        lambda ctx: ctx.arg(1).is_scalar
        and ctx.arg(2).is_scalar
        and not is_colon(ctx.arg(1))
        and not is_colon(ctx.arg(2)),
        lambda ctx: [_element_type(ctx.arg(0), ctx)],
    )

    def column(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        intrinsic = a.intrinsic if a.intrinsic.leq(Intrinsic.COMPLEX) else Intrinsic.TOP
        rng = a.range if (ctx.range_propagation and a.is_real_like) else Interval.top()
        mx = Shape(a.maxshape.rows, 1)
        mn = ablate_min(Shape(a.minshape.rows, 1), mx, ctx)
        return [MType(intrinsic, mn, mx, rng)]

    calc.rule(
        two_d,
        "A(:,j):column",
        lambda ctx: is_colon(ctx.arg(1)) and ctx.arg(2).is_scalar,
        column,
    )

    def row(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        intrinsic = a.intrinsic if a.intrinsic.leq(Intrinsic.COMPLEX) else Intrinsic.TOP
        rng = a.range if (ctx.range_propagation and a.is_real_like) else Interval.top()
        mx = Shape(1, a.maxshape.cols)
        mn = ablate_min(Shape(1, a.minshape.cols), mx, ctx)
        return [MType(intrinsic, mn, mx, rng)]

    calc.rule(
        two_d,
        "A(i,:):row",
        lambda ctx: ctx.arg(1).is_scalar and is_colon(ctx.arg(2)),
        row,
    )

    def whole(ctx: RuleContext) -> list[MType]:
        return [ctx.arg(0)]

    calc.rule(
        two_d,
        "A(:,:):whole",
        lambda ctx: is_colon(ctx.arg(1)) and is_colon(ctx.arg(2)),
        whole,
    )

    def submatrix(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        i, j = ctx.arg(1), ctx.arg(2)
        intrinsic = a.intrinsic if a.intrinsic.leq(Intrinsic.COMPLEX) else Intrinsic.TOP
        rng = a.range if (ctx.range_propagation and a.is_real_like) else Interval.top()

        def extent(idx: MType, full_min, full_max):
            if is_colon(idx):
                return full_min or 0, full_max
            if idx.has_exact_shape and ctx.min_shape_propagation:
                n = idx.exact_shape.numel
                return n, n
            return 0, idx.maxshape.numel

        rmin, rmax = extent(i, a.minshape.rows, a.maxshape.rows)
        cmin, cmax = extent(j, a.minshape.cols, a.maxshape.cols)
        mx = Shape(rmax, cmax)
        mn = ablate_min(Shape(rmin, cmin), mx, ctx)
        return [MType(intrinsic, mn, mx, rng)]

    calc.rule(
        two_d,
        "A(v,w):submatrix",
        lambda ctx: True,
        submatrix,
    )

    # ------------------------------------------------------------------
    # end-marker arithmetic: `end` inside a subscript of A takes the
    # dimension's bounds from A's shape window.
    # ------------------------------------------------------------------
    def end_type(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        dim = ctx.nargout  # 1 = rows, 2 = cols, 0 = numel (linear)
        if dim == 1:
            lo, hi = a.minshape.rows, a.maxshape.rows
        elif dim == 2:
            lo, hi = a.minshape.cols, a.maxshape.cols
        else:
            lo, hi = a.minshape.numel, a.maxshape.numel
        rng = Interval.of(
            float(lo or 0), float(hi) if hi is not None else math.inf
        )
        if not ctx.range_propagation:
            rng = Interval.top()
        return [MType.scalar(Intrinsic.INT, rng)]

    calc.rule(("index", "end"), "end:dimension-bound", lambda ctx: True, end_type)
