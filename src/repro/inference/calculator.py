"""The type calculator: a database of guarded transfer rules (Section 2.3.1).

Every AST operator/builtin has one or more rules.  Each rule is guarded by
a boolean precondition; when the calculator is invoked on a node, the
corresponding rules' preconditions are tested **in registration order**
until one holds, and that rule computes the result types.  Rules are
registered most-restrictive-first — the paper's rationale being that
restrictive rules yield better code, generic rules yield generic code.  If
no precondition holds, the *implicit default rule* applies: all outputs are
set to ⊤ (which the code generators translate to the fully generic
complex-matrix library path).

The calculator has a **forward** mode (expression types from argument
types, used by JIT and speculative forward passes) and a **backward** mode
(argument hints from usage sites, used by the type speculator of
Section 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.typesys.mtype import MType

Key = tuple[str, str]  # e.g. ("binop", "*"), ("builtin", "zeros")


@dataclass
class RuleContext:
    """Inputs available to one rule application."""

    args: list[MType]
    nargout: int = 1
    # Engine-level switches (Figure 7 ablations) relevant to some rules.
    range_propagation: bool = True
    min_shape_propagation: bool = True

    def arg(self, index: int) -> MType:
        return self.args[index] if index < len(self.args) else MType.top()


@dataclass(frozen=True)
class Rule:
    """One guarded transfer rule."""

    key: Key
    name: str
    precondition: Callable[[RuleContext], bool]
    apply: Callable[[RuleContext], list[MType]]
    direction: str = "forward"  # "forward" | "backward"


class TypeCalculator:
    """Rule database with ordered lookup and the implicit ⊤ default."""

    def __init__(self):
        self._forward: dict[Key, list[Rule]] = {}
        self._backward: dict[Key, list[Rule]] = {}
        self.applications: dict[str, int] = {}

    # ------------------------------------------------------------------
    def add(self, rule: Rule) -> None:
        table = self._forward if rule.direction == "forward" else self._backward
        table.setdefault(rule.key, []).append(rule)

    def rule(
        self,
        key: Key,
        name: str,
        precondition: Callable[[RuleContext], bool],
        apply: Callable[[RuleContext], list[MType]],
        direction: str = "forward",
    ) -> None:
        self.add(Rule(key, name, precondition, apply, direction))

    @property
    def rule_count(self) -> int:
        return sum(len(rules) for rules in self._forward.values()) + sum(
            len(rules) for rules in self._backward.values()
        )

    def rules_for(self, key: Key, direction: str = "forward") -> list[Rule]:
        table = self._forward if direction == "forward" else self._backward
        return list(table.get(key, []))

    # ------------------------------------------------------------------
    def forward(self, key: Key, ctx: RuleContext) -> list[MType]:
        """Apply the first matching forward rule; default = all ⊤."""
        for rule in self._forward.get(key, ()):
            if rule.precondition(ctx):
                self.applications[rule.name] = (
                    self.applications.get(rule.name, 0) + 1
                )
                result = rule.apply(ctx)
                if len(result) < ctx.nargout:
                    result = result + [
                        MType.top() for _ in range(ctx.nargout - len(result))
                    ]
                return result
        return [MType.top() for _ in range(max(ctx.nargout, 1))]

    def backward(self, key: Key, ctx: RuleContext) -> list[MType] | None:
        """Apply the first matching backward (hint) rule, if any.

        Returns per-argument hint types (to be met into the argument
        types), or ``None`` when no hint rule matches.
        """
        for rule in self._backward.get(key, ()):
            if rule.precondition(ctx):
                self.applications[rule.name] = (
                    self.applications.get(rule.name, 0) + 1
                )
                return rule.apply(ctx)
        return None


_DEFAULT: TypeCalculator | None = None


def default_calculator() -> TypeCalculator:
    """The fully populated calculator (rules registered on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        calculator = TypeCalculator()
        from repro.inference import (  # deferred: rule modules import us
            rules_arith,
            rules_builtins,
            rules_indexing,
            rules_speculation,
        )

        rules_arith.register(calculator)
        rules_builtins.register(calculator)
        rules_indexing.register(calculator)
        rules_speculation.register(calculator)
        _DEFAULT = calculator
    return _DEFAULT
