"""Type inference (Sections 2.3–2.5).

* :mod:`~repro.inference.calculator` — the *type calculator*: a database of
  guarded transfer rules with forward and backward modes;
* :mod:`~repro.inference.engine` — the iterative join-over-all-paths
  monotone analysis over the CFG, producing per-expression annotations;
* :mod:`~repro.inference.speculation` — the type speculator: backward hint
  propagation alternating with forward passes (Section 2.5);
* :mod:`~repro.inference.annotations` — the result container consumed by
  both code generators.
"""

from repro.inference.annotations import Annotations
from repro.inference.calculator import TypeCalculator, default_calculator
from repro.inference.engine import InferenceOptions, TypeInferenceEngine, infer_function
from repro.inference.speculation import Speculator, speculate_signature

__all__ = [
    "Annotations",
    "TypeCalculator",
    "default_calculator",
    "InferenceOptions",
    "TypeInferenceEngine",
    "infer_function",
    "Speculator",
    "speculate_signature",
]
