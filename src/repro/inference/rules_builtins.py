"""Transfer rules for MATLAB builtin functions.

Many builtins have several rules each (paper: "many of MATLAB's built-in
functions have several entries each").  The interesting ones implement the
collaborations Section 2.4 describes — e.g. ``A = zeros(m, n)``: when range
propagation has constant ranges for ``m`` and ``n``, the shape of ``A`` is
exactly determined.
"""

from __future__ import annotations

import math

from repro.inference.calculator import RuleContext, TypeCalculator
from repro.inference.rules_arith import (
    ablate_min,
    is_int_scalar,
    is_numeric,
    is_real_scalar,
)
from repro.typesys.intrinsic import Intrinsic
from repro.typesys.mtype import MType
from repro.typesys.ranges import Interval
from repro.typesys.shape import Shape


def _dims_from_types(ctx: RuleContext) -> tuple[Shape, Shape]:
    """Shape bounds of a constructor call from its argument ranges."""
    args = ctx.args
    if not args:
        return Shape.scalar(), Shape.scalar()

    def bounds(t: MType) -> tuple[int, int | None]:
        if not ctx.range_propagation or t.range.is_top or t.range.is_bottom:
            return 0, None
        lo = max(int(math.floor(t.range.lo)), 0)
        hi = int(math.ceil(t.range.hi)) if math.isfinite(t.range.hi) else None
        return lo, hi

    if len(args) == 1:
        lo, hi = bounds(args[0])
        return Shape(lo, lo), Shape(hi, hi)
    (rlo, rhi), (clo, chi) = bounds(args[0]), bounds(args[1])
    return Shape(rlo, clo), Shape(rhi, chi)


def _constructor_rules(
    calc: TypeCalculator, name: str, intrinsic: Intrinsic, rng: Interval
) -> None:
    key = ("builtin", name)

    def exact(ctx: RuleContext) -> list[MType]:
        mn, mx = _dims_from_types(ctx)
        return [MType(intrinsic, mn, mx, rng)]

    calc.rule(
        key,
        f"{name}:const-dims",
        lambda ctx: ctx.range_propagation
        and all(a.is_constant for a in ctx.args),
        exact,
    )

    def bounded(ctx: RuleContext) -> list[MType]:
        mn, mx = _dims_from_types(ctx)
        mn = ablate_min(mn, mx, ctx)
        return [MType(intrinsic, mn, mx, rng)]

    calc.rule(
        key,
        f"{name}:int-dims",
        lambda ctx: all(is_numeric(a) and a.is_scalar for a in ctx.args),
        bounded,
    )
    calc.rule(
        key,
        f"{name}:generic",
        lambda ctx: True,
        lambda ctx: [MType(intrinsic, Shape.bottom(), Shape.top(), rng)],
    )


def _unary_elementwise_rules(
    calc: TypeCalculator,
    name: str,
    result_range,
    complex_in_complex_out: bool = True,
    result_intrinsic=None,
    domain_needs_nonneg: float | None = None,
):
    """Rules for a shape-preserving elementwise builtin.

    ``result_range(arg_range)`` maps input to output interval for real
    arguments.  ``domain_needs_nonneg`` marks functions (sqrt, log) that go
    complex when the argument may dip below the given threshold.
    """
    key = ("builtin", name)

    def real_result(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        intrinsic = result_intrinsic(a) if result_intrinsic else Intrinsic.REAL
        rng = (
            result_range(a.range)
            if ctx.range_propagation and not a.range.is_top
            else Interval.top()
        )
        mn = ablate_min(a.minshape, a.maxshape, ctx)
        return [MType(intrinsic, mn, a.maxshape, rng)]

    def real_ok(ctx: RuleContext) -> bool:
        a = ctx.arg(0)
        if not a.is_real_like:
            return False
        if domain_needs_nonneg is None:
            return True
        return ctx.range_propagation and not a.range.is_bottom and (
            a.range.lo >= domain_needs_nonneg
        )

    calc.rule(key, f"{name}:real", real_ok, real_result)

    def complex_result(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        intrinsic = (
            Intrinsic.COMPLEX
            if complex_in_complex_out
            else (result_intrinsic(a) if result_intrinsic else Intrinsic.REAL)
        )
        mn = ablate_min(a.minshape, a.maxshape, ctx)
        return [MType(intrinsic, mn, a.maxshape, Interval.top())]

    calc.rule(
        key,
        f"{name}:complex",
        lambda ctx: is_numeric(ctx.arg(0)),
        complex_result,
    )
    calc.rule(
        key, f"{name}:generic", lambda ctx: True, lambda ctx: [MType.top()]
    )


def register(calc: TypeCalculator) -> None:
    _constructor_rules(calc, "zeros", Intrinsic.INT, Interval.constant(0.0))
    _constructor_rules(calc, "ones", Intrinsic.INT, Interval.constant(1.0))
    _constructor_rules(calc, "eye", Intrinsic.INT, Interval.of(0.0, 1.0))
    _constructor_rules(calc, "rand", Intrinsic.REAL, Interval.of(0.0, 1.0))
    _constructor_rules(calc, "randn", Intrinsic.REAL, Interval.top())

    # ------------------------------------------------------------------
    # Shape queries — where exact shape inference pays off.
    # ------------------------------------------------------------------
    def size_result(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        rows = Interval.of(
            float(a.minshape.rows or 0),
            float(a.maxshape.rows) if a.maxshape.rows is not None else math.inf,
        )
        cols = Interval.of(
            float(a.minshape.cols or 0),
            float(a.maxshape.cols) if a.maxshape.cols is not None else math.inf,
        )
        if not ctx.range_propagation:
            rows = cols = Interval.top()
        if len(ctx.args) == 2:
            dim = ctx.arg(1)
            if dim.is_constant and dim.constant_value == 1.0:
                return [MType.scalar(Intrinsic.INT, rows)]
            if dim.is_constant and dim.constant_value == 2.0:
                return [MType.scalar(Intrinsic.INT, cols)]
            return [MType.scalar(Intrinsic.INT, Interval.top())]
        if ctx.nargout >= 2:
            return [
                MType.scalar(Intrinsic.INT, rows),
                MType.scalar(Intrinsic.INT, cols),
            ]
        return [MType.exact(Intrinsic.INT, 1, 2, rows.join(cols))]

    calc.rule(("builtin", "size"), "size:shape-bounds", lambda ctx: True, size_result)

    def length_result(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        if ctx.range_propagation and a.has_exact_shape:
            shape = a.exact_shape
            value = 0 if shape.numel == 0 else max(shape.rows, shape.cols)
            return [MType.scalar(Intrinsic.INT, Interval.constant(float(value)))]
        return [MType.scalar(Intrinsic.INT, Interval.of(0.0, math.inf))]

    calc.rule(("builtin", "length"), "length:bounds", lambda ctx: True, length_result)

    def numel_result(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        if ctx.range_propagation and a.has_exact_shape:
            return [
                MType.scalar(
                    Intrinsic.INT, Interval.constant(float(a.exact_shape.numel))
                )
            ]
        return [MType.scalar(Intrinsic.INT, Interval.of(0.0, math.inf))]

    calc.rule(("builtin", "numel"), "numel:bounds", lambda ctx: True, numel_result)

    for name in ("isempty", "isreal", "isscalar"):
        calc.rule(
            ("builtin", name),
            f"{name}:bool",
            lambda ctx: True,
            lambda ctx: [MType.scalar(Intrinsic.BOOL, Interval.of(0.0, 1.0))],
        )

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def abs_intrinsic(a: MType) -> Intrinsic:
        return Intrinsic.INT if a.is_integer_like else Intrinsic.REAL

    _unary_elementwise_rules(
        calc, "abs", lambda r: r.abs(),
        complex_in_complex_out=False, result_intrinsic=abs_intrinsic,
    )
    _unary_elementwise_rules(
        calc, "sqrt",
        lambda r: Interval.of(math.sqrt(max(r.lo, 0.0)), math.sqrt(max(r.hi, 0.0)))
        if not r.is_bottom and r.hi >= 0
        else Interval.top(),
        domain_needs_nonneg=0.0,
    )
    _unary_elementwise_rules(
        calc, "exp",
        lambda r: Interval.of(math.exp(min(r.lo, 700)), math.exp(min(r.hi, 700)))
        if not r.is_bottom
        else Interval.top(),
    )
    _unary_elementwise_rules(
        calc, "log", lambda r: Interval.top(), domain_needs_nonneg=0.0
    )
    _unary_elementwise_rules(
        calc, "log2", lambda r: Interval.top(), domain_needs_nonneg=0.0
    )
    _unary_elementwise_rules(
        calc, "log10", lambda r: Interval.top(), domain_needs_nonneg=0.0
    )
    for name in ("sin", "cos"):
        _unary_elementwise_rules(
            calc, name, lambda r: Interval.of(-1.0, 1.0)
        )
    _unary_elementwise_rules(calc, "tan", lambda r: Interval.top())
    _unary_elementwise_rules(
        calc, "atan",
        lambda r: Interval.of(-math.pi / 2, math.pi / 2),
    )
    for name in ("asin", "acos"):
        _unary_elementwise_rules(
            calc, name, lambda r: Interval.of(-math.pi, math.pi),
            domain_needs_nonneg=-1.0,
        )
    for name in ("sinh", "cosh", "tanh"):
        _unary_elementwise_rules(calc, name, lambda r: Interval.top())

    def int_intrinsic(a: MType) -> Intrinsic:
        return Intrinsic.INT

    def _round_interval(r: Interval) -> Interval:
        if r.is_bottom or not (math.isfinite(r.lo) and math.isfinite(r.hi)):
            return Interval.top()
        return Interval.of(math.floor(r.lo), math.ceil(r.hi))

    for name, op in (
        ("floor", lambda r: r.floor()),
        ("ceil", lambda r: r.ceil()),
        ("round", _round_interval),
        ("fix", _round_interval),
    ):
        _unary_elementwise_rules(
            calc, name, op,
            complex_in_complex_out=True, result_intrinsic=int_intrinsic,
        )
    _unary_elementwise_rules(
        calc, "sign", lambda r: Interval.of(-1.0, 1.0),
        result_intrinsic=int_intrinsic,
    )

    def conj_rule(ctx: RuleContext) -> list[MType]:
        return [ctx.arg(0)]

    calc.rule(("builtin", "conj"), "conj:identity-type", lambda ctx: True, conj_rule)

    def real_part(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        intrinsic = a.intrinsic if a.is_real_like else Intrinsic.REAL
        return [MType(intrinsic, a.minshape, a.maxshape,
                       a.range if a.is_real_like else Interval.top())]

    calc.rule(("builtin", "real"), "real:project", lambda ctx: is_numeric(ctx.arg(0)), real_part)
    calc.rule(("builtin", "real"), "real:generic", lambda ctx: True, lambda ctx: [MType.top()])
    calc.rule(("builtin", "imag"), "imag:project", lambda ctx: is_numeric(ctx.arg(0)), real_part)
    calc.rule(("builtin", "imag"), "imag:generic", lambda ctx: True, lambda ctx: [MType.top()])
    calc.rule(
        ("builtin", "angle"),
        "angle:range",
        lambda ctx: is_numeric(ctx.arg(0)),
        lambda ctx: [
            MType(
                Intrinsic.REAL,
                ctx.arg(0).minshape,
                ctx.arg(0).maxshape,
                Interval.of(-math.pi, math.pi),
            )
        ],
    )

    def mod_rule(ctx: RuleContext) -> list[MType]:
        a, b = ctx.arg(0), ctx.arg(1)
        intrinsic = (
            Intrinsic.INT
            if a.is_integer_like and b.is_integer_like
            else Intrinsic.REAL
        )
        rng = Interval.top()
        if ctx.range_propagation and b.is_real_like and b.range.is_positive:
            rng = Interval.of(0.0, b.range.hi)
        from repro.inference.rules_arith import elementwise_shape

        mn, mx = elementwise_shape(a, b)
        return [MType(intrinsic, mn, mx, rng)]

    calc.rule(
        ("builtin", "mod"), "mod:real",
        lambda ctx: ctx.arg(0).is_real_like and ctx.arg(1).is_real_like, mod_rule,
    )
    calc.rule(("builtin", "mod"), "mod:generic", lambda ctx: True, lambda ctx: [MType.top()])
    calc.rule(
        ("builtin", "rem"), "rem:real",
        lambda ctx: ctx.arg(0).is_real_like and ctx.arg(1).is_real_like, mod_rule,
    )
    calc.rule(("builtin", "rem"), "rem:generic", lambda ctx: True, lambda ctx: [MType.top()])
    calc.rule(
        ("builtin", "atan2"),
        "atan2:range",
        lambda ctx: True,
        lambda ctx: [
            MType(
                Intrinsic.REAL,
                ctx.arg(0).minshape.meet(ctx.arg(1).minshape),
                ctx.arg(0).maxshape.join(ctx.arg(1).maxshape),
                Interval.of(-math.pi, math.pi),
            )
        ],
    )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def reduction_rules(name: str, keeps_intrinsic: bool, keeps_range: bool) -> None:
        key = ("builtin", name)

        def vector_case(ctx: RuleContext) -> list[MType]:
            a = ctx.arg(0)
            intrinsic = a.intrinsic if keeps_intrinsic else Intrinsic.REAL
            if intrinsic is Intrinsic.BOOL:
                intrinsic = Intrinsic.INT
            rng = a.range if (keeps_range and ctx.range_propagation) else Interval.top()
            outs = [MType.scalar(intrinsic, rng)]
            if ctx.nargout >= 2:
                outs.append(MType.scalar(Intrinsic.INT, Interval.of(1.0, math.inf)))
            return outs

        from repro.inference.rules_arith import is_vector

        calc.rule(
            key,
            f"{name}:vector",
            lambda ctx: len(ctx.args) == 1
            and (ctx.arg(0).is_scalar or is_vector(ctx.arg(0))),
            vector_case,
        )

        if name in ("max", "min"):

            def two_arg(ctx: RuleContext) -> list[MType]:
                from repro.inference.rules_arith import elementwise_shape

                a, b = ctx.arg(0), ctx.arg(1)
                mn, mx = elementwise_shape(a, b)
                intrinsic = a.intrinsic.join(b.intrinsic)
                if not intrinsic.leq(Intrinsic.REAL):
                    intrinsic = Intrinsic.REAL
                rng = (
                    a.range.join(b.range) if ctx.range_propagation else Interval.top()
                )
                return [MType(intrinsic, mn, mx, rng)]

            calc.rule(
                key,
                f"{name}:elementwise-2arg",
                lambda ctx: len(ctx.args) == 2,
                two_arg,
            )

        def matrix_case(ctx: RuleContext) -> list[MType]:
            a = ctx.arg(0)
            intrinsic = a.intrinsic if keeps_intrinsic else Intrinsic.REAL
            if intrinsic is Intrinsic.BOOL:
                intrinsic = Intrinsic.INT
            if not intrinsic.leq(Intrinsic.COMPLEX):
                intrinsic = Intrinsic.TOP
            rng = a.range if (keeps_range and ctx.range_propagation) else Interval.top()
            return [
                MType(intrinsic, Shape.bottom(), Shape(1, a.maxshape.cols), rng)
            ]

        calc.rule(key, f"{name}:columnwise", lambda ctx: True, matrix_case)

    reduction_rules("sum", keeps_intrinsic=True, keeps_range=False)
    reduction_rules("prod", keeps_intrinsic=True, keeps_range=False)
    reduction_rules("mean", keeps_intrinsic=False, keeps_range=True)
    reduction_rules("max", keeps_intrinsic=True, keeps_range=True)
    reduction_rules("min", keeps_intrinsic=True, keeps_range=True)

    for name in ("any", "all"):
        calc.rule(
            ("builtin", name),
            f"{name}:bool",
            lambda ctx: True,
            lambda ctx: [
                MType(
                    Intrinsic.BOOL,
                    Shape.bottom(),
                    Shape(1, ctx.arg(0).maxshape.cols),
                    Interval.of(0.0, 1.0),
                )
            ],
        )

    calc.rule(
        ("builtin", "find"),
        "find:index-vector",
        lambda ctx: True,
        lambda ctx: [
            MType(
                Intrinsic.INT,
                Shape.bottom(),
                Shape.top(),
                Interval.of(1.0, math.inf),
            )
        ],
    )
    calc.rule(
        ("builtin", "sort"),
        "sort:same-shape",
        lambda ctx: is_numeric(ctx.arg(0)),
        lambda ctx: [
            ctx.arg(0),
            MType(
                Intrinsic.INT,
                ctx.arg(0).minshape,
                ctx.arg(0).maxshape,
                Interval.of(1.0, math.inf),
            ),
        ],
    )
    calc.rule(("builtin", "sort"), "sort:generic", lambda ctx: True, lambda ctx: [MType.top()])

    calc.rule(
        ("builtin", "cumsum"),
        "cumsum:same-shape",
        lambda ctx: is_numeric(ctx.arg(0)),
        lambda ctx: [
            MType(
                ctx.arg(0).intrinsic.join(Intrinsic.INT),
                ctx.arg(0).minshape,
                ctx.arg(0).maxshape,
                Interval.top(),
            )
        ],
    )

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    calc.rule(
        ("builtin", "norm"),
        "norm:nonneg-scalar",
        lambda ctx: True,
        lambda ctx: [MType.scalar(Intrinsic.REAL, Interval.of(0.0, math.inf))],
    )

    def eig_real(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        n_min = a.minshape.rows if a.minshape.rows else 0
        outs = [
            MType(Intrinsic.REAL, Shape(n_min, 1), Shape(a.maxshape.rows, 1),
                  Interval.top())
        ]
        if ctx.nargout >= 2:
            outs = [
                MType(Intrinsic.REAL, a.minshape, a.maxshape, Interval.top()),
                MType(Intrinsic.REAL, a.minshape, a.maxshape, Interval.top()),
            ]
        return outs

    # MaJIC (like FALCON) types eig of a real matrix as real; the runtime
    # library widens dynamically if a non-symmetric input produces complex
    # eigenvalues.  The speculator never reaches this rule — that is the
    # paper's documented `mei` performance loss.
    calc.rule(
        ("builtin", "eig"),
        "eig:real-input",
        lambda ctx: ctx.arg(0).is_real_like,
        eig_real,
    )

    def eig_complex(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        outs = [
            MType(Intrinsic.COMPLEX, Shape.bottom(), Shape(a.maxshape.rows, 1),
                  Interval.top())
        ]
        if ctx.nargout >= 2:
            outs = [
                MType(Intrinsic.COMPLEX, Shape.bottom(), a.maxshape, Interval.top()),
                MType(Intrinsic.COMPLEX, Shape.bottom(), a.maxshape, Interval.top()),
            ]
        return outs

    calc.rule(("builtin", "eig"), "eig:complex", lambda ctx: True, eig_complex)

    for name in ("inv", "chol", "tril", "triu"):
        calc.rule(
            ("builtin", name),
            f"{name}:same-shape",
            lambda ctx: is_numeric(ctx.arg(0)),
            lambda ctx: [
                MType(
                    ctx.arg(0).intrinsic.join(Intrinsic.REAL)
                    if ctx.arg(0).is_real_like
                    else Intrinsic.COMPLEX,
                    ctx.arg(0).minshape,
                    ctx.arg(0).maxshape,
                    Interval.top(),
                )
            ],
        )
        calc.rule(
            ("builtin", name), f"{name}:generic",
            lambda ctx: True, lambda ctx: [MType.top()],
        )

    calc.rule(
        ("builtin", "det"),
        "det:scalar",
        lambda ctx: ctx.arg(0).is_real_like,
        lambda ctx: [MType.scalar(Intrinsic.REAL)],
    )
    calc.rule(
        ("builtin", "det"), "det:generic",
        lambda ctx: True, lambda ctx: [MType.scalar(Intrinsic.COMPLEX)],
    )
    calc.rule(
        ("builtin", "dot"),
        "dot:real",
        lambda ctx: ctx.arg(0).is_real_like and ctx.arg(1).is_real_like,
        lambda ctx: [MType.scalar(Intrinsic.REAL)],
    )
    calc.rule(
        ("builtin", "dot"), "dot:generic",
        lambda ctx: True, lambda ctx: [MType.scalar(Intrinsic.COMPLEX)],
    )

    def diag_rule(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        return [
            MType(
                a.intrinsic,
                Shape.bottom(),
                Shape.top(),
                a.range if a.is_real_like else Interval.top(),
            )
        ]

    calc.rule(("builtin", "diag"), "diag:numeric", lambda ctx: is_numeric(ctx.arg(0)), diag_rule)
    calc.rule(("builtin", "diag"), "diag:generic", lambda ctx: True, lambda ctx: [MType.top()])

    # ------------------------------------------------------------------
    # Construction / reshaping
    # ------------------------------------------------------------------
    def linspace_rule(ctx: RuleContext) -> list[MType]:
        count: int | None = 100
        if len(ctx.args) > 2:
            n = ctx.arg(2)
            count = (
                int(n.constant_value)
                if ctx.range_propagation and n.is_constant
                else None
            )
        rng = Interval.top()
        if ctx.range_propagation:
            rng = ctx.arg(0).range.join(ctx.arg(1).range)
        if count is not None:
            return [MType.exact(Intrinsic.REAL, 1, count, rng)]
        return [MType(Intrinsic.REAL, Shape(1, 0), Shape(1, None), rng)]

    calc.rule(("builtin", "linspace"), "linspace:vector", lambda ctx: True, linspace_rule)

    def reshape_rule(ctx: RuleContext) -> list[MType]:
        a = ctx.arg(0)
        if (
            ctx.range_propagation
            and len(ctx.args) == 3
            and ctx.arg(1).is_constant
            and ctx.arg(2).is_constant
        ):
            rows = int(ctx.arg(1).constant_value)
            cols = int(ctx.arg(2).constant_value)
            return [MType.exact(a.intrinsic, rows, cols, a.range)]
        return [MType(a.intrinsic, Shape.bottom(), Shape.top(), a.range)]

    calc.rule(("builtin", "reshape"), "reshape:dims", lambda ctx: True, reshape_rule)
    calc.rule(
        ("builtin", "repmat"),
        "repmat:numeric",
        lambda ctx: is_numeric(ctx.arg(0)),
        lambda ctx: [
            MType(ctx.arg(0).intrinsic, Shape.bottom(), Shape.top(), ctx.arg(0).range)
        ],
    )
    calc.rule(("builtin", "repmat"), "repmat:generic", lambda ctx: True, lambda ctx: [MType.top()])

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    calc.rule(
        ("builtin", "pi"), "pi:constant", lambda ctx: True,
        lambda ctx: [MType.scalar(Intrinsic.REAL, Interval.constant(math.pi))],
    )
    calc.rule(
        ("builtin", "eps"), "eps:constant", lambda ctx: True,
        lambda ctx: [
            MType.scalar(Intrinsic.REAL, Interval.constant(2.220446049250313e-16))
        ],
    )
    for name in ("inf", "Inf"):
        calc.rule(
            ("builtin", name), f"{name}:constant", lambda ctx: True,
            lambda ctx: [
                MType.scalar(Intrinsic.REAL, Interval.of(math.inf, math.inf))
            ],
        )
    for name in ("nan", "NaN"):
        calc.rule(
            ("builtin", name), f"{name}:constant", lambda ctx: True,
            lambda ctx: [MType.scalar(Intrinsic.REAL, Interval.top())],
        )
    for name in ("i", "j"):
        calc.rule(
            ("builtin", name), f"{name}:imaginary-unit", lambda ctx: True,
            lambda ctx: [MType.scalar(Intrinsic.COMPLEX)],
        )

    # ------------------------------------------------------------------
    # Output / strings / errors
    # ------------------------------------------------------------------
    for name in ("disp", "fprintf", "error"):
        calc.rule(
            ("builtin", name), f"{name}:void", lambda ctx: True,
            lambda ctx: [],
        )
    calc.rule(
        ("builtin", "sprintf"), "sprintf:string", lambda ctx: True,
        lambda ctx: [MType.string()],
    )
    calc.rule(
        ("builtin", "num2str"), "num2str:string", lambda ctx: True,
        lambda ctx: [MType.string()],
    )
    calc.rule(
        ("builtin", "strcmp"), "strcmp:bool", lambda ctx: True,
        lambda ctx: [MType.scalar(Intrinsic.BOOL, Interval.of(0.0, 1.0))],
    )
