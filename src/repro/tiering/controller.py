"""The online tier controller (profile-guided adaptive tiering).

MaJIC's thesis is that *when* to compile matters as much as *how*: the JIT
buys responsiveness, the speculative compiler buys speed, and the paper's
user chooses between them by hand (``speculate_all()`` up front vs. lazy
``jit_compile`` on first call).  The controller closes that loop.  It
watches every call the repository serves — which tier ran it and how long
it took — and drives functions up the tier ladder

    interpreter  →  JIT  →  optimizing srcgen (spec)

in the background, out-of-band on the :class:`SpeculationEngine` worker
pool, while the native C kernel tier rides the same hotness substrate
inside :class:`~repro.native.engine.NativeEngine`.  Demotion is measured,
not assumed: a compiled tier whose EWMA latency is worse than the
interpreter's is suppressed, and the PR 1 strike/deopt chain (quarantine
events) pins misbehaving functions to the interpreter outright.

Every switch stays behind the guarded-deopt chain — the controller only
decides *which* version the repository serves; correctness is still
enforced per call, so results remain bit-identical to the interpreter
mid-stream.

Learned profiles (hotness score + winning tier + the promoting signature)
persist as blobs in the content-addressed :class:`RepositoryCache`: a warm
session restores them at first *dispatch* of each function — inline, since
the re-launched winning-tier compile lands as a disk-cache hit — so even
the first call runs at the learned tier: no recompiles, no warmup ramp.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import MatlabError
from repro.faults.plan import SITE_TIERING_PROMOTE
from repro.obs import DISABLED as DISABLED_OBS
from repro.obs import TIER_INTERPRETER, TIER_JIT, TIER_SPEC
from repro.repository.cache import cache_key, function_source_text
from repro.repository.diagnostics import (
    QUARANTINE,
    TIER_DEMOTE,
    TIER_PROMOTE,
)
from repro.tiering.hotness import HotnessCounter

#: Signature tag under which profiles are content-addressed in the cache.
PROFILE_TAG = "tiering-profile"

#: The function-tier ladder (native is a kernel tier, not a function tier:
#: it rides inside compiled objects via the NativeEngine and shares the
#: controller's kernel hotness counter).
LADDER = (TIER_INTERPRETER, TIER_JIT, TIER_SPEC)
_RANK = {tier: rank for rank, tier in enumerate(LADDER)}


@dataclass(frozen=True)
class TieringPolicy:
    """Thresholds and decay knobs for the adaptive controller.

    Hotness is a decayed call count (see :class:`HotnessCounter`), so the
    thresholds read as "roughly this many recent calls".  ``demote_margin``
    is the slowdown factor versus the interpreter's EWMA latency that
    triggers a measured demotion; each demotion backs the re-promotion
    threshold off by ``redemote_backoff``×, and after ``max_demotions``
    measured demotions the function is pinned to the interpreter.
    """

    jit_threshold: float = 3.0       # hotness before interpreter -> jit
    spec_threshold: float = 12.0     # hotness before jit -> spec
    native_hot_threshold: int = 2    # kernel dispatches before a C compile
    decay_interval: int = 512        # observations between decay sweeps
    decay_factor: float = 0.5        # score multiplier per sweep
    ewma_alpha: float = 0.3          # per-tier latency smoothing
    min_samples: int = 4             # samples per tier before demoting
    demote_margin: float = 1.5       # compiled slower than interp by this
    redemote_backoff: float = 2.0    # threshold growth per demotion
    max_demotions: int = 2           # measured demotions before pinning


class _FunctionState:
    """Controller-side view of one function (guarded by the controller
    lock; ``tier`` is the highest tier whose compile has *landed*, which
    can trail what the repository is already serving)."""

    __slots__ = (
        "tier", "inflight", "failed", "ewma", "samples", "demotions",
        "suppressed", "pinned", "profiled", "signature", "from_profile",
    )

    def __init__(self):
        self.tier = TIER_INTERPRETER
        self.inflight: set[str] = set()
        self.failed: set[str] = set()
        self.ewma: dict[str, float] = {}
        self.samples: dict[str, int] = {}
        self.demotions = 0
        self.suppressed = False
        self.pinned = False
        self.profiled = False
        self.signature = None
        self.from_profile = False


class TierController:
    """Online promotion/demotion across the execution tiers.

    ``submit(fn, label, on_done)`` is the session's bridge to the
    supervised :class:`SpeculationEngine` pool; with ``sync=True`` (or no
    bridge) promotion compiles run inline at the decision point, which the
    deterministic fault-injection and differential harnesses rely on.
    """

    def __init__(
        self,
        policy: TieringPolicy | None = None,
        obs=None,
        fault_plan=None,
        sync: bool = False,
        submit=None,
    ):
        self.policy = policy if policy is not None else TieringPolicy()
        self.obs = obs if obs is not None else DISABLED_OBS
        self.fault_plan = fault_plan
        self.sync = sync
        self._submit = submit
        interval = self.policy.decay_interval
        factor = self.policy.decay_factor
        self.hotness = HotnessCounter(interval, factor)
        self.kernel_hotness = HotnessCounter(interval, factor)
        self.repo = None
        self.cache = None
        self._states: dict[str, _FunctionState] = {}
        self._lock = threading.RLock()
        self.promotions = 0
        self.demotions = 0
        self.profile_restores = 0
        self.profiles_saved = 0

    # ------------------------------------------------------------------
    def bind(self, repo) -> None:
        """Attach to a repository (done by the session after both exist,
        so neither module imports the other)."""
        self.repo = repo
        self.cache = repo.cache
        repo.tiering = self
        repo.diagnostics.add_listener(self._on_event)

    # ------------------------------------------------------------------
    # The per-call hook (called by CodeRepository._execute_adaptive)
    # ------------------------------------------------------------------
    def suppressed(self, name: str) -> bool:
        state = self._states.get(name)
        return state is not None and state.suppressed

    def prepare(self, name: str) -> None:
        """Warm-path hook, called by the repository on the first dispatch
        of ``name``: restore any persisted profile *inline* so the very
        first call is already served at the learned tier.  The restore's
        compiles are persistent-cache hits, so the foreground cost is a
        disk load, not a compile."""
        with self._lock:
            state = self._states.get(name)
            if state is None:
                state = self._states[name] = _FunctionState()
            if state.profiled:
                return
            state.profiled = True
        self._restore_profile(name, state, inline=True)

    def restore_all(self) -> int:
        """Eagerly restore persisted profiles for every known function —
        the warm-session analogue of ``speculate_all``, except every
        relaunched compile is a disk-cache hit.  Lazy first-dispatch
        restoration makes this optional; calling it up front just moves
        the (small) restore cost off the first call of each function.
        Returns the number of profiles restored."""
        if self.repo is None or self.cache is None:
            return 0
        before = self.profile_restores
        for name in self.repo.function_names():
            self.prepare(name)
        return self.profile_restores - before

    def observe(self, invocation, tier: str, seconds: float) -> None:
        """Record one served call: which tier ran it, and how long."""
        name = invocation.name
        alpha = self.policy.ewma_alpha
        with self._lock:
            state = self._states.get(name)
            if state is None:
                state = self._states[name] = _FunctionState()
            prev = state.ewma.get(tier)
            state.ewma[tier] = (
                seconds if prev is None else prev + alpha * (seconds - prev)
            )
            state.samples[tier] = state.samples.get(tier, 0) + 1
            probe = not state.profiled
            state.profiled = True
        score = self.hotness.record(name)
        if probe:
            self._restore_profile(name, state)
            score = self.hotness.score(name)
        self._consider(name, state, tier, score, invocation)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _consider(self, name, state, tier, score, invocation) -> None:
        policy = self.policy
        demote = None
        target = None
        with self._lock:
            if state.pinned:
                return
            backoff = policy.redemote_backoff ** state.demotions
            if state.suppressed:
                # A demoted function can earn its way back, but the bar
                # rises with every measured demotion.
                if score >= policy.jit_threshold * backoff:
                    state.suppressed = False
                return
            if tier in (TIER_JIT, TIER_SPEC):
                interp = state.ewma.get(TIER_INTERPRETER)
                compiled = state.ewma.get(tier)
                if (
                    interp is not None
                    and compiled is not None
                    and state.samples.get(TIER_INTERPRETER, 0)
                    >= policy.min_samples
                    and state.samples.get(tier, 0) >= policy.min_samples
                    and compiled > interp * policy.demote_margin
                ):
                    demote = (tier, compiled, interp)
            if demote is None:
                if (
                    state.tier == TIER_INTERPRETER
                    and TIER_JIT not in state.inflight
                    and TIER_JIT not in state.failed
                    and score >= policy.jit_threshold * backoff
                ):
                    target = TIER_JIT
                elif (
                    state.tier == TIER_JIT
                    and TIER_SPEC not in state.inflight
                    and TIER_SPEC not in state.failed
                    and score >= policy.spec_threshold * backoff
                ):
                    target = TIER_SPEC
        if demote is not None:
            self._demote(name, state, *demote)
            return
        if target is None:
            return
        repo = self.repo
        if repo is None or name in repo._uncompilable:
            return
        signature = invocation.signature if target == TIER_JIT else None
        self._begin(name, state, target, signature)

    def _begin(self, name, state, target, signature, inline=False) -> None:
        with self._lock:
            if target in state.inflight or target in state.failed:
                return
            state.inflight.add(target)
            if signature is not None:
                state.signature = signature
        label = f"tier:{target}:{name}"
        if inline or self.sync or self._submit is None:
            self._landed(name, target,
                         self._run_promotion(name, target, signature))
            return

        def task():
            self._landed(name, target,
                         self._run_promotion(name, target, signature))

        def abandoned(success: bool) -> None:
            # Fires when the pool dropped the task (cancel, poison, or a
            # crash that exhausted its retries) before it could land.
            if not success:
                self._landed(name, target, False)

        if not self._submit(task, label, abandoned):
            # Pool shut down or degraded: fall back inline, like the
            # native engine does for its out-of-band compiles.
            self._landed(name, target,
                         self._run_promotion(name, target, signature))

    # ------------------------------------------------------------------
    # Promotion execution (worker thread in async mode)
    # ------------------------------------------------------------------
    def _run_promotion(self, name, target, signature) -> bool:
        repo = self.repo
        try:
            with self.obs.tracer.span(
                name, "tiering", function=name, tier=target
            ):
                if self.fault_plan is not None:
                    self.fault_plan.check(SITE_TIERING_PROMOTE, name)
                if target == TIER_JIT:
                    repo.jit_compile(name, signature)
                else:
                    if repo.speculate(name) is None:
                        return False
        except MatlabError as exc:
            # Expected compile rejection (unsupported construct): the
            # function can never hold a compiled version, so stop trying.
            with repo._lock:
                repo._uncompilable.add(name)
            repo._record_compile_failure(name, target, exc, signature)
            return False
        except Exception as exc:  # noqa: BLE001 - promotion is best-effort
            repo.diagnostics.record(
                TIER_PROMOTE, name,
                detail=f"promotion to {target} aborted; staying on the "
                "current tier",
                cause=exc,
            )
            return False
        return True

    def _landed(self, name, target, ok: bool) -> None:
        promoted = False
        with self._lock:
            state = self._states.get(name)
            if state is None or target not in state.inflight:
                return
            state.inflight.discard(target)
            if not ok:
                state.failed.add(target)
            else:
                if (
                    _RANK.get(target, 0) > _RANK.get(state.tier, 0)
                    and not state.suppressed
                ):
                    state.tier = target
                self.promotions += 1
                promoted = True
        if promoted:
            self.repo.diagnostics.record(
                TIER_PROMOTE, name,
                detail=f"promoted to {target} "
                f"(hotness {self.hotness.score(name):.1f})",
            )
            self.obs.record_promotion(target)

    def _demote(self, name, state, tier, compiled, interp) -> None:
        with self._lock:
            if state.suppressed or state.pinned:
                return
            state.demotions += 1
            state.suppressed = True
            state.tier = TIER_INTERPRETER
            state.ewma.pop(tier, None)
            state.samples[tier] = 0
            if state.demotions > self.policy.max_demotions:
                state.pinned = True
            pinned = state.pinned
            self.demotions += 1
        self.hotness.forget(name)
        self.repo.diagnostics.record(
            TIER_DEMOTE, name,
            detail=f"{tier} ewma {compiled * 1e3:.3f}ms vs interpreter "
            f"{interp * 1e3:.3f}ms; serving from the interpreter"
            + (" (pinned)" if pinned else ""),
        )
        self.obs.record_demotion("slower")

    # ------------------------------------------------------------------
    # Strike/deopt chain feedback
    # ------------------------------------------------------------------
    def _on_event(self, event) -> None:
        if event.kind != QUARANTINE:
            return
        with self._lock:
            state = self._states.get(event.function)
            if state is None or state.pinned:
                return
            state.tier = TIER_INTERPRETER
            state.suppressed = True
            state.pinned = True
            self.demotions += 1
        self.obs.record_demotion("quarantine")

    # ------------------------------------------------------------------
    # Persistent profiles
    # ------------------------------------------------------------------
    def _profile_key(self, name: str) -> str | None:
        repo, cache = self.repo, self.cache
        if repo is None or cache is None:
            return None
        try:
            fn = repo._prepared(name)
        except Exception:  # noqa: BLE001 - unparseable/unknown: no profile
            return None
        return cache_key(
            function_source_text(fn), PROFILE_TAG, repo._options_fingerprint()
        )

    def _restore_profile(self, name, state, inline=False) -> None:
        key = self._profile_key(name)
        if key is None:
            return
        blob = self.cache.get_blob(key)
        if not isinstance(blob, dict):
            return
        tier = blob.get("tier")
        score = float(blob.get("hotness", 0.0))
        signature = blob.get("signature")
        self.hotness.seed(name, score)
        with self._lock:
            state.from_profile = True
            self.profile_restores += 1
        self.obs.record_profile_restore()
        self.repo.diagnostics.record(
            TIER_PROMOTE, name,
            detail=f"warm profile restored (tier {tier}, "
            f"hotness {score:.1f}); re-launching the winning tier",
        )
        # Jump straight to the learned verdict: these compiles land as
        # persistent-cache hits, so the warm session pays no recompiles.
        # Only the *winning* tier is restored inline (it decides what the
        # next call serves); the jit fallback behind a spec winner can
        # land out-of-band — _landed is rank-monotonic, so a late jit
        # never downgrades the tier.
        if tier == TIER_SPEC:
            self._begin(name, state, TIER_SPEC, None, inline=inline)
            if signature is not None:
                self._begin(name, state, TIER_JIT, signature)
        elif tier == TIER_JIT and signature is not None:
            self._begin(name, state, TIER_JIT, signature, inline=inline)

    def save(self) -> int:
        """Persist hotness + winning-tier verdicts; returns blobs written."""
        if self.cache is None or self.repo is None:
            return 0
        with self._lock:
            items = list(self._states.items())
        saved = 0
        for name, state in items:
            if (
                state.suppressed
                or state.pinned
                or state.tier == TIER_INTERPRETER
            ):
                continue
            key = self._profile_key(name)
            if key is None:
                continue
            payload = {
                "tier": state.tier,
                "hotness": self.hotness.score(name),
                "signature": state.signature,
                "saved_at": time.time(),
            }
            if self.cache.put_blob(key, payload):
                saved += 1
        self.profiles_saved = saved
        return saved

    # ------------------------------------------------------------------
    # Introspection (MajicSession.summary())
    # ------------------------------------------------------------------
    def tier_of(self, name: str) -> str:
        with self._lock:
            state = self._states.get(name)
            if state is None or state.suppressed:
                return TIER_INTERPRETER
            return state.tier

    def report(self) -> dict:
        with self._lock:
            tiers = {
                name: (
                    TIER_INTERPRETER if state.suppressed else state.tier
                )
                for name, state in self._states.items()
            }
            restored = sum(
                1 for state in self._states.values() if state.from_profile
            )
        counts: dict[str, int] = {}
        for tier in tiers.values():
            counts[tier] = counts.get(tier, 0) + 1
        return {
            "functions": tiers,
            "counts": counts,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "profile_restores": restored,
            "kernels_tracked": len(self.kernel_hotness),
        }
