"""Profile-guided adaptive tiering (``MajicSession(adaptive=True)``).

The unified hotness substrate (:class:`HotnessCounter`, shared by the
function-tier controller and the native kernel tier) plus the online
:class:`TierController` that promotes hot functions up the ladder
interpreter → JIT → optimizing srcgen in the background, demotes measured
regressions, and persists learned profiles so warm sessions skip the
warmup ramp.
"""

from repro.tiering.controller import (
    LADDER,
    PROFILE_TAG,
    TierController,
    TieringPolicy,
)
from repro.tiering.hotness import HotnessCounter

__all__ = [
    "HotnessCounter",
    "LADDER",
    "PROFILE_TAG",
    "TierController",
    "TieringPolicy",
]
