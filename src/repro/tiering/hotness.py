"""Shared hotness substrate for adaptive tiering.

A :class:`HotnessCounter` tracks a per-key activity score.  Every call site
that wants to measure "how hot is this function/kernel?" records into one of
these counters instead of keeping a private dict (the native engine's old
ad-hoc counter lived in ``native/engine.py``).  Scores decay deterministically:
after every ``decay_interval`` recorded observations *all* scores are halved
(multiplied by ``decay_factor``), so a function that was hot an hour ago but
has gone quiet cools off and will not be promoted on stale evidence.

The decay schedule is driven by the observation count, not wall-clock time,
which keeps the counter fully deterministic — the same call sequence always
produces the same scores, which the controller tests rely on.
"""

from __future__ import annotations

import threading


class HotnessCounter:
    """Thread-safe per-key hotness scores with deterministic decay."""

    def __init__(self, decay_interval: int = 512, decay_factor: float = 0.5) -> None:
        if decay_interval < 1:
            raise ValueError("decay_interval must be >= 1")
        if not (0.0 <= decay_factor <= 1.0):
            raise ValueError("decay_factor must be in [0, 1]")
        self.decay_interval = int(decay_interval)
        self.decay_factor = float(decay_factor)
        self._scores: dict[str, float] = {}
        self._observations = 0
        self._lock = threading.Lock()

    def record(self, key: str, weight: float = 1.0) -> float:
        """Record one observation of *key* and return its new score."""
        with self._lock:
            self._observations += 1
            if self._observations % self.decay_interval == 0:
                self._decay_locked()
            score = self._scores.get(key, 0.0) + weight
            self._scores[key] = score
            return score

    def score(self, key: str) -> float:
        with self._lock:
            return self._scores.get(key, 0.0)

    def seed(self, key: str, score: float) -> None:
        """Pre-load a score (used when restoring a persisted profile)."""
        with self._lock:
            if score > self._scores.get(key, 0.0):
                self._scores[key] = float(score)

    def forget(self, key: str) -> None:
        with self._lock:
            self._scores.pop(key, None)

    def _decay_locked(self) -> None:
        factor = self.decay_factor
        if factor == 0.0:
            self._scores.clear()
            return
        cooled = []
        for key, score in self._scores.items():
            score *= factor
            if score < 1e-3:
                cooled.append(key)
            else:
                self._scores[key] = score
        for key in cooled:
            del self._scores[key]

    @property
    def observations(self) -> int:
        with self._lock:
            return self._observations

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._scores)

    def restore(self, scores: dict[str, float]) -> None:
        with self._lock:
            for key, score in scores.items():
                if score > self._scores.get(key, 0.0):
                    self._scores[key] = float(score)

    def reset(self) -> None:
        with self._lock:
            self._scores.clear()
            self._observations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._scores)
