"""Directory snooping.

The repository "compiles code on its own, ahead of time, by snooping the
source code directories" — watching ``.m`` files, tracking modification
times, and reporting new/changed/removed sources so the repository can
(re)compile them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse


@dataclass
class SnoopedFile:
    path: Path
    mtime: float
    program: ast.Program


@dataclass
class SnoopReport:
    """Changes observed in one scan."""

    added: list[str] = field(default_factory=list)
    changed: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)

    @property
    def any(self) -> bool:
        return bool(self.added or self.changed or self.removed)


class DirectorySnoop:
    """Watches directories of ``.m`` files."""

    def __init__(self):
        self.paths: list[Path] = []
        self.files: dict[Path, SnoopedFile] = {}

    def add_path(self, directory) -> None:
        path = Path(directory)
        if path not in self.paths:
            self.paths.append(path)

    # ------------------------------------------------------------------
    def scan(self) -> SnoopReport:
        """Rescan all watched directories; parse new/changed files."""
        report = SnoopReport()
        seen: set[Path] = set()
        for directory in self.paths:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.m")):
                seen.add(path)
                mtime = path.stat().st_mtime
                known = self.files.get(path)
                if known is not None and known.mtime == mtime:
                    continue
                program = parse(path.read_text(), filename=os.fspath(path))
                self.files[path] = SnoopedFile(
                    path=path, mtime=mtime, program=program
                )
                target = report.changed if known is not None else report.added
                for fn in program.functions:
                    target.append(fn.name)
        for path in list(self.files):
            if path not in seen and any(
                path.parent == directory for directory in self.paths
            ):
                stale = self.files.pop(path)
                report.removed.extend(fn.name for fn in stale.program.functions)
        return report

    def functions(self) -> dict[str, ast.FunctionDef]:
        """All currently known function definitions, by name.

        Within a file, subfunctions are visible too; a primary function in
        a file named differently keeps its declared name (MaJIC, like
        MATLAB, trusts the declaration for repository purposes).
        """
        table: dict[str, ast.FunctionDef] = {}
        for snooped in self.files.values():
            for fn in snooped.program.functions:
                table[fn.name] = fn
        return table
