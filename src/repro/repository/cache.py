"""Disk-persistent, content-addressed cache of compiled objects.

The paper's repository "can be saved to disk and reloaded in later
sessions", which is what makes speculative compile time disappear
entirely on the second launch: the compiled code already exists, so a
warm session compiles *zero* functions.  This module supplies that
persistence layer for :class:`~repro.repository.repo.CodeRepository`.

Content addressing
------------------
An entry's key is a SHA-256 over everything that could change the
generated code:

* the **compiler version** (:data:`CACHE_FORMAT_VERSION` plus the package
  version) — a new compiler silently invalidates every old entry;
* the **prepared source text** of the function (pretty-printed *after*
  inlining, so an edit to an inlined callee changes the caller's key too);
* the **type-disambiguation signature** of the compile — the invocation
  signature for JIT compiles, the compile mode tag for speculative ones
  (a speculative compile derives its signature itself, so the mode is the
  only pre-compile discriminator);
* a fingerprint of the **codegen options** (platform/ablation knobs).

Keys never collide across sessions with different compilers, sources or
options; identical sessions deterministically share entries.

Serialization
-------------
A :class:`~repro.codegen.jitgen.CompiledObject` is pickled with its
emitted host callable stripped (functions built by ``exec`` cannot be
pickled); loading re-``exec``-utes the stored generated source to rebuild
the callable.  Loads are *paranoid*: any failure — corrupt file, stale
pickle, injected fault — is treated as a miss, recorded, and the entry
deleted, never raised into the session.

Eviction
--------
The repository's deopt/quarantine machinery calls :meth:`evict` whenever
it removes a compiled version, so a cached miscompile that crashed once
can never resurrect in a later session.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import replace
from pathlib import Path

from repro.codegen.jitgen import CompiledObject
from repro.frontend.pretty import pretty_function

#: Bumped whenever the pickle layout or keying scheme changes.
CACHE_FORMAT_VERSION = "1"

#: Default cache location when a session asks for persistence without
#: naming a directory (``MajicSession(cache_dir=True)``).
DEFAULT_CACHE_DIR = "~/.pymajic/cache"


def compiler_version() -> str:
    from repro import __version__

    return f"{__version__}+fmt{CACHE_FORMAT_VERSION}"


def options_fingerprint(jit_options, src_options) -> str:
    """A stable digest of every codegen knob that shapes emitted code."""
    return repr((jit_options, src_options))


def cache_key(source_text: str, signature: object, fingerprint: str) -> str:
    """Content address of one compile.

    ``signature`` is the type-disambiguation component: the invocation
    signature for a JIT compile, or the mode tag for a speculative one.
    """
    digest = hashlib.sha256()
    for part in (compiler_version(), source_text, str(signature), fingerprint):
        digest.update(part.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


def function_source_text(fn) -> str:
    """Canonical (pretty-printed) source of a prepared FunctionDef."""
    return pretty_function(fn)


def serialize_payload(value) -> bytes:
    """The cache's wire format for arbitrary runtime values (MxArrays,
    signatures, annotations): a plain pickle at the highest protocol."""
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize_payload(payload: bytes):
    return pickle.loads(payload)


def serialize_object(obj: CompiledObject) -> bytes:
    """Pickle a compiled object with its host callable stripped."""
    stripped = replace(obj, emitted=replace(obj.emitted, callable=None))
    # Drop the lazily built fast-accept table: it is rebuilt on demand.
    stripped.__dict__.pop("_fast_table", None)
    return serialize_payload(stripped)


def deserialize_object(payload: bytes) -> CompiledObject:
    """Unpickle and revive: re-exec the generated source for the callable."""
    obj = deserialize_payload(payload)
    namespace: dict = {}
    code = compile(obj.emitted.source, f"<cache:{obj.name}>", "exec")
    exec(code, namespace)
    obj.emitted.callable = namespace[obj.emitted.name]
    # Revive any fused kernels the emitted code references so the
    # ``rt.kernel_<hash>`` dispatch never misses in a fresh process.
    kernel_sources = getattr(obj, "kernel_sources", None)
    if kernel_sources:
        from repro.kernels.cache import KERNEL_CACHE

        for kernel, source in kernel_sources.items():
            KERNEL_CACHE.register_source(kernel, source)
    return obj


class RepositoryCache:
    """One directory of content-addressed compiled objects.

    Thread-safe: background speculation workers store entries while the
    foreground session loads them.  Writes are atomic (tempfile +
    ``os.replace``) so a crashed session never leaves a torn entry.
    """

    def __init__(self, directory: str | os.PathLike, fault_plan=None):
        self.directory = Path(os.path.expanduser(os.fspath(directory)))
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.load_failures = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    # ------------------------------------------------------------------
    def get(self, key: str) -> CompiledObject | None:
        """Load one entry; any failure is a recorded miss, never a raise."""
        path = self._path(key)
        try:
            if self.fault_plan is not None:
                self.fault_plan.check("cache.load", key[:12])
            payload = path.read_bytes()
            obj = deserialize_object(payload)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except Exception:  # noqa: BLE001 - a bad entry must act as a miss
            with self._lock:
                self.misses += 1
                self.load_failures += 1
            # A corrupt/stale/faulted entry is useless; drop it so the
            # next session does not trip over it again.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        obj.cache_key = key
        with self._lock:
            self.hits += 1
        return obj

    def put(self, key: str, obj: CompiledObject) -> bool:
        """Persist one entry atomically; failures are recorded, not raised."""
        try:
            if self.fault_plan is not None:
                self.fault_plan.check("cache.store", obj.name)
            payload = serialize_object(obj)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:  # noqa: BLE001 - persistence is best-effort
            return False
        obj.cache_key = key
        with self._lock:
            self.stores += 1
        return True

    def evict(self, key: str) -> bool:
        """Remove one entry (a quarantined crasher must not resurrect)."""
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
