"""Disk-persistent, content-addressed cache of compiled objects.

The paper's repository "can be saved to disk and reloaded in later
sessions", which is what makes speculative compile time disappear
entirely on the second launch: the compiled code already exists, so a
warm session compiles *zero* functions.  This module supplies that
persistence layer for :class:`~repro.repository.repo.CodeRepository`.

Content addressing
------------------
An entry's key is a SHA-256 over everything that could change the
generated code:

* the **compiler version** (:data:`CACHE_FORMAT_VERSION` plus the package
  version) — a new compiler silently invalidates every old entry;
* the **prepared source text** of the function (pretty-printed *after*
  inlining, so an edit to an inlined callee changes the caller's key too);
* the **type-disambiguation signature** of the compile — the invocation
  signature for JIT compiles, the compile mode tag for speculative ones
  (a speculative compile derives its signature itself, so the mode is the
  only pre-compile discriminator);
* a fingerprint of the **codegen options** (platform/ablation knobs).

Keys never collide across sessions with different compilers, sources or
options; identical sessions deterministically share entries.

Serialization
-------------
A :class:`~repro.codegen.jitgen.CompiledObject` is pickled with its
emitted host callable stripped (functions built by ``exec`` cannot be
pickled); loading re-``exec``-utes the stored generated source to rebuild
the callable.  Loads are *paranoid*: any failure — corrupt file, stale
pickle, injected fault — is treated as a miss, recorded, and the entry
deleted, never raised into the session.

Self-healing (format 2)
-----------------------
Entries are *framed*: a magic + format-version header and a SHA-256
digest of the payload precede the pickle.  A load that fails the frame
check (torn write, bit rot, version mismatch, truncation) is detected
*before* ``pickle`` ever sees attacker-shaped bytes, counted in
``corruption_detected``, and the key is **quarantined**: the file is
deleted and the key remembered so repeated lookups short-circuit to a
miss without touching disk.  A later successful :meth:`put` of the same
key — the rebuild after recompilation — lifts the quarantine.  Transient
``OSError`` faults retry with exponential backoff before giving up.

Eviction
--------
The repository's deopt/quarantine machinery calls :meth:`evict` whenever
it removes a compiled version, so a cached miscompile that crashed once
can never resurrect in a later session.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from dataclasses import replace
from pathlib import Path

from repro.codegen.jitgen import CompiledObject
from repro.faults.plan import (
    InjectedFault,
    SITE_CACHE_CORRUPT,
    SITE_CACHE_PARTIAL,
)
from repro.frontend.pretty import pretty_function

#: Bumped whenever the pickle layout or keying scheme changes.  Format 2
#: introduced the integrity frame (magic + digest header).
CACHE_FORMAT_VERSION = "2"

#: Frame header magic; the version digit follows so a stale-format entry
#: is distinguishable from garbage.
FRAME_MAGIC = b"MAJC"


class CacheCorruption(Exception):
    """An entry's bytes failed the integrity frame (never user-visible)."""

#: Default cache location when a session asks for persistence without
#: naming a directory (``MajicSession(cache_dir=True)``).
DEFAULT_CACHE_DIR = "~/.pymajic/cache"


def compiler_version() -> str:
    from repro import __version__

    return f"{__version__}+fmt{CACHE_FORMAT_VERSION}"


def options_fingerprint(jit_options, src_options) -> str:
    """A stable digest of every codegen knob that shapes emitted code."""
    return repr((jit_options, src_options))


def cache_key(source_text: str, signature: object, fingerprint: str) -> str:
    """Content address of one compile.

    ``signature`` is the type-disambiguation component: the invocation
    signature for a JIT compile, or the mode tag for a speculative one.
    """
    digest = hashlib.sha256()
    for part in (compiler_version(), source_text, str(signature), fingerprint):
        digest.update(part.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


def function_source_text(fn) -> str:
    """Canonical (pretty-printed) source of a prepared FunctionDef."""
    return pretty_function(fn)


def serialize_payload(value) -> bytes:
    """The cache's wire format for arbitrary runtime values (MxArrays,
    signatures, annotations): a plain pickle at the highest protocol."""
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize_payload(payload: bytes):
    return pickle.loads(payload)


def frame_payload(payload: bytes) -> bytes:
    """Wrap a pickle in the integrity frame:
    ``MAJC<version>\\n<sha256-hex>\\n<payload>``."""
    digest = hashlib.sha256(payload).hexdigest()
    header = FRAME_MAGIC + CACHE_FORMAT_VERSION.encode("ascii")
    return header + b"\n" + digest.encode("ascii") + b"\n" + payload


def unframe_payload(data: bytes) -> bytes:
    """Validate the frame and return the payload; raise
    :class:`CacheCorruption` on any mismatch (truncation, garbage,
    stale format, digest failure)."""
    head, sep, rest = data.partition(b"\n")
    if not sep or not head.startswith(FRAME_MAGIC):
        raise CacheCorruption("missing or mangled frame header")
    version = head[len(FRAME_MAGIC):]
    if version != CACHE_FORMAT_VERSION.encode("ascii"):
        raise CacheCorruption(
            f"stale cache format {version!r} (want {CACHE_FORMAT_VERSION!r})"
        )
    digest, sep, payload = rest.partition(b"\n")
    if not sep:
        raise CacheCorruption("truncated frame (no digest separator)")
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        raise CacheCorruption("payload digest mismatch (torn write or bit rot)")
    return payload


def serialize_object(obj: CompiledObject) -> bytes:
    """Pickle a compiled object with its host callable stripped."""
    stripped = replace(obj, emitted=replace(obj.emitted, callable=None))
    # Drop the lazily built fast-accept table: it is rebuilt on demand.
    stripped.__dict__.pop("_fast_table", None)
    return serialize_payload(stripped)


def deserialize_object(payload: bytes) -> CompiledObject:
    """Unpickle and revive: re-exec the generated source for the callable."""
    obj = deserialize_payload(payload)
    namespace: dict = {}
    code = compile(obj.emitted.source, f"<cache:{obj.name}>", "exec")
    exec(code, namespace)
    obj.emitted.callable = namespace[obj.emitted.name]
    # Revive any fused kernels the emitted code references so the
    # ``rt.kernel_<hash>`` dispatch never misses in a fresh process.
    kernel_sources = getattr(obj, "kernel_sources", None)
    if kernel_sources:
        from repro.kernels.cache import KERNEL_CACHE

        # kernel_keys arrived with the native tier; older pickles lack it
        # (revived kernels then simply stay on the Python tier).
        kernel_keys = getattr(obj, "kernel_keys", None) or {}
        for kernel, source in kernel_sources.items():
            KERNEL_CACHE.register_source(
                kernel, source, key=kernel_keys.get(kernel, "")
            )
    return obj


class RepositoryCache:
    """One directory of content-addressed compiled objects.

    Thread-safe: background speculation workers store entries while the
    foreground session loads them.  Writes are atomic (tempfile +
    ``os.replace``) so a crashed session never leaves a torn entry.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        fault_plan=None,
        io_retries: int = 3,
        io_backoff: float = 0.005,
        diagnostics=None,
    ):
        self.directory = Path(os.path.expanduser(os.fspath(directory)))
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fault_plan = fault_plan
        self.io_retries = max(0, int(io_retries))
        self.io_backoff = io_backoff
        self.diagnostics = diagnostics
        self._lock = threading.Lock()
        self._quarantined: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.load_failures = 0
        self.corruption_detected = 0
        self.io_retried = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def _diag(self, kind: str, name: str, detail: str, cause=None) -> None:
        if self.diagnostics is not None:
            try:
                self.diagnostics.record(kind, name, detail=detail, cause=cause)
            except Exception:  # noqa: BLE001 - healing must not depend on logging
                pass

    def _read_with_retry(self, path: Path, key: str) -> bytes:
        """Read entry bytes, retrying transient IO faults with backoff.

        ``FileNotFoundError`` (a plain miss) propagates immediately; any
        other ``OSError`` is presumed transient — NFS hiccup, AV scanner
        holding the file — and retried ``io_retries`` times.
        """
        attempt = 0
        while True:
            try:
                if self.fault_plan is not None:
                    # The injected transient-IO site rides the load site
                    # with BEHAVIOR_IO; a classic raise-behaviour spec on
                    # "cache.load" still models a hard load fault.
                    self.fault_plan.check("cache.load", key[:12])
                return path.read_bytes()
            except FileNotFoundError:
                raise
            except OSError as exc:
                if attempt >= self.io_retries:
                    raise
                delay = self.io_backoff * (2 ** attempt)
                attempt += 1
                with self._lock:
                    self.io_retried += 1
                from repro.repository.diagnostics import CACHE_RETRY

                self._diag(
                    CACHE_RETRY, key[:12],
                    f"transient IO fault on load; retry {attempt}/"
                    f"{self.io_retries} after {delay:.4f}s", cause=exc,
                )
                time.sleep(delay)

    def _quarantine(self, key: str, path: Path, cause) -> None:
        """Drop a corrupt entry and remember the key until it is rebuilt."""
        with self._lock:
            self.misses += 1
            self.load_failures += 1
            self.corruption_detected += 1
            self._quarantined.add(key)
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass
        from repro.repository.diagnostics import CACHE_CORRUPT

        self._diag(
            CACHE_CORRUPT, key[:12],
            "corrupt entry quarantined; will rebuild on next store",
            cause=cause,
        )

    @property
    def quarantined_keys(self) -> set[str]:
        with self._lock:
            return set(self._quarantined)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    # ------------------------------------------------------------------
    def get(self, key: str) -> CompiledObject | None:
        """Load one entry; any failure is a recorded miss, never a raise."""
        with self._lock:
            if key in self._quarantined:
                # Known-bad until rebuilt: skip the disk round trip.
                self.misses += 1
                return None
        path = self._path(key)
        try:
            data = self._read_with_retry(path, key)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except OSError:
            # Retries exhausted on a transient fault: a miss, but the
            # file itself may be fine — leave it for the next session.
            with self._lock:
                self.misses += 1
                self.load_failures += 1
            return None
        except Exception:  # noqa: BLE001 - injected hard load fault
            with self._lock:
                self.misses += 1
                self.load_failures += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        if self.fault_plan is not None:
            # Corruption model: the bytes read back are not the bytes
            # written.  Mangling happens here, after the real read, so
            # the frame check below is what detects it — same code path
            # a real torn write or bit rot would take.
            data = self.fault_plan.filter_bytes(SITE_CACHE_CORRUPT, key[:12], data)
        try:
            payload = unframe_payload(data)
            obj = deserialize_object(payload)
        except Exception as exc:  # noqa: BLE001 - corrupt entry: heal, don't raise
            self._quarantine(key, path, exc)
            return None
        obj.cache_key = key
        with self._lock:
            self.hits += 1
        return obj

    def put(self, key: str, obj: CompiledObject) -> bool:
        """Persist one entry atomically; failures are recorded, not raised."""
        try:
            if self.fault_plan is not None:
                self.fault_plan.check("cache.store", obj.name)
            framed = frame_payload(serialize_object(obj))
            if self.fault_plan is not None and self.fault_plan.fires(
                SITE_CACHE_PARTIAL, key[:12]
            ):
                # A writer that died mid-write, bypassing the atomic
                # rename: half a frame lands at the final path.  The
                # digest check catches it on the next load.
                self._path(key).write_bytes(framed[: max(1, len(framed) // 2)])
                return True
            self._write_with_retry(framed, key)
        except Exception:  # noqa: BLE001 - persistence is best-effort
            return False
        obj.cache_key = key
        with self._lock:
            self.stores += 1
            if key in self._quarantined:
                # The rebuild: a fresh compile re-persisted over a
                # quarantined key lifts the quarantine.
                self._quarantined.discard(key)
                self.rebuilds += 1
        return True

    def _write_with_retry(self, framed: bytes, key: str) -> None:
        """Atomic tempfile+rename write with transient-IO retries."""
        attempt = 0
        while True:
            try:
                fd, tmp = tempfile.mkstemp(
                    dir=self.directory, prefix=".tmp-", suffix=".pkl"
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(framed)
                    os.replace(tmp, self._path(key))
                    return
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError as exc:
                if attempt >= self.io_retries:
                    raise
                delay = self.io_backoff * (2 ** attempt)
                attempt += 1
                with self._lock:
                    self.io_retried += 1
                from repro.repository.diagnostics import CACHE_RETRY

                self._diag(
                    CACHE_RETRY, key[:12],
                    f"transient IO fault on store; retry {attempt}/"
                    f"{self.io_retries} after {delay:.4f}s", cause=exc,
                )
                time.sleep(delay)

    def evict(self, key: str) -> bool:
        """Remove one entry (a quarantined crasher must not resurrect)."""
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # Generic blobs (tiering profiles and other non-CompiledObject state)
    # ------------------------------------------------------------------
    def _blob_path(self, key: str) -> Path:
        return self.directory / f"{key}.blob"

    def get_blob(self, key: str):
        """Load an arbitrary pickled value stored with :meth:`put_blob`.

        Same integrity frame as compiled objects; any failure (missing,
        torn, corrupt) is a ``None``, never a raise — a lost profile only
        costs a warmup ramp, so it shares the cache's best-effort stance.
        """
        path = self._blob_path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            return deserialize_payload(unframe_payload(data))
        except Exception as exc:  # noqa: BLE001 - corrupt blob: drop it
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            self._diag(
                "cache_corrupt", key[:12],
                "corrupt blob entry dropped", cause=exc,
            )
            return None

    def put_blob(self, key: str, value) -> bool:
        """Persist an arbitrary picklable value atomically (best-effort)."""
        try:
            framed = frame_payload(serialize_payload(value))
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".blob"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(framed)
                os.replace(tmp, self._blob_path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:  # noqa: BLE001 - persistence is best-effort
            return False
        return True

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for pattern in ("*.pkl", "*.blob"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
