"""The code repository proper (Sections 2 and 2.2.1).

Responsibilities:

* hold the table of known user functions (from snooped directories and
  directly added sources);
* hold, per function, the list of compiled versions differing only in
  their type-signature assumptions (paper Figure 3);
* the **function locator**: given an invocation, find a compiled version
  that is *safe* (``Qi ⊑ Ti`` for every parameter) and best by the
  Manhattan-like distance; a miss triggers JIT compilation ("since this
  typically happens during program execution, where time is at a premium,
  the JIT compiler is used in this situation");
* speculative ahead-of-time compilation of everything it knows about
  (:meth:`CodeRepository.speculate_all`), whose compile time is *hidden*
  (performed before the user needs the code);
* recompilation triggers when snooped sources change.

Robustness layer (tiered execution)
-----------------------------------
Compiled code is an optimization, never a semantic requirement, so the
repository treats the interpreter as its safety net:

* **guarded deoptimization** — any non-:class:`~repro.errors.MatlabError`
  exception escaping a compiled object (a miscompile, an inference bug, a
  host ``TypeError`` in generated source) quarantines that version,
  records a deopt event and transparently re-executes the invocation
  through the interpreter; side effects of the half-run compiled call
  (random-stream draws, printed output) are rolled back first;
* **strike counter** — a function whose compiled versions keep failing is
  demoted to interpreter-only after ``max_strikes`` quarantines;
* **compile budgets** — :meth:`speculate_all` and :meth:`jit_compile`
  accept wall-clock budgets that skip-and-record instead of raising, so
  one pathological function cannot stall the "hidden" ahead-of-time pass;
* **diagnostics** — every degradation lands in :attr:`diagnostics` as a
  structured event.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.analysis.disambiguate import Disambiguator
from repro.errors import CodegenError, MatlabError, RepositoryError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.codegen.inline import Inliner
from repro.codegen.jitgen import CompiledObject, JitCompiler, JitOptions
from repro.codegen.runtime_support import RuntimeSupport
from repro.codegen.srcgen import SourceCompiler, SrcOptions
from repro.inference.speculation import Speculator
from repro.interp.interpreter import Interpreter
from repro.faults.plan import SITE_HANG, SITE_OOM
from repro.obs import DISABLED as DISABLED_OBS
from repro.obs import TIER_INTERPRETER
from repro.resilience import (
    DEFAULT_POLICY,
    ExecutionGuard,
    ResiliencePolicy,
    SandboxExecutor,
)
from repro.runtime.builtins import GLOBAL_RANDOM
from repro.runtime.display import OutputSink
from repro.runtime.mxarray import MxArray
from repro.repository.depgraph import DependencyGraph
from repro.repository.cache import cache_key, function_source_text, options_fingerprint
from repro.repository.diagnostics import (
    BUDGET_SKIP,
    CACHE_EVICT,
    CACHE_HIT,
    CACHE_LOAD,
    CACHE_STORE,
    COMPILE_FAILURE,
    DEOPT,
    QUARANTINE,
    SANDBOX_FAILURE,
    SANDBOX_TRIAL,
    DiagnosticsLog,
)
from repro.repository.snoop import DirectorySnoop
from repro.typesys.signature import Signature


@dataclass
class RepositoryStats:
    lookups: int = 0
    hits: int = 0
    jit_compiles: int = 0
    speculative_compiles: int = 0
    fallback_interpreted: int = 0
    jit_compile_seconds: float = 0.0
    speculative_compile_seconds: float = 0.0
    # Robustness counters (mirrored by the diagnostics event log).
    deopts: int = 0
    quarantines: int = 0
    budget_skips: int = 0
    compile_failures: int = 0
    # Responsiveness counters (background speculation + persistent cache).
    background_compiles: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    # Observability: executions by tier (summary()/profiler cross-checks).
    calls_jit: int = 0
    calls_spec: int = 0
    calls_interpreted: int = 0


@dataclass(frozen=True)
class CompileBudget:
    """Wall-clock compile budgets (seconds; ``None`` = unlimited).

    ``per_pass`` bounds a whole :meth:`CodeRepository.speculate_all` sweep;
    ``per_function`` bounds one compile.  Compilation cannot be preempted
    mid-function, so both are enforced *between* compiles: a pass stops
    before the first function that would start past its budget (± one
    function), and a function whose compile overruns ``per_function`` is
    flagged so future speculative passes skip it up front.
    """

    per_pass: float | None = None
    per_function: float | None = None


def _as_budget(budget) -> CompileBudget:
    if budget is None:
        return CompileBudget()
    if isinstance(budget, CompileBudget):
        return budget
    return CompileBudget(per_pass=float(budget))


class SpeculationReport(list):
    """Names compiled by a speculative pass (list subclass for backward
    compatibility) plus what the pass *didn't* do and why."""

    def __init__(self):
        super().__init__()
        self.skipped: list[tuple[str, str]] = []  # (function, reason)
        self.failed: list[str] = []
        self.elapsed: float = 0.0


class CodeRepository:
    """Database of compiled code plus the machinery around it."""

    def __init__(
        self,
        jit_options: JitOptions | None = None,
        src_options: SrcOptions | None = None,
        sink: OutputSink | None = None,
        inline_enabled: bool = True,
        compile_budget: CompileBudget | None = None,
        max_strikes: int = 3,
        fault_plan=None,
        cache=None,
        obs=None,
        resilience: ResiliencePolicy | None = None,
        diagnostics_capacity: int | None = None,
        native=None,
    ):
        self.jit_options = jit_options or JitOptions()
        self.src_options = src_options or SrcOptions()
        self.sink = sink if sink is not None else OutputSink()
        self.inline_enabled = inline_enabled
        self.compile_budget = compile_budget or CompileBudget()
        self.max_strikes = max_strikes
        self.fault_plan = fault_plan
        # Observability switchboard (tracing + metrics; a shared null
        # facade when the session didn't ask for either).
        self.obs = obs if obs is not None else DISABLED_OBS
        # Optional disk persistence (a RepositoryCache); compiled objects
        # found there skip compilation entirely in warm sessions.
        self.cache = cache
        self.snoop = DirectorySnoop()
        self.depgraph = DependencyGraph()
        self.stats = RepositoryStats()
        self.diagnostics = DiagnosticsLog(
            capacity=diagnostics_capacity
            if diagnostics_capacity is not None else 10_000
        )
        # Robustness events mirror into the metrics registry and the
        # trace stream for free (deopts, quarantines, budget skips, ...).
        self.obs.bind_diagnostics(self.diagnostics)
        # Supervision tier (repro.resilience): watchdog deadlines around
        # compiles/runs, and optionally a sandbox for first runs.
        self.resilience = resilience if resilience is not None else DEFAULT_POLICY
        self.guard = ExecutionGuard(
            compile_deadline=self.resilience.compile_deadline,
            run_deadline=self.resilience.run_deadline,
            diagnostics=self.diagnostics,
            obs=self.obs,
        )
        self.sandbox = (
            SandboxExecutor(
                timeout=self.resilience.sandbox_timeout,
                fault_plan=fault_plan,
                diagnostics=self.diagnostics,
                obs=self.obs,
            )
            if self.resilience.sandbox else None
        )
        # Precomputed hot-path switches: the common no-supervision call
        # pays two attribute checks, nothing more.
        self._run_guard_enabled = self.resilience.run_deadline is not None
        # In-process chaos probes (hang/oom on the guarded run path); when
        # the sandbox tier is on, first runs check these sites in the
        # child instead, so the in-process probe stays off.
        self._chaos_run_checks = (
            fault_plan is not None
            and self.sandbox is None
            and any(
                spec.site in (SITE_HANG, SITE_OOM) for spec in fault_plan.specs
            )
        )
        # The cache heals itself; give it the session's flight recorder.
        if cache is not None and getattr(cache, "diagnostics", None) is None:
            cache.diagnostics = self.diagnostics
        # name -> FunctionDef (raw, as parsed)
        self._functions: dict[str, ast.FunctionDef] = {}
        # name -> inlined FunctionDef cache
        self._inlined: dict[str, ast.FunctionDef] = {}
        # name -> list of compiled versions
        self._objects: dict[str, list[CompiledObject]] = {}
        # functions that failed to compile (fall back to interpretation)
        self._uncompilable: set[str] = set()
        # (function, mode, PhaseTimes) for every compile this repository ran
        self.compile_log: list[tuple[str, str, object]] = []
        # Hot-call cache: last object that served each function name.
        self._fast_cache: dict[str, CompiledObject] = {}
        # Adaptive-tiering controller (repro.tiering); attached by
        # TierController.bind() after construction so neither module
        # imports the other.  When set, execute() routes through the
        # observed adaptive path instead of hot-path JIT compilation.
        self.tiering = None
        # Deopt strike counts per function (quarantine at max_strikes).
        self._strikes: dict[str, int] = {}
        # Functions whose compile overran the per-function budget.
        self._budget_flagged: set[str] = set()
        # Thread safety: background speculation workers mutate the same
        # tables the foreground session reads.  ``_lock`` (reentrant)
        # guards every shared dict/set; compilation itself runs outside it
        # under a per-function lock (prepared ASTs are per-name clones, so
        # distinct names can compile in parallel, but two compiles of one
        # name share AST nodes the disambiguator annotates in place).
        self._lock = threading.RLock()
        self._compile_locks: dict[str, threading.Lock] = {}
        # Monotonic per-name redefinition counters: an in-flight background
        # compile captures the generation at enqueue time and its result is
        # dropped if the function was redefined (or removed) meanwhile.
        self._generations: dict[str, int] = {}
        # The native tier (repro.native): shared by both consumers so a
        # kernel promoted on the interpreter path serves JIT code too.
        self.native = native
        self._interpreter = Interpreter(
            function_lookup=self.lookup_function,
            sink=self.sink,
            call_dispatcher=self._interp_dispatch,
            fusion=self.jit_options.fusion,
            native=native,
        )
        self._rt = RuntimeSupport(
            call_user=self._call_user, sink=self.sink, fault_plan=fault_plan,
            obs=self.obs, native=native,
        )

    # ------------------------------------------------------------------
    # Source management
    # ------------------------------------------------------------------
    def add_source(self, source: str | ast.Program) -> list[str]:
        """Register function definitions from source text or a parsed
        program; returns the names registered."""
        if isinstance(source, str):
            with self.obs.tracer.span("parse", "parse"):
                program = parse(source)
        else:
            program = source
        if program.is_script:
            raise RepositoryError("scripts cannot be added to the repository")
        names = []
        for fn in program.functions:
            self._register(fn)
            names.append(fn.name)
        return names

    def add_path(self, directory) -> list[str]:
        """Snoop a directory of .m files; returns newly seen functions."""
        self.snoop.add_path(directory)
        return self.rescan()

    def rescan(self) -> list[str]:
        """Re-scan snooped directories, invalidating changed functions."""
        report = self.snoop.scan()
        table = self.snoop.functions()
        touched: list[str] = []
        for name in report.added + report.changed:
            fn = table.get(name)
            if fn is not None:
                self._register(fn)
                touched.append(name)
        for name in report.removed:
            if name not in table:
                self._unregister(name)
        return touched

    def _register(self, fn: ast.FunctionDef) -> None:
        with self._lock:
            self._functions[fn.name] = fn
            # Invalidate the function itself and everything that inlined
            # it; each gets a new generation so in-flight background
            # compiles of the old source are dropped at store time.
            for stale in self.depgraph.dependents_of(fn.name):
                self._purge_compiled_state(stale)

    def _unregister(self, name: str) -> None:
        with self._lock:
            self._functions.pop(name, None)
            # Same purge as _register: a removed function must not keep
            # serving a stale cached object, stay wrongly blacklisted, or
            # carry strike and budget state over to an unrelated future
            # function of the same name — and neither may anything that
            # inlined it.
            for stale in self.depgraph.dependents_of(name):
                self._purge_compiled_state(stale)
            self.depgraph.drop(name)

    def _purge_compiled_state(self, name: str) -> None:
        """Forget every compilation artifact and verdict about ``name``
        (its source changed or vanished; old conclusions no longer hold)."""
        with self._lock:
            self._objects.pop(name, None)
            self._inlined.pop(name, None)
            self._uncompilable.discard(name)
            self._fast_cache.pop(name, None)
            self._strikes.pop(name, None)
            self._budget_flagged.discard(name)
            self._generations[name] = self._generations.get(name, 0) + 1

    def generation_of(self, name: str) -> int:
        """Redefinition counter for ``name`` (background-compile tokens)."""
        with self._lock:
            return self._generations.get(name, 0)

    def knows(self, name: str) -> bool:
        return name in self._functions

    def function_names(self) -> list[str]:
        with self._lock:
            return sorted(self._functions)

    def lookup_function(self, name: str) -> ast.FunctionDef | None:
        return self._functions.get(name)

    # ------------------------------------------------------------------
    # Inlining pass (Figure 1, pass 2)
    # ------------------------------------------------------------------
    def _prepared(self, name: str) -> ast.FunctionDef:
        with self._lock:
            fn = self._functions.get(name)
            if fn is None:
                raise RepositoryError(f"unknown function '{name}'")
            if not self.inline_enabled:
                return fn
            cached = self._inlined.get(name)
            if cached is not None:
                return cached
        # Inlining (a deep copy + transform) runs outside the state lock;
        # a concurrent redefinition simply wins the re-check below.
        inliner = Inliner(self.lookup_function)
        prepared = inliner.run(fn)
        with self._lock:
            if self._functions.get(name) is not fn:
                # Redefined mid-prepare: recurse onto the fresh source.
                return self._prepared(name)
            self._inlined[name] = prepared
            used = (
                inliner.inlined_names
                | (_called_names(prepared) & set(self._functions))
            )
            self.depgraph.set_dependencies(name, used - {name})
        return prepared

    def _compile_lock(self, name: str) -> threading.Lock:
        """Per-name compile lock: one compile of a given function at a
        time (its prepared AST is annotated in place by disambiguation),
        while distinct functions compile in parallel."""
        with self._lock:
            lock = self._compile_locks.get(name)
            if lock is None:
                lock = self._compile_locks[name] = threading.Lock()
            return lock

    # ------------------------------------------------------------------
    # The function locator (Section 2.2.1)
    # ------------------------------------------------------------------
    def locate(self, invocation) -> CompiledObject | None:
        """Find the best safe compiled version for an invocation."""
        self.stats.lookups += 1
        with self._lock:
            versions = list(self._objects.get(invocation.name, ()))
        if not versions:
            return None
        inv_sig = invocation.signature
        best: CompiledObject | None = None
        best_distance = float("inf")
        for version in versions:
            if len(version.signature) < len(invocation.args):
                continue
            padded = self._pad_signature(inv_sig, len(version.signature))
            if not version.signature.accepts(padded):
                continue
            distance = version.signature.distance(padded)
            if distance < best_distance:
                best, best_distance = version, distance
        if best is not None:
            self.stats.hits += 1
        return best

    @staticmethod
    def _pad_signature(signature: Signature, arity: int) -> Signature:
        from repro.typesys.mtype import MType

        if len(signature) == arity:
            return signature
        return Signature.of(
            list(signature.types)
            + [MType.bottom() for _ in range(arity - len(signature))]
        )

    def store(self, obj: CompiledObject) -> None:
        """Add (or replace) a compiled version in the database.

        A new object replaces an existing one with the identical signature
        ("the generated code can later be recompiled and replaced in the
        repository using a better compiler").
        """
        with self._lock:
            versions = self._objects.setdefault(obj.name, [])
            for index, existing in enumerate(versions):
                if existing.signature == obj.signature:
                    versions[index] = obj
                    # The hot-call cache must not keep serving the replaced
                    # object; swap it for the better recompile.
                    if self._fast_cache.get(obj.name) is existing:
                        self._fast_cache[obj.name] = obj
                    return
            versions.append(obj)

    def versions_of(self, name: str) -> list[CompiledObject]:
        with self._lock:
            return list(self._objects.get(name, ()))

    # ------------------------------------------------------------------
    # Persistent cache plumbing
    # ------------------------------------------------------------------
    def _options_fingerprint(self) -> str:
        fingerprint = getattr(self, "_options_fp", None)
        if fingerprint is None:
            fingerprint = options_fingerprint(self.jit_options, self.src_options)
            self._options_fp = fingerprint
        return fingerprint

    def _cache_key(self, fn: ast.FunctionDef, signature_tag) -> str | None:
        """Content address of one compile (None without a cache).

        ``signature_tag`` disambiguates versions of one source: the
        invocation signature for JIT compiles, the mode tag for
        speculative ones (whose signature is derived by the speculator).
        """
        if self.cache is None:
            return None
        return cache_key(
            function_source_text(fn), signature_tag, self._options_fingerprint()
        )

    def _cache_probe(self, name: str, key: str | None) -> CompiledObject | None:
        """Look one compile up in the disk cache; validate before trusting."""
        if key is None:
            return None
        with self.obs.tracer.span("cache.load", "cache", function=name):
            obj = self.cache.get(key)
        if obj is None:
            self.obs.record_cache("miss")
            return None
        if obj.name != name:
            # Hash collision or tampering: refuse the entry.
            self.obs.record_cache("miss")
            self.cache.evict(key)
            self.diagnostics.record(
                CACHE_LOAD, name,
                detail=f"rejected cache entry {key[:12]} naming '{obj.name}'",
            )
            return None
        self.obs.record_cache("hit")
        self.diagnostics.record(
            CACHE_LOAD, name,
            detail=f"loaded {obj.mode} version from cache entry {key[:12]}",
            signature=obj.signature,
        )
        return obj

    def _cache_store(self, key: str | None, obj: CompiledObject) -> None:
        if key is None:
            return
        with self.obs.tracer.span("cache.store", "cache", function=obj.name):
            stored = self.cache.put(key, obj)
        if stored:
            with self._lock:
                self.stats.cache_stores += 1
            self.diagnostics.record(
                CACHE_STORE, obj.name,
                detail=f"persisted {obj.mode} version as cache entry {key[:12]}",
                signature=obj.signature,
            )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def jit_compile(
        self,
        name: str,
        signature: Signature,
        budget: float | None = None,
    ) -> CompiledObject:
        """Compile one function for one signature with the JIT pipeline.

        ``budget`` (default: the repository-wide per-function budget) is a
        wall-clock target, not a hard deadline: the compile it bounds has
        already run by the time it can be measured, so an overrun stores
        and returns the object (this call needs it) but records the event
        and flags the function so speculative passes skip it up front.
        """
        with self.obs.tracer.span("jit_compile", "compile", function=name):
            return self._jit_compile(name, signature, budget)

    def _jit_compile(
        self,
        name: str,
        signature: Signature,
        budget: float | None = None,
    ) -> CompiledObject:
        fn = self._prepared(name)
        with self._compile_lock(name):
            if self._has_dynamic_calls(fn) or self._range_only_miss(name, signature):
                # Two situations call for range widening (paper Figure 3:
                # poly1_sig1 with limits(x) = top exists alongside the
                # constant-specialized sig0):
                #  * remaining dynamic calls (recursion past the inlining
                #    depth) would recompile for every distinct constant;
                #  * a repository miss whose only difference from an existing
                #    version is the value ranges — the same call site is being
                #    fed varying values, so stop specializing on them.
                signature = Signature.of(t.widen_range() for t in signature)
                existing = self._find_version(name, signature)
                if existing is not None:
                    return existing
            key = self._cache_key(fn, signature)
            cached = self._cache_probe(name, key)
            if cached is not None:
                with self._lock:
                    self.stats.cache_hits += 1
                self.diagnostics.record(
                    CACHE_HIT, name,
                    detail="jit compile served from the persistent cache",
                    signature=cached.signature,
                )
                self.store(cached)
                return cached
            compiler = JitCompiler(
                self.jit_options,
                fault_plan=self.fault_plan,
                tracer=self.obs.tracer,
                obs=self.obs,
            )
            start = time.perf_counter()
            with self.guard.compile_guard(name):
                obj = compiler.compile(
                    fn, signature, mode="jit", is_user_function=self.knows
                )
            duration = time.perf_counter() - start
            with self._lock:
                self.stats.jit_compiles += 1
                self.stats.jit_compile_seconds += duration
                self.compile_log.append((name, "jit", obj.phase_times))
            self.obs.record_compile("jit", obj.phase_times)
            self.store(obj)
            self._cache_store(key, obj)
        if budget is None:
            budget = self.compile_budget.per_function
        if budget is not None and duration > budget:
            with self._lock:
                self._budget_flagged.add(name)
                self.stats.budget_skips += 1
            self.diagnostics.record(
                BUDGET_SKIP, name,
                detail=f"jit compile took {duration:.4f}s "
                f"(budget {budget:.4f}s); flagged for speculative skips",
                signature=signature,
            )
        return obj

    def speculate(
        self, name: str, generation: int | None = None
    ) -> CompiledObject | None:
        """Speculatively compile one function ahead of time.

        ``generation`` is the invalidation token background workers pass:
        when it no longer matches the function's current generation (the
        source was redefined or removed mid-flight), the result is
        discarded instead of stored.
        """
        if generation is not None and self.generation_of(name) != generation:
            return None
        with self.obs.tracer.span("speculate", "compile", function=name):
            return self._speculate(name, generation)

    def _speculate(
        self, name: str, generation: int | None = None
    ) -> CompiledObject | None:
        fn = self._prepared(name)
        key = self._cache_key(fn, "spec")
        with self._compile_lock(name):
            cached = self._cache_probe(name, key)
            if cached is not None:
                with self._lock:
                    if (
                        generation is not None
                        and self._generations.get(name, 0) != generation
                    ):
                        return None
                    self.stats.cache_hits += 1
                self.diagnostics.record(
                    CACHE_HIT, name,
                    detail="speculative compile served from the persistent cache",
                    signature=cached.signature,
                )
                self.store(cached)
                return cached
            tracer = self.obs.tracer
            try:
                # One deadline covers the whole speculative pipeline: its
                # analysis phases (disambiguation, inference) can hang
                # just as hard as codegen.
                with self.guard.compile_guard(name):
                    phase_start = time.perf_counter()
                    with tracer.span("disambiguation", "disambiguation",
                                     function=name, mode="spec"):
                        disambiguation = Disambiguator(self.knows).run_function(fn)
                    disamb_elapsed = time.perf_counter() - phase_start
                    phase_start = time.perf_counter()
                    with tracer.span("type_inference", "type_inference",
                                     function=name, mode="spec"):
                        speculator = Speculator(options=self.src_options.inference)
                        result = speculator.speculate(fn, disambiguation)
                    inference_elapsed = time.perf_counter() - phase_start
                    compiler = SourceCompiler(
                        self.src_options, fault_plan=self.fault_plan,
                        tracer=tracer
                    )
                    start = time.perf_counter()
                    obj = compiler.compile(
                        fn,
                        result.signature,
                        disambiguation=disambiguation,
                        annotations=result.annotations,
                        mode="spec",
                    )
                    elapsed = time.perf_counter() - start
            except CodegenError as exc:
                # Expected "cannot compile this construct": interpreter-only.
                with self._lock:
                    self._uncompilable.add(name)
                self._record_compile_failure(name, "spec", exc)
                return None
            except Exception as exc:  # noqa: BLE001 - the AOT pass must survive
                # Unexpected compiler crash (inference bug, injected fault):
                # record it, but leave the function eligible for the JIT — the
                # concrete call-site types may well compile fine.
                self._record_compile_failure(name, "spec", exc)
                return None
            # Credit the repository-side analysis phases (the compiler
            # received them precomputed, so its own clocks read zero).
            obj.phase_times.disambiguation += disamb_elapsed
            obj.phase_times.type_inference += inference_elapsed
            with self._lock:
                if (
                    generation is not None
                    and self._generations.get(name, 0) != generation
                ):
                    # Redefined while compiling: the object describes dead
                    # source; drop it (the new source gets its own pass).
                    return None
                self.stats.speculative_compiles += 1
                self.stats.speculative_compile_seconds += elapsed
                self.compile_log.append((name, "spec", obj.phase_times))
                self.store(obj)
            self.obs.record_compile("spec", obj.phase_times)
            self._cache_store(key, obj)
        return obj

    def speculate_all(
        self, budget: float | CompileBudget | None = None
    ) -> SpeculationReport:
        """Ahead-of-time pass over every known function.

        ``budget`` (seconds, or a :class:`CompileBudget`) keeps the pass
        "hidden": once the per-pass budget is spent the remaining
        functions are skipped and recorded, never raised; a per-function
        budget discards (and flags) any single compile that overran it.
        Returns a list of the compiled names; the
        :class:`SpeculationReport` subclass also carries ``skipped``,
        ``failed`` and ``elapsed``.
        """
        with self.obs.tracer.span("speculate_all", "speculation"):
            return self._speculate_all(budget)

    def _speculate_all(
        self, budget: float | CompileBudget | None = None
    ) -> SpeculationReport:
        budget = _as_budget(budget) if budget is not None else self.compile_budget
        report = SpeculationReport()
        names = self.function_names()
        start = time.perf_counter()
        for position, name in enumerate(names):
            elapsed = time.perf_counter() - start
            if budget.per_pass is not None and elapsed >= budget.per_pass:
                for skipped in names[position:]:
                    report.skipped.append((skipped, "pass-budget"))
                    self.stats.budget_skips += 1
                    self.diagnostics.record(
                        BUDGET_SKIP, skipped,
                        detail=f"speculative pass budget "
                        f"({budget.per_pass:.4f}s) exhausted "
                        f"after {elapsed:.4f}s",
                    )
                break
            if name in self._budget_flagged:
                report.skipped.append((name, "function-budget"))
                self.stats.budget_skips += 1
                self.diagnostics.record(
                    BUDGET_SKIP, name,
                    detail="previously flagged as over the per-function "
                    "compile budget",
                )
                continue
            fn_start = time.perf_counter()
            obj = self.speculate(name)
            fn_elapsed = time.perf_counter() - fn_start
            if obj is None:
                report.failed.append(name)
                continue
            if (
                budget.per_function is not None
                and fn_elapsed > budget.per_function
            ):
                # The compile finished but proved pathological: drop the
                # object and flag the function so the pass stays cheap.
                self._remove_version(name, obj)
                self._budget_flagged.add(name)
                report.skipped.append((name, "function-budget"))
                self.stats.budget_skips += 1
                self.diagnostics.record(
                    BUDGET_SKIP, name,
                    detail=f"speculative compile took {fn_elapsed:.4f}s "
                    f"(budget {budget.per_function:.4f}s); discarded",
                    signature=obj.signature,
                )
                continue
            report.append(name)
        report.elapsed = time.perf_counter() - start
        return report

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, invocation) -> list[MxArray]:
        """Serve one invocation: locate, else JIT-compile, then run.

        Every compiled execution is *guarded*: an unexpected (non-MATLAB)
        exception deoptimizes — the failing version is quarantined and the
        invocation transparently re-executes through the interpreter.
        MATLAB-level errors (``error(...)``, subscript violations) are the
        program's own behaviour and propagate unchanged.
        """
        name = invocation.name
        if self.tiering is not None:
            return self._execute_adaptive(invocation)
        cached = self._fast_cache.get(name)
        if cached is not None and cached.fast_accepts(invocation.args):
            return self._guarded_invoke(invocation, cached)
        if not self.knows(name):
            raise RepositoryError(f"unknown function '{name}'")
        if name in self._uncompilable:
            return self._interpret(invocation)
        obj = self.locate(invocation)
        if obj is None:
            if name in self._budget_flagged:
                # Over-budget function with no usable version: stay in the
                # interpreter rather than stall this call on a compile
                # known to be pathological.
                self.stats.budget_skips += 1
                self.diagnostics.record(
                    BUDGET_SKIP, name,
                    detail="jit skipped: function over compile budget",
                )
                return self._interpret(invocation)
            try:
                obj = self.jit_compile(name, invocation.signature)
            except MatlabError as exc:
                # Expected compile rejection (unsupported construct).
                self._uncompilable.add(name)
                self._record_compile_failure(
                    name, "jit", exc, invocation.signature
                )
                return self._interpret(invocation)
            except Exception as exc:  # noqa: BLE001 - compiler crash
                # Unexpected compiler crash: interpret now, count a
                # strike (a deterministic crasher gets quarantined, a
                # transient fault gets retried on a later call).
                self._record_compile_failure(
                    name, "jit", exc, invocation.signature
                )
                self._note_strike(name)
                return self._interpret(invocation)
        self._fast_cache[name] = obj
        return self._guarded_invoke(invocation, obj)

    def _execute_adaptive(self, invocation) -> list[MxArray]:
        """Serve one invocation under the adaptive tier controller.

        Unlike the static path, a repository miss never JIT-compiles on
        the hot path: the call is interpreted *now* (responsiveness) and
        the controller promotes the function out-of-band once it proves
        hot.  Every served call is observed — tier plus wall time — which
        is the controller's entire input signal.
        """
        controller = self.tiering
        name = invocation.name
        obj = None
        if not controller.suppressed(name):
            cached = self._fast_cache.get(name)
            if cached is not None and cached.fast_accepts(invocation.args):
                obj = cached
            else:
                if not self.knows(name):
                    raise RepositoryError(f"unknown function '{name}'")
                # First dispatch restores any persisted profile inline, so
                # a warm session's first call already runs at its learned
                # tier (the restore compiles are disk-cache hits).
                controller.prepare(name)
                if name not in self._uncompilable:
                    obj = self.locate(invocation)
                    if obj is not None:
                        self._fast_cache[name] = obj
        elif not self.knows(name):
            raise RepositoryError(f"unknown function '{name}'")
        deopts_before = self.stats.deopts
        start = time.perf_counter()
        if obj is not None:
            tier = obj.mode
            results = self._guarded_invoke(invocation, obj)
            if self.stats.deopts != deopts_before:
                # The compiled run failed mid-call and the interpreter
                # served the answer; attribute the observation honestly.
                tier = TIER_INTERPRETER
        else:
            tier = TIER_INTERPRETER
            results = self._interpret(invocation)
        controller.observe(invocation, tier, time.perf_counter() - start)
        return results

    # ------------------------------------------------------------------
    # Guarded deoptimization
    # ------------------------------------------------------------------
    def _guarded_invoke(self, invocation, obj: CompiledObject) -> list[MxArray]:
        """Run one compiled object with the deopt safety net armed."""
        tier = obj.mode
        if tier == "spec":
            self.stats.calls_spec += 1
        else:
            self.stats.calls_jit += 1
        self.obs.record_call(tier)
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._guarded_invoke_raw(invocation, obj)
        with tracer.span(invocation.name, "execution", tier=tier):
            return self._guarded_invoke_raw(invocation, obj)

    def _guarded_invoke_raw(
        self, invocation, obj: CompiledObject
    ) -> list[MxArray]:
        rng_state = GLOBAL_RANDOM.snapshot()
        sink_mark = self.sink.mark()
        try:
            if self.sandbox is not None and not getattr(
                obj, "sandbox_promoted", False
            ):
                return self._sandbox_trial(invocation, obj, rng_state, sink_mark)
            if self._run_guard_enabled or self._chaos_run_checks:
                return self._supervised_invoke(invocation, obj)
            return obj.invoke(invocation.args, invocation.nargout, self._rt)
        except MatlabError:
            raise
        except Exception as exc:  # noqa: BLE001 - this is the safety net
            return self._deoptimize(invocation, obj, exc, rng_state, sink_mark)

    def _supervised_invoke(self, invocation, obj: CompiledObject):
        """One compiled run under the watchdog deadline.

        The chaos probes live *inside* the guard: an injected hang must be
        cancelled by the watchdog exactly like a miscompiled infinite
        loop.  A fired :class:`~repro.resilience.DeadlineExceeded` lands
        in the caller's ``except Exception`` net and deoptimizes.
        """
        name = invocation.name
        with self.guard.run_guard(name):
            if self._chaos_run_checks:
                plan = self.fault_plan
                plan.check(SITE_HANG, name)
                plan.check(SITE_OOM, name)
            return obj.invoke(invocation.args, invocation.nargout, self._rt)

    def _sandbox_trial(
        self, invocation, obj: CompiledObject, rng_state, sink_mark
    ) -> list[MxArray]:
        """First run of a fresh compile, supervised in a forked child.

        Success applies the child's side effects (transcript, RNG
        advance) and promotes the object in-process; any sandbox death
        deoptimizes through the standard chain — the session never sees
        the crash.
        """
        name = invocation.name
        with self._lock:
            functions = dict(self._functions)
        with self.obs.tracer.span("sandbox_trial", "execution", function=name):
            verdict = self.sandbox.trial(
                obj, functions, invocation.args, invocation.nargout, rng_state
            )
        if verdict.ok:
            obj.sandbox_promoted = True
            self.diagnostics.record(
                SANDBOX_TRIAL, name,
                detail=verdict.reason
                or "first run succeeded in the sandbox; promoted in-process",
                signature=obj.signature,
            )
            if not verdict.executed:
                # No fork on this platform: promoted untried, run here.
                return obj.invoke(invocation.args, invocation.nargout, self._rt)
            if verdict.rng_state is not None:
                GLOBAL_RANDOM.restore(verdict.rng_state)
            if verdict.sink_text:
                self.sink.write(verdict.sink_text)
            if verdict.matlab_error is not None:
                # The program's own error, replayed with its transcript.
                raise verdict.matlab_error
            return verdict.outputs
        from repro.resilience import SandboxFailure

        self.diagnostics.record(
            SANDBOX_FAILURE, name,
            detail=verdict.reason,
            signature=obj.signature,
        )
        return self._deoptimize(
            invocation, obj, SandboxFailure(verdict.reason), rng_state,
            sink_mark,
        )

    def _deoptimize(
        self, invocation, obj: CompiledObject, exc, rng_state, sink_mark
    ) -> list[MxArray]:
        """Quarantine a failing compiled version and re-execute through
        the interpreter, rolling back observable side effects of the
        half-run compiled call first."""
        name = invocation.name
        self.stats.deopts += 1
        self._evict_version(name, obj)
        self.diagnostics.record(
            DEOPT, name,
            detail=f"quarantined {obj.mode} version; re-executing "
            "through the interpreter",
            cause=exc,
            signature=obj.signature,
        )
        self._note_strike(name)
        GLOBAL_RANDOM.restore(rng_state)
        self.sink.truncate(sink_mark)
        return self._interpret(invocation)

    def _note_strike(self, name: str) -> None:
        with self._lock:
            strikes = self._strikes.get(name, 0) + 1
            self._strikes[name] = strikes
            quarantine = (
                strikes >= self.max_strikes and name not in self._uncompilable
            )
            dropped = ()
            if quarantine:
                self._uncompilable.add(name)
                dropped = tuple(self._objects.pop(name, ()))
                self._fast_cache.pop(name, None)
                self.stats.quarantines += 1
        if quarantine:
            for obj in dropped:
                self._evict_cached(name, obj)
            self.diagnostics.record(
                QUARANTINE, name,
                detail=f"demoted to interpreter-only after {strikes} "
                "failed compiled executions",
            )

    def _evict_version(self, name: str, obj: CompiledObject) -> None:
        """Quarantine one version everywhere — memory *and* disk, so a
        cached crasher can never resurrect in a later session."""
        self._drop_version(name, obj)
        self._evict_cached(name, obj)

    def _drop_version(self, name: str, obj: CompiledObject) -> None:
        with self._lock:
            versions = self._objects.get(name)
            if versions:
                remaining = [v for v in versions if v is not obj]
                if remaining:
                    self._objects[name] = remaining
                else:
                    del self._objects[name]
            if self._fast_cache.get(name) is obj:
                del self._fast_cache[name]

    def _evict_cached(self, name: str, obj: CompiledObject) -> None:
        key = getattr(obj, "cache_key", None)
        if self.cache is None or key is None:
            return
        if self.cache.evict(key):
            self.diagnostics.record(
                CACHE_EVICT, name,
                detail=f"removed cache entry {key[:12]} (version quarantined)",
                signature=obj.signature,
            )

    def _remove_version(self, name: str, obj: CompiledObject) -> None:
        """Drop one stored version from memory (budget discard; not a
        failure — a persisted copy may stay, it is cheap to reload)."""
        self._drop_version(name, obj)

    def _record_compile_failure(
        self, name: str, mode: str, exc, signature=""
    ) -> None:
        self.stats.compile_failures += 1
        self.diagnostics.record(
            COMPILE_FAILURE, name,
            detail=f"{mode} compile failed",
            cause=exc,
            signature=signature,
        )

    def _range_only_miss(self, name: str, signature: Signature) -> bool:
        """True when an existing version matches this signature in every
        component except the value ranges."""
        for version in self.versions_of(name):
            if len(version.signature) != len(signature):
                continue
            if version.signature == signature:
                continue  # identical: the recompile replaces it instead
            if all(
                a.intrinsic is b.intrinsic
                and a.minshape == b.minshape
                and a.maxshape == b.maxshape
                for a, b in zip(signature.types, version.signature.types)
            ):
                return True
        return False

    def _has_dynamic_calls(self, fn: ast.FunctionDef) -> bool:
        with self._lock:
            known = set(self._functions)
        return bool(_called_names(fn) & known)

    def _find_version(self, name: str, signature: Signature):
        for version in self.versions_of(name):
            if version.signature == signature:
                return version
        return None

    def _interpret(self, invocation) -> list[MxArray]:
        self.stats.fallback_interpreted += 1
        self.stats.calls_interpreted += 1
        self.obs.record_call(TIER_INTERPRETER)
        fn = self._functions[invocation.name]
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._interpreter.call_function(
                fn, invocation.args, invocation.nargout
            )
        with tracer.span(invocation.name, "execution", tier=TIER_INTERPRETER):
            return self._interpreter.call_function(
                fn, invocation.args, invocation.nargout
            )

    def _call_user(self, name: str, args: list[MxArray], nargout: int):
        """Re-entry point for compiled code calling user functions."""
        from repro.interp.frontend import Invocation

        return tuple(
            self.execute(Invocation(name=name, args=args, nargout=nargout))
        )

    def _interp_dispatch(self, name, args, nargout):
        """The fallback interpreter also routes calls through us, so a
        single uncompilable function doesn't drag its callees down."""
        if not self.knows(name):
            return None
        from repro.interp.frontend import Invocation

        return self.execute(Invocation(name=name, args=args, nargout=nargout))


def _called_names(fn: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for stmt in ast.walk_stmts(fn.body):
        for expr in ast.stmt_exprs(stmt):
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.Apply):
                    names.add(node.name)
    return names
