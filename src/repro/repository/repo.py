"""The code repository proper (Sections 2 and 2.2.1).

Responsibilities:

* hold the table of known user functions (from snooped directories and
  directly added sources);
* hold, per function, the list of compiled versions differing only in
  their type-signature assumptions (paper Figure 3);
* the **function locator**: given an invocation, find a compiled version
  that is *safe* (``Qi ⊑ Ti`` for every parameter) and best by the
  Manhattan-like distance; a miss triggers JIT compilation ("since this
  typically happens during program execution, where time is at a premium,
  the JIT compiler is used in this situation");
* speculative ahead-of-time compilation of everything it knows about
  (:meth:`CodeRepository.speculate_all`), whose compile time is *hidden*
  (performed before the user needs the code);
* recompilation triggers when snooped sources change.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.disambiguate import Disambiguator
from repro.errors import CodegenError, RepositoryError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.codegen.inline import Inliner
from repro.codegen.jitgen import CompiledObject, JitCompiler, JitOptions
from repro.codegen.runtime_support import RuntimeSupport
from repro.codegen.srcgen import SourceCompiler, SrcOptions
from repro.inference.speculation import Speculator
from repro.interp.interpreter import Interpreter
from repro.runtime.display import OutputSink
from repro.runtime.mxarray import MxArray
from repro.repository.depgraph import DependencyGraph
from repro.repository.snoop import DirectorySnoop
from repro.typesys.signature import Signature


@dataclass
class RepositoryStats:
    lookups: int = 0
    hits: int = 0
    jit_compiles: int = 0
    speculative_compiles: int = 0
    fallback_interpreted: int = 0
    jit_compile_seconds: float = 0.0
    speculative_compile_seconds: float = 0.0


class CodeRepository:
    """Database of compiled code plus the machinery around it."""

    def __init__(
        self,
        jit_options: JitOptions | None = None,
        src_options: SrcOptions | None = None,
        sink: OutputSink | None = None,
        inline_enabled: bool = True,
    ):
        self.jit_options = jit_options or JitOptions()
        self.src_options = src_options or SrcOptions()
        self.sink = sink if sink is not None else OutputSink()
        self.inline_enabled = inline_enabled
        self.snoop = DirectorySnoop()
        self.depgraph = DependencyGraph()
        self.stats = RepositoryStats()
        # name -> FunctionDef (raw, as parsed)
        self._functions: dict[str, ast.FunctionDef] = {}
        # name -> inlined FunctionDef cache
        self._inlined: dict[str, ast.FunctionDef] = {}
        # name -> list of compiled versions
        self._objects: dict[str, list[CompiledObject]] = {}
        # functions that failed to compile (fall back to interpretation)
        self._uncompilable: set[str] = set()
        # (function, mode, PhaseTimes) for every compile this repository ran
        self.compile_log: list[tuple[str, str, object]] = []
        # Hot-call cache: last object that served each function name.
        self._fast_cache: dict[str, CompiledObject] = {}
        self._interpreter = Interpreter(
            function_lookup=self.lookup_function,
            sink=self.sink,
            call_dispatcher=self._interp_dispatch,
        )
        self._rt = RuntimeSupport(call_user=self._call_user, sink=self.sink)

    # ------------------------------------------------------------------
    # Source management
    # ------------------------------------------------------------------
    def add_source(self, source: str | ast.Program) -> list[str]:
        """Register function definitions from source text or a parsed
        program; returns the names registered."""
        program = parse(source) if isinstance(source, str) else source
        if program.is_script:
            raise RepositoryError("scripts cannot be added to the repository")
        names = []
        for fn in program.functions:
            self._register(fn)
            names.append(fn.name)
        return names

    def add_path(self, directory) -> list[str]:
        """Snoop a directory of .m files; returns newly seen functions."""
        self.snoop.add_path(directory)
        return self.rescan()

    def rescan(self) -> list[str]:
        """Re-scan snooped directories, invalidating changed functions."""
        report = self.snoop.scan()
        table = self.snoop.functions()
        touched: list[str] = []
        for name in report.added + report.changed:
            fn = table.get(name)
            if fn is not None:
                self._register(fn)
                touched.append(name)
        for name in report.removed:
            if name not in table:
                self._unregister(name)
        return touched

    def _register(self, fn: ast.FunctionDef) -> None:
        self._functions[fn.name] = fn
        # Invalidate the function itself and everything that inlined it.
        for stale in self.depgraph.dependents_of(fn.name):
            self._objects.pop(stale, None)
            self._inlined.pop(stale, None)
            self._uncompilable.discard(stale)
            self._fast_cache.pop(stale, None)

    def _unregister(self, name: str) -> None:
        self._functions.pop(name, None)
        for stale in self.depgraph.dependents_of(name):
            self._objects.pop(stale, None)
            self._inlined.pop(stale, None)
        self.depgraph.drop(name)

    def knows(self, name: str) -> bool:
        return name in self._functions

    def function_names(self) -> list[str]:
        return sorted(self._functions)

    def lookup_function(self, name: str) -> ast.FunctionDef | None:
        return self._functions.get(name)

    # ------------------------------------------------------------------
    # Inlining pass (Figure 1, pass 2)
    # ------------------------------------------------------------------
    def _prepared(self, name: str) -> ast.FunctionDef:
        fn = self._functions.get(name)
        if fn is None:
            raise RepositoryError(f"unknown function '{name}'")
        if not self.inline_enabled:
            return fn
        cached = self._inlined.get(name)
        if cached is not None:
            return cached
        inliner = Inliner(self.lookup_function)
        prepared = inliner.run(fn)
        self._inlined[name] = prepared
        used = (
            inliner.inlined_names
            | (_called_names(prepared) & set(self._functions))
        )
        self.depgraph.set_dependencies(name, used - {name})
        return prepared

    # ------------------------------------------------------------------
    # The function locator (Section 2.2.1)
    # ------------------------------------------------------------------
    def locate(self, invocation) -> CompiledObject | None:
        """Find the best safe compiled version for an invocation."""
        self.stats.lookups += 1
        versions = self._objects.get(invocation.name)
        if not versions:
            return None
        inv_sig = invocation.signature
        best: CompiledObject | None = None
        best_distance = float("inf")
        for version in versions:
            if len(version.signature) < len(invocation.args):
                continue
            padded = self._pad_signature(inv_sig, len(version.signature))
            if not version.signature.accepts(padded):
                continue
            distance = version.signature.distance(padded)
            if distance < best_distance:
                best, best_distance = version, distance
        if best is not None:
            self.stats.hits += 1
        return best

    @staticmethod
    def _pad_signature(signature: Signature, arity: int) -> Signature:
        from repro.typesys.mtype import MType

        if len(signature) == arity:
            return signature
        return Signature.of(
            list(signature.types)
            + [MType.bottom() for _ in range(arity - len(signature))]
        )

    def store(self, obj: CompiledObject) -> None:
        """Add (or replace) a compiled version in the database.

        A new object replaces an existing one with the identical signature
        ("the generated code can later be recompiled and replaced in the
        repository using a better compiler").
        """
        versions = self._objects.setdefault(obj.name, [])
        for index, existing in enumerate(versions):
            if existing.signature == obj.signature:
                versions[index] = obj
                return
        versions.append(obj)

    def versions_of(self, name: str) -> list[CompiledObject]:
        return list(self._objects.get(name, ()))

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def jit_compile(self, name: str, signature: Signature) -> CompiledObject:
        """Compile one function for one signature with the JIT pipeline."""
        fn = self._prepared(name)
        if self._has_dynamic_calls(fn) or self._range_only_miss(name, signature):
            # Two situations call for range widening (paper Figure 3:
            # poly1_sig1 with limits(x) = top exists alongside the
            # constant-specialized sig0):
            #  * remaining dynamic calls (recursion past the inlining
            #    depth) would recompile for every distinct constant;
            #  * a repository miss whose only difference from an existing
            #    version is the value ranges — the same call site is being
            #    fed varying values, so stop specializing on them.
            signature = Signature.of(t.widen_range() for t in signature)
            existing = self._find_version(name, signature)
            if existing is not None:
                return existing
        compiler = JitCompiler(self.jit_options)
        start = time.perf_counter()
        obj = compiler.compile(
            fn, signature, mode="jit", is_user_function=self.knows
        )
        self.stats.jit_compiles += 1
        self.stats.jit_compile_seconds += time.perf_counter() - start
        self.compile_log.append((name, "jit", obj.phase_times))
        self.store(obj)
        return obj

    def speculate(self, name: str) -> CompiledObject | None:
        """Speculatively compile one function ahead of time."""
        fn = self._prepared(name)
        try:
            disambiguation = Disambiguator(self.knows).run_function(fn)
            speculator = Speculator(options=self.src_options.inference)
            result = speculator.speculate(fn, disambiguation)
            compiler = SourceCompiler(self.src_options)
            start = time.perf_counter()
            obj = compiler.compile(
                fn,
                result.signature,
                disambiguation=disambiguation,
                annotations=result.annotations,
                mode="spec",
            )
            self.stats.speculative_compiles += 1
            self.stats.speculative_compile_seconds += (
                time.perf_counter() - start
            )
            self.compile_log.append((name, "spec", obj.phase_times))
        except CodegenError:
            self._uncompilable.add(name)
            return None
        self.store(obj)
        return obj

    def speculate_all(self) -> list[str]:
        """Ahead-of-time pass over every known function."""
        compiled = []
        for name in self.function_names():
            if self.speculate(name) is not None:
                compiled.append(name)
        return compiled

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, invocation) -> list[MxArray]:
        """Serve one invocation: locate, else JIT-compile, then run."""
        name = invocation.name
        cached = self._fast_cache.get(name)
        if cached is not None and cached.fast_accepts(invocation.args):
            return cached.invoke(invocation.args, invocation.nargout, self._rt)
        if not self.knows(name):
            raise RepositoryError(f"unknown function '{name}'")
        if name in self._uncompilable:
            return self._interpret(invocation)
        obj = self.locate(invocation)
        if obj is None:
            try:
                obj = self.jit_compile(name, invocation.signature)
            except CodegenError:
                self._uncompilable.add(name)
                return self._interpret(invocation)
        self._fast_cache[name] = obj
        return obj.invoke(invocation.args, invocation.nargout, self._rt)

    def _range_only_miss(self, name: str, signature: Signature) -> bool:
        """True when an existing version matches this signature in every
        component except the value ranges."""
        for version in self._objects.get(name, ()):
            if len(version.signature) != len(signature):
                continue
            if version.signature == signature:
                continue  # identical: the recompile replaces it instead
            if all(
                a.intrinsic is b.intrinsic
                and a.minshape == b.minshape
                and a.maxshape == b.maxshape
                for a, b in zip(signature.types, version.signature.types)
            ):
                return True
        return False

    def _has_dynamic_calls(self, fn: ast.FunctionDef) -> bool:
        return bool(_called_names(fn) & set(self._functions))

    def _find_version(self, name: str, signature: Signature):
        for version in self._objects.get(name, ()):
            if version.signature == signature:
                return version
        return None

    def _interpret(self, invocation) -> list[MxArray]:
        self.stats.fallback_interpreted += 1
        fn = self._functions[invocation.name]
        return self._interpreter.call_function(
            fn, invocation.args, invocation.nargout
        )

    def _call_user(self, name: str, args: list[MxArray], nargout: int):
        """Re-entry point for compiled code calling user functions."""
        from repro.interp.frontend import Invocation

        return tuple(
            self.execute(Invocation(name=name, args=args, nargout=nargout))
        )

    def _interp_dispatch(self, name, args, nargout):
        """The fallback interpreter also routes calls through us, so a
        single uncompilable function doesn't drag its callees down."""
        if not self.knows(name):
            return None
        from repro.interp.frontend import Invocation

        return self.execute(Invocation(name=name, args=args, nargout=nargout))


def _called_names(fn: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for stmt in ast.walk_stmts(fn.body):
        for expr in ast.stmt_exprs(stmt):
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.Apply):
                    names.add(node.name)
    return names
