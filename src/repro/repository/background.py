"""Background speculative compilation (the paper's hidden ``t_c``).

MaJIC's responsiveness story is that speculative compile time is *hidden*:
"the compiler runs in the background, during user think-time", so the
interactive prompt never blocks on the optimizing pipeline.  A
:class:`SpeculationEngine` reproduces that mechanism: a daemon worker
pool drains a thread-safe queue of (function, generation) work items,
compiling each through :meth:`CodeRepository.speculate` while the
foreground session keeps interpreting and JIT-compiling.

Lifecycle of one work item
--------------------------
* :meth:`submit` enqueues a function under its *current* repository
  generation; a name already queued or in flight at the same generation
  is deduplicated.
* A worker dequeues the item, re-checks the generation (a redefinition
  while queued cancels the task) and runs the repository's speculative
  pipeline.  The repository re-checks the generation once more before
  storing, so a redefinition *mid-compile* discards the stale object
  rather than letting it serve the new source's calls.
* Any exception inside a worker — injected faults included — is absorbed
  and recorded; the function simply stays interpreter/JIT-served.  A
  worker can fail, the queue cannot deadlock.

Supervision
-----------
Workers are *supervised* (``repro.resilience``): each dequeue stamps a
heartbeat, and a dedicated supervisor thread

* **restarts dead workers** — a :class:`~repro.faults.plan.SimulatedCrash`
  (or any ``BaseException``) kills the worker thread; the supervisor
  respawns it with exponential backoff, up to
  ``policy.worker_max_restarts`` total, then degrades the engine to
  foreground-only compilation (the queue is flushed so :meth:`drain`
  stays bounded);
* **requeues the victim's task** with an attempt counter; a task that has
  killed ``policy.worker_max_task_retries + 1`` workers is quarantined as
  **poison** rather than retried forever;
* **cancels hung workers** — a heartbeat older than
  ``policy.worker_heartbeat_timeout`` gets a
  :class:`~repro.resilience.DeadlineExceeded` injected, which the worker
  absorbs as an ordinary failed compile and lives on.

The foreground can :meth:`drain` (bounded wait for quiet), poll
:meth:`pending`, or simply keep calling functions: an invocation arriving
before its speculative version lands falls through to the JIT compiler or
the interpreter exactly as in a synchronous session, which is why every
interleaving converges to the same values.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.obs import DISABLED as DISABLED_OBS
from repro.repository.diagnostics import (
    COMPILE_FAILURE,
    POISON_TASK,
    SPECULATE_ASYNC,
    WATCHDOG_TIMEOUT,
    WORKER_RESTART,
)
from repro.resilience.watchdog import DeadlineExceeded, async_raise

_STOP = object()

#: Default worker-pool width when neither the session nor the platform
#: configuration names one.
DEFAULT_WORKERS = 2


class _Task:
    """An arbitrary callable riding the worker queue in a generation slot.

    The native tier submits its out-of-band C compiles this way
    (:meth:`SpeculationEngine.submit_task`): the task reuses the pool's
    supervision — heartbeats, dead-worker restarts, poison quarantine —
    without the generation/redefinition machinery, which only makes sense
    for function compiles.
    """

    __slots__ = ("fn", "on_done")

    def __init__(self, fn, on_done=None):
        self.fn = fn
        self.on_done = on_done

    def finish(self, success: bool) -> None:
        """Fire the completion callback exactly once (then disarm it)."""
        callback, self.on_done = self.on_done, None
        if callback is None:
            return
        try:
            callback(success)
        except Exception:  # noqa: BLE001 - callbacks must not kill workers
            pass


class SpeculationEngine:
    """A daemon worker pool running speculative compiles off-thread."""

    def __init__(
        self,
        repository,
        workers: int = DEFAULT_WORKERS,
        fault_plan=None,
        obs=None,
        policy=None,
    ):
        if workers < 1:
            raise ValueError("SpeculationEngine needs at least one worker")
        if policy is None:
            from repro.resilience import DEFAULT_POLICY

            policy = DEFAULT_POLICY
        self.repository = repository
        self.fault_plan = fault_plan
        self.policy = policy
        # Observability: default to the repository's switchboard so the
        # workers and the foreground share one tracer/registry.
        if obs is None:
            obs = getattr(repository, "obs", None) or DISABLED_OBS
        self.obs = obs
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._quiet = threading.Condition(self._lock)
        # name -> generation queued (dedup of identical submissions)
        self._queued: dict[str, int] = {}
        self._in_flight = 0
        self._shutdown = False
        # Outcome tallies (inspected by tests and the experiment report).
        self.compiled: list[str] = []
        self.failed: list[str] = []
        self.cancelled: list[str] = []
        self.poisoned: list[str] = []
        # Supervision state: heartbeats, live work, restart bookkeeping.
        self.restarts = 0
        self.degraded = False
        self._hearts: dict[int, float] = {}
        self._idents: dict[int, int] = {}
        self._current: dict[int, tuple] = {}
        self._restart_counts: dict[int, int] = {}
        self._next_restart: dict[int, float] = {}
        self._threads: dict[int, threading.Thread] = {}
        for index in range(workers):
            self._threads[index] = self._spawn(index)
        self._stop_supervisor = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="majic-spec-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn(self, index: int) -> threading.Thread:
        thread = threading.Thread(
            target=self._worker, args=(index,),
            name=f"majic-spec-{index}", daemon=True,
        )
        thread.start()
        return thread

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, name: str) -> bool:
        """Queue one function for background speculation.

        Returns False when the submission was deduplicated (already
        queued or compiling at the same generation) or the engine is
        shut down.
        """
        generation = self.repository.generation_of(name)
        with self._lock:
            if self._shutdown or self.degraded:
                return False
            if self._queued.get(name) == generation:
                return False
            self._queued[name] = generation
        # Capture the submitting thread's innermost span (typically the
        # session's ``speculate_async`` span) so the worker's spans hang
        # off it in the trace tree despite running on another thread.
        parent = self.obs.tracer.current_id()
        self._queue.put((name, generation, parent))
        self.obs.set_queue_depth(self.pending())
        return True

    def submit_task(self, fn, label: str, on_done=None) -> bool:
        """Queue one arbitrary callable on the supervised worker pool.

        Returns False when the engine is shut down or degraded (callers
        then run the work inline or drop it).  ``label`` names the task
        in diagnostics, dedup and poison quarantine.  ``on_done`` (if
        given) is invoked with ``True``/``False`` once the task finishes
        or is abandoned (failure, cancellation, poison quarantine).
        """
        task = _Task(fn, on_done)
        with self._lock:
            if self._shutdown or self.degraded:
                return False
            if label in self._queued:
                return False
            self._queued[label] = task
        parent = self.obs.tracer.current_id()
        self._queue.put((label, task, parent))
        self.obs.set_queue_depth(self.pending())
        return True

    def submit_all(self) -> int:
        """Queue every function the repository knows; returns how many."""
        return sum(1 for name in self.repository.function_names() if self.submit(name))

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Work items not yet finished (queued + in flight)."""
        with self._lock:
            return len(self._queued) + self._in_flight

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is quiet; False on timeout.

        Interactive sessions call this when they *want* the compiled code
        now (benchmark start); otherwise they just keep executing and let
        results land whenever they land.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._quiet:
            while self._queued or self._in_flight:
                if deadline is None:
                    self._quiet.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._quiet.wait(remaining)
            return True

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers."""
        with self._lock:
            self._shutdown = True
        self._stop_supervisor.set()
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for thread in self._threads.values():
                thread.join(timeout=10)
            self._supervisor.join(timeout=10)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()

    # ------------------------------------------------------------------
    # The worker loop
    # ------------------------------------------------------------------
    @staticmethod
    def _unpack(item):
        # Items are (name, generation, parent-span, attempts); tolerate
        # shorter tuples for direct queue injection in tests.
        name, generation, *rest = item
        parent = rest[0] if rest else None
        attempts = rest[1] if len(rest) > 1 else 0
        return name, generation, parent, attempts

    def _worker(self, index: int = 0) -> None:
        repo = self.repository
        with self._lock:
            self._idents[index] = threading.get_ident()
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            name, generation, parent, attempts = self._unpack(item)
            with self._lock:
                if self._queued.get(name) == generation:
                    del self._queued[name]
                self._in_flight += 1
                self._hearts[index] = time.monotonic()
                self._current[index] = (name, generation, parent, attempts)
            died = False
            try:
                self._run_one(repo, name, generation, parent)
            except BaseException as exc:  # noqa: BLE001 - simulated worker death
                # Only a SimulatedCrash (or a stray async cancellation
                # landing between the narrower nets) reaches here: the
                # worker is considered dead.  Hand the task to the
                # supervisor's retry/poison policy, then let the thread
                # exit so the supervisor can respawn it.
                died = True
                self._note_worker_death(name, generation, parent, attempts, exc)
            finally:
                with self._quiet:
                    self._current.pop(index, None)
                    self._in_flight -= 1
                    # Gauge update inside the lock, *before* notifying:
                    # a drained foreground must observe the settled depth.
                    self.obs.set_queue_depth(
                        len(self._queued) + self._in_flight
                    )
                    if not self._queued and not self._in_flight:
                        self._quiet.notify_all()
            if died:
                return

    def _note_worker_death(self, name, generation, parent, attempts, exc) -> None:
        """A task killed its worker: requeue it (bounded) or poison it."""
        repo = self.repository
        retries = self.policy.worker_max_task_retries
        if attempts < retries and not self._shutdown:
            with self._lock:
                self._queued[name] = generation
            self._queue.put((name, generation, parent, attempts + 1))
            return
        self.failed.append(name)
        self.poisoned.append(name)
        repo.diagnostics.record(
            POISON_TASK, name,
            detail=f"task killed {attempts + 1} worker(s); "
            "quarantined as poison",
            cause=exc,
        )
        if isinstance(generation, _Task):
            generation.finish(False)

    # ------------------------------------------------------------------
    # The supervisor loop
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        """Heal the pool: restart dead workers, cancel hung ones."""
        repo = self.repository
        policy = self.policy
        interval = 0.02
        while not self._stop_supervisor.wait(interval):
            now = time.monotonic()
            with self._lock:
                stale = [
                    (index, self._current[index], self._idents.get(index))
                    for index, beat in self._hearts.items()
                    if index in self._current
                    and now - beat > policy.worker_heartbeat_timeout
                ]
                dead = [
                    index
                    for index, thread in self._threads.items()
                    if not thread.is_alive() and not self._shutdown
                ]
            for index, current, ident in stale:
                # A hung worker absorbs the injected DeadlineExceeded as
                # an ordinary failed compile and keeps its thread.
                if ident is not None and async_raise(ident, DeadlineExceeded):
                    with self._lock:
                        self._hearts[index] = now  # one injection per period
                    repo.diagnostics.record(
                        WATCHDOG_TIMEOUT, current[0],
                        detail="speculation worker heartbeat stale "
                        f"(> {policy.worker_heartbeat_timeout:.4f}s); "
                        "cancellation injected",
                    )
            for index in dead:
                if self.restarts >= policy.worker_max_restarts:
                    self._enter_degraded()
                    break
                due = self._next_restart.get(index)
                if due is None:
                    count = self._restart_counts.get(index, 0)
                    delay = min(
                        policy.worker_restart_backoff * (2 ** count), 1.0
                    )
                    self._next_restart[index] = now + delay
                    continue
                if now < due:
                    continue
                self._next_restart.pop(index, None)
                self._restart_counts[index] = (
                    self._restart_counts.get(index, 0) + 1
                )
                self.restarts += 1
                with self._lock:
                    self._threads[index] = self._spawn(index)
                repo.diagnostics.record(
                    WORKER_RESTART, f"worker-{index}",
                    detail=f"dead worker respawned (restart {self.restarts}/"
                    f"{policy.worker_max_restarts})",
                )
                self.obs.record_worker_restart()

    def _enter_degraded(self) -> None:
        """The restart budget is spent: flush the queue and stop accepting
        work so ``drain()`` stays bounded; the session continues with
        foreground JIT compilation only."""
        first = False
        with self._lock:
            if not self.degraded:
                self.degraded = True
                first = True
        if first:
            self.repository.diagnostics.record(
                WORKER_RESTART, "engine",
                detail="restart budget exhausted; speculation degraded to "
                "foreground-only",
            )
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            name, generation = self._unpack(item)[:2]
            with self._quiet:
                self._queued.pop(name, None)
                self.cancelled.append(name)
                if not self._queued and not self._in_flight:
                    self._quiet.notify_all()
            if isinstance(generation, _Task):
                generation.finish(False)

    def _run_one(self, repo, name: str, generation, parent=None) -> None:
        tracer = self.obs.tracer
        if isinstance(generation, _Task):
            if not tracer.enabled:
                return self._run_task(repo, name, generation)
            with tracer.adopt(parent):
                with tracer.span(name, "background", task=name):
                    return self._run_task(repo, name, generation)
        if not tracer.enabled:
            return self._run_one_raw(repo, name, generation)
        with tracer.adopt(parent):
            with tracer.span(name, "background", function=name,
                             generation=generation):
                return self._run_one_raw(repo, name, generation)

    def _run_task(self, repo, label: str, task: _Task) -> None:
        """One submitted callable; failures are absorbed and recorded."""
        try:
            if self.fault_plan is not None:
                self.fault_plan.check("worker", label)
            task.fn()
        except Exception as exc:  # noqa: BLE001 - workers must not die loudly
            self.failed.append(label)
            repo.diagnostics.record(
                COMPILE_FAILURE, label,
                detail="background task failed",
                cause=exc,
            )
            task.finish(False)
            return
        self.compiled.append(label)
        task.finish(True)

    def _run_one_raw(self, repo, name: str, generation: int) -> None:
        try:
            if repo.generation_of(name) != generation:
                self.cancelled.append(name)
                return
            if self.fault_plan is not None:
                # The dedicated worker site: a fault here models a dying
                # worker (OOM, runaway codegen) rather than a compiler bug.
                self.fault_plan.check("worker", name)
            obj = repo.speculate(name, generation=generation)
        except Exception as exc:  # noqa: BLE001 - workers must not die loudly
            self.failed.append(name)
            with repo._lock:
                repo.stats.compile_failures += 1
            repo.diagnostics.record(
                COMPILE_FAILURE, name,
                detail="background speculation worker failed",
                cause=exc,
            )
            return
        if obj is None:
            if repo.generation_of(name) != generation:
                self.cancelled.append(name)
            else:
                self.failed.append(name)
            return
        self.compiled.append(name)
        with repo._lock:
            repo.stats.background_compiles += 1
        repo.diagnostics.record(
            SPECULATE_ASYNC, name,
            detail="speculative version compiled in the background",
            signature=obj.signature,
        )
