"""Background speculative compilation (the paper's hidden ``t_c``).

MaJIC's responsiveness story is that speculative compile time is *hidden*:
"the compiler runs in the background, during user think-time", so the
interactive prompt never blocks on the optimizing pipeline.  A
:class:`SpeculationEngine` reproduces that mechanism: a daemon worker
pool drains a thread-safe queue of (function, generation) work items,
compiling each through :meth:`CodeRepository.speculate` while the
foreground session keeps interpreting and JIT-compiling.

Lifecycle of one work item
--------------------------
* :meth:`submit` enqueues a function under its *current* repository
  generation; a name already queued or in flight at the same generation
  is deduplicated.
* A worker dequeues the item, re-checks the generation (a redefinition
  while queued cancels the task) and runs the repository's speculative
  pipeline.  The repository re-checks the generation once more before
  storing, so a redefinition *mid-compile* discards the stale object
  rather than letting it serve the new source's calls.
* Any exception inside a worker — injected faults included — is absorbed
  and recorded; the function simply stays interpreter/JIT-served.  A
  worker can fail, the queue cannot deadlock.

The foreground can :meth:`drain` (bounded wait for quiet), poll
:meth:`pending`, or simply keep calling functions: an invocation arriving
before its speculative version lands falls through to the JIT compiler or
the interpreter exactly as in a synchronous session, which is why every
interleaving converges to the same values.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.obs import DISABLED as DISABLED_OBS
from repro.repository.diagnostics import COMPILE_FAILURE, SPECULATE_ASYNC

_STOP = object()

#: Default worker-pool width when neither the session nor the platform
#: configuration names one.
DEFAULT_WORKERS = 2


class SpeculationEngine:
    """A daemon worker pool running speculative compiles off-thread."""

    def __init__(
        self,
        repository,
        workers: int = DEFAULT_WORKERS,
        fault_plan=None,
        obs=None,
    ):
        if workers < 1:
            raise ValueError("SpeculationEngine needs at least one worker")
        self.repository = repository
        self.fault_plan = fault_plan
        # Observability: default to the repository's switchboard so the
        # workers and the foreground share one tracer/registry.
        if obs is None:
            obs = getattr(repository, "obs", None) or DISABLED_OBS
        self.obs = obs
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._quiet = threading.Condition(self._lock)
        # name -> generation queued (dedup of identical submissions)
        self._queued: dict[str, int] = {}
        self._in_flight = 0
        self._shutdown = False
        # Outcome tallies (inspected by tests and the experiment report).
        self.compiled: list[str] = []
        self.failed: list[str] = []
        self.cancelled: list[str] = []
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"majic-spec-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, name: str) -> bool:
        """Queue one function for background speculation.

        Returns False when the submission was deduplicated (already
        queued or compiling at the same generation) or the engine is
        shut down.
        """
        generation = self.repository.generation_of(name)
        with self._lock:
            if self._shutdown:
                return False
            if self._queued.get(name) == generation:
                return False
            self._queued[name] = generation
        # Capture the submitting thread's innermost span (typically the
        # session's ``speculate_async`` span) so the worker's spans hang
        # off it in the trace tree despite running on another thread.
        parent = self.obs.tracer.current_id()
        self._queue.put((name, generation, parent))
        self.obs.set_queue_depth(self.pending())
        return True

    def submit_all(self) -> int:
        """Queue every function the repository knows; returns how many."""
        return sum(1 for name in self.repository.function_names() if self.submit(name))

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Work items not yet finished (queued + in flight)."""
        with self._lock:
            return len(self._queued) + self._in_flight

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is quiet; False on timeout.

        Interactive sessions call this when they *want* the compiled code
        now (benchmark start); otherwise they just keep executing and let
        results land whenever they land.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._quiet:
            while self._queued or self._in_flight:
                if deadline is None:
                    self._quiet.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._quiet.wait(remaining)
            return True

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers."""
        with self._lock:
            self._shutdown = True
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join(timeout=10)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()

    # ------------------------------------------------------------------
    # The worker loop
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        repo = self.repository
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            # Items are (name, generation, parent-span); tolerate bare
            # (name, generation) pairs for direct queue injection.
            name, generation, *rest = item
            parent = rest[0] if rest else None
            with self._lock:
                if self._queued.get(name) == generation:
                    del self._queued[name]
                self._in_flight += 1
            try:
                self._run_one(repo, name, generation, parent)
            finally:
                with self._quiet:
                    self._in_flight -= 1
                    # Gauge update inside the lock, *before* notifying:
                    # a drained foreground must observe the settled depth.
                    self.obs.set_queue_depth(
                        len(self._queued) + self._in_flight
                    )
                    if not self._queued and not self._in_flight:
                        self._quiet.notify_all()

    def _run_one(self, repo, name: str, generation: int, parent=None) -> None:
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._run_one_raw(repo, name, generation)
        with tracer.adopt(parent):
            with tracer.span(name, "background", function=name,
                             generation=generation):
                return self._run_one_raw(repo, name, generation)

    def _run_one_raw(self, repo, name: str, generation: int) -> None:
        try:
            if repo.generation_of(name) != generation:
                self.cancelled.append(name)
                return
            if self.fault_plan is not None:
                # The dedicated worker site: a fault here models a dying
                # worker (OOM, runaway codegen) rather than a compiler bug.
                self.fault_plan.check("worker", name)
            obj = repo.speculate(name, generation=generation)
        except Exception as exc:  # noqa: BLE001 - workers must not die loudly
            self.failed.append(name)
            with repo._lock:
                repo.stats.compile_failures += 1
            repo.diagnostics.record(
                COMPILE_FAILURE, name,
                detail="background speculation worker failed",
                cause=exc,
            )
            return
        if obj is None:
            if repo.generation_of(name) != generation:
                self.cancelled.append(name)
            else:
                self.failed.append(name)
            return
        self.compiled.append(name)
        with repo._lock:
            repo.stats.background_compiles += 1
        repo.diagnostics.record(
            SPECULATE_ASYNC, name,
            detail="speculative version compiled in the background",
            signature=obj.signature,
        )
