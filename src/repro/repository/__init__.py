"""The code repository (Section 2).

A database of compiled code.  It compiles ahead of time by snooping source
directories, maintains dependency information between source and object
code, triggers recompilation when sources change, and answers the front
end's requests for compiled code through the function locator's
type-signature matching (Section 2.2.1).
"""

from repro.repository.repo import (
    CodeRepository,
    CompileBudget,
    RepositoryStats,
    SpeculationReport,
)
from repro.repository.background import SpeculationEngine
from repro.repository.cache import RepositoryCache
from repro.repository.diagnostics import DiagnosticEvent, DiagnosticsLog
from repro.repository.snoop import DirectorySnoop
from repro.repository.depgraph import DependencyGraph

__all__ = [
    "CodeRepository",
    "CompileBudget",
    "RepositoryStats",
    "SpeculationReport",
    "SpeculationEngine",
    "RepositoryCache",
    "DiagnosticEvent",
    "DiagnosticsLog",
    "DirectorySnoop",
    "DependencyGraph",
]
