"""Structured robustness diagnostics for the execution tier.

The paper's premise is that compiled code is an *optimization*, never a
semantic requirement (Section 2.2.1): the interpreter is ground truth and
every failure of the compiled tier must degrade into interpretation, not
into a user-visible crash.  That only works in production if the
degradations are *observable* — a session that silently interprets
everything is indistinguishable from a healthy one until the latency graphs
say otherwise.  :class:`DiagnosticsLog` is the flight recorder: every
deoptimization, quarantine, budget skip and compile failure lands here as a
structured event that tests and operators can assert on.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: Event kinds recorded by the repository.
DEOPT = "deopt"                      # compiled object raised unexpectedly
QUARANTINE = "quarantine"            # function demoted to interpreter-only
BUDGET_SKIP = "budget_skip"          # compile skipped/flagged by a budget
COMPILE_FAILURE = "compile_failure"  # a compiler raised (expected or not)
#: Responsiveness events (background speculation + persistent cache).
SPECULATE_ASYNC = "speculate_async"  # a background compile landed
CACHE_HIT = "cache_hit"              # compile served from the disk cache
CACHE_LOAD = "cache_load"            # cache entry deserialized (or refused)
CACHE_STORE = "cache_store"          # compiled object persisted to disk
CACHE_EVICT = "cache_evict"          # cached entry removed (deopt/quarantine)
#: Supervision events (repro.resilience: watchdog / sandbox / healing).
WATCHDOG_TIMEOUT = "watchdog_timeout"  # a deadline fired; operation cancelled
SANDBOX_TRIAL = "sandbox_trial"        # first run executed in a sandbox fork
SANDBOX_FAILURE = "sandbox_failure"    # the sandbox died; session survived
WORKER_RESTART = "worker_restart"      # a dead speculation worker respawned
POISON_TASK = "poison_task"            # a task quarantined after killing workers
CACHE_CORRUPT = "cache_corrupt"        # a corrupted cache entry quarantined
CACHE_RETRY = "cache_retry"            # a transient cache IO fault retried
#: Parallel-backend events (repro.parallel: MatlabMPI-style ranks).
PARALLEL_FALLBACK = "parallel_fallback"        # a sharded call ran serially
PARALLEL_RESTART = "parallel_worker_restart"   # a dead rank was respawned
PARALLEL_DEGRADED = "parallel_degraded"        # restart budget spent; serial
#: Adaptive-tiering events (repro.tiering: online promotion/demotion).
TIER_PROMOTE = "tier_promote"        # controller moved a function up a tier
TIER_DEMOTE = "tier_demote"          # controller moved a function back down


@dataclass(frozen=True)
class DiagnosticEvent:
    """One robustness event (immutable, suitable for log shipping)."""

    kind: str
    function: str
    detail: str = ""
    cause: str = ""       # repr() of the triggering exception, if any
    signature: str = ""   # signature of the implicated compiled version
    seq: int = 0          # monotonic per-session sequence number
    wall_time: float = 0.0  # time.time() at record (log shipping)
    thread: str = ""      # recording thread's name (worker attribution)
    rank: int = 0         # parallel rank that produced the event (0 = session)

    def __str__(self) -> str:
        parts = [f"[{self.seq}] {self.kind} {self.function}"]
        if self.rank:
            parts.append(f"rank={self.rank}")
        if self.signature:
            parts.append(f"sig={self.signature}")
        if self.detail:
            parts.append(self.detail)
        if self.cause:
            parts.append(f"cause={self.cause}")
        return " | ".join(parts)


@dataclass
class DiagnosticsLog:
    """Bounded in-memory ring of events (oldest dropped past capacity).

    The ring is a :class:`collections.deque`, so a chaos storm that fires
    thousands of events costs O(1) per drop rather than a list shuffle.
    The ``capacity`` is configurable per session
    (``MajicSession(diagnostics_capacity=...)``); drops are surfaced
    through the :attr:`dropped` counter — a nonzero value is itself a
    health signal worth alerting on.

    Recording is thread-safe: background speculation workers, the
    watchdog monitor and the foreground session share one log.
    """

    capacity: int = 10_000
    _events: deque = field(default_factory=deque)
    _seq: int = 0
    _dropped: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _listeners: list = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.capacity = max(1, int(self.capacity))
        # maxlen is enforced manually so evictions can be counted: a
        # deque(maxlen=n) drops silently, and the drop count *is* the S2
        # health signal.
        self._events = deque(self._events)

    def record(
        self,
        kind: str,
        function: str,
        detail: str = "",
        cause: BaseException | str | None = None,
        signature: object = "",
        rank: int = 0,
        wall_time: float | None = None,
    ) -> DiagnosticEvent:
        with self._lock:
            self._seq += 1
            event = DiagnosticEvent(
                kind=kind,
                function=function,
                detail=detail,
                cause=repr(cause) if isinstance(cause, BaseException) else (cause or ""),
                signature=str(signature) if signature else "",
                seq=self._seq,
                wall_time=time.time() if wall_time is None else wall_time,
                thread=threading.current_thread().name,
                rank=int(rank),
            )
            self._events.append(event)
            while len(self._events) > self.capacity:
                self._events.popleft()
                self._dropped += 1
            listeners = tuple(self._listeners)
        # Listeners (the metrics/trace bridge) run outside the lock: they
        # may take their own locks, and the flight recorder must never
        # deadlock or crash the execution path it is recording.
        for listener in listeners:
            try:
                listener(event)
            except Exception:  # noqa: BLE001 - observers cannot break execution
                pass
        return event

    def add_listener(self, listener) -> None:
        """Subscribe ``listener(event)`` to every future record."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    # ------------------------------------------------------------------
    def events(self, kind: str | None = None) -> list[DiagnosticEvent]:
        with self._lock:
            if kind is None:
                return list(self._events)
            return [e for e in self._events if e.kind == kind]

    def counts(self) -> dict[str, int]:
        with self._lock:
            tally: dict[str, int] = {}
            for event in self._events:
                tally[event.kind] = tally.get(event.kind, 0) + 1
            return tally

    @property
    def dropped(self) -> int:
        """Events lost to the capacity bound (health signal by itself)."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self):
        return iter(self.events())

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._events)
