"""Structured robustness diagnostics for the execution tier.

The paper's premise is that compiled code is an *optimization*, never a
semantic requirement (Section 2.2.1): the interpreter is ground truth and
every failure of the compiled tier must degrade into interpretation, not
into a user-visible crash.  That only works in production if the
degradations are *observable* — a session that silently interprets
everything is indistinguishable from a healthy one until the latency graphs
say otherwise.  :class:`DiagnosticsLog` is the flight recorder: every
deoptimization, quarantine, budget skip and compile failure lands here as a
structured event that tests and operators can assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Event kinds recorded by the repository.
DEOPT = "deopt"                      # compiled object raised unexpectedly
QUARANTINE = "quarantine"            # function demoted to interpreter-only
BUDGET_SKIP = "budget_skip"          # compile skipped/flagged by a budget
COMPILE_FAILURE = "compile_failure"  # a compiler raised (expected or not)


@dataclass(frozen=True)
class DiagnosticEvent:
    """One robustness event (immutable, suitable for log shipping)."""

    kind: str
    function: str
    detail: str = ""
    cause: str = ""       # repr() of the triggering exception, if any
    signature: str = ""   # signature of the implicated compiled version
    seq: int = 0          # monotonic per-session sequence number

    def __str__(self) -> str:
        parts = [f"[{self.seq}] {self.kind} {self.function}"]
        if self.signature:
            parts.append(f"sig={self.signature}")
        if self.detail:
            parts.append(self.detail)
        if self.cause:
            parts.append(f"cause={self.cause}")
        return " | ".join(parts)


@dataclass
class DiagnosticsLog:
    """Bounded in-memory event log (oldest events dropped past capacity)."""

    capacity: int = 10_000
    _events: list[DiagnosticEvent] = field(default_factory=list)
    _seq: int = 0
    _dropped: int = 0

    def record(
        self,
        kind: str,
        function: str,
        detail: str = "",
        cause: BaseException | str | None = None,
        signature: object = "",
    ) -> DiagnosticEvent:
        self._seq += 1
        event = DiagnosticEvent(
            kind=kind,
            function=function,
            detail=detail,
            cause=repr(cause) if isinstance(cause, BaseException) else (cause or ""),
            signature=str(signature) if signature else "",
            seq=self._seq,
        )
        self._events.append(event)
        if len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self._dropped += overflow
        return event

    # ------------------------------------------------------------------
    def events(self, kind: str | None = None) -> list[DiagnosticEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for event in self._events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally

    @property
    def dropped(self) -> int:
        """Events lost to the capacity bound (health signal by itself)."""
        return self._dropped

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)
