"""Dependency tracking between source files and compiled objects.

The repository "maintains dependency information between source code and
object code and triggers recompilations when the source code changes".
Dependencies arise two ways: a compiled object depends on its own source,
and — because of inlining — on the sources of every function inlined into
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DependencyGraph:
    """function name -> set of function names whose source it embeds."""

    _deps: dict[str, set[str]] = field(default_factory=dict)
    _reverse: dict[str, set[str]] = field(default_factory=dict)

    def set_dependencies(self, name: str, depends_on: set[str]) -> None:
        old = self._deps.get(name, set())
        for dep in old - depends_on:
            self._reverse.get(dep, set()).discard(name)
        for dep in depends_on - old:
            self._reverse.setdefault(dep, set()).add(name)
        self._deps[name] = set(depends_on)

    def dependencies_of(self, name: str) -> set[str]:
        return set(self._deps.get(name, ()))

    def dependents_of(self, name: str) -> set[str]:
        """Everything that must be invalidated when ``name`` changes
        (transitive closure including ``name`` itself)."""
        result: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._reverse.get(current, ()))
        return result

    def drop(self, name: str) -> None:
        self.set_dependencies(name, set())
        self._deps.pop(name, None)
