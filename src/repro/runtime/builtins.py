"""The builtin-function registry (MATLAB's precompiled library).

Builtins are the third symbol kind the disambiguator resolves (variable /
builtin / user function, Section 2.1).  Each entry carries the runtime
implementation used by every engine, plus metadata the compiler passes
consult (arity, purity, and whether its arguments have the "integer scalar
affinity" that feeds the speculator of Section 2.5).

All implementations operate on and return boxed MxArray values; they are
called identically from the interpreter and from generated code (compiled
code cannot speed up library internals — the paper's explanation for why
builtin-heavy benchmarks barely benefit from compilation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import DimensionError, RuntimeMatlabError
from repro.runtime import display, linalg
from repro.runtime.mxarray import IntrinsicClass, MxArray
from repro.runtime.values import (
    empty,
    from_ndarray,
    make_bool,
    make_scalar,
    make_string,
)

# ----------------------------------------------------------------------
# Deterministic MATLAB-style RNG (shared by every engine so that the
# interpreter, JIT and speculative runs of a randomized benchmark compute
# identical results when reseeded identically).
# ----------------------------------------------------------------------
class MatlabRandom:
    """Global random stream, reseedable like ``rand('seed', n)``."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self._seed = seed

    def seed(self, value: int) -> None:
        self._seed = int(value)
        self._rng = np.random.default_rng(self._seed)

    def snapshot(self):
        """Capture the stream state (deoptimization re-execution support:
        a half-run compiled call must not advance the stream the
        interpreter re-run will read)."""
        return (self._seed, self._rng.bit_generator.state)

    def restore(self, state) -> None:
        self._seed, bitgen_state = state
        self._rng = np.random.default_rng(self._seed)
        self._rng.bit_generator.state = bitgen_state

    def uniform(self, rows: int, cols: int) -> np.ndarray:
        return self._rng.random((rows, cols))

    def normal(self, rows: int, cols: int) -> np.ndarray:
        return self._rng.standard_normal((rows, cols))


GLOBAL_RANDOM = MatlabRandom()


@dataclass(frozen=True)
class Builtin:
    """Registry entry for one builtin function."""

    name: str
    impl: Callable[[list[MxArray], int], list[MxArray]]
    min_args: int = 0
    max_args: int = 2
    max_out: int = 1
    pure: bool = True
    # Section 2.5: arguments of zeros/ones/rand/size(…,2)/… are "likely
    # integer scalars" — the hint the backward speculation rules exploit.
    int_scalar_affinity: bool = False
    doc: str = ""


BUILTINS: dict[str, Builtin] = {}


def register(
    name: str,
    min_args: int = 0,
    max_args: int = 2,
    max_out: int = 1,
    pure: bool = True,
    int_scalar_affinity: bool = False,
    doc: str = "",
):
    """Decorator adding a builtin implementation to the registry."""

    def wrap(fn: Callable[[list[MxArray], int], list[MxArray]]):
        BUILTINS[name] = Builtin(
            name=name,
            impl=fn,
            min_args=min_args,
            max_args=max_args,
            max_out=max_out,
            pure=pure,
            int_scalar_affinity=int_scalar_affinity,
            doc=doc or (fn.__doc__ or "").strip(),
        )
        return fn

    return wrap


def is_builtin(name: str) -> bool:
    return name in BUILTINS


def call_builtin(
    name: str,
    args: list[MxArray],
    nargout: int = 1,
    sink: display.OutputSink | None = None,
) -> list[MxArray]:
    """Invoke a builtin with arity checking; returns its output list."""
    entry = BUILTINS.get(name)
    if entry is None:
        raise RuntimeMatlabError(f"undefined builtin function '{name}'")
    if not entry.min_args <= len(args) <= entry.max_args:
        raise RuntimeMatlabError(
            f"{name}: expected between {entry.min_args} and "
            f"{entry.max_args} arguments, got {len(args)}"
        )
    if name in _SINK_BUILTINS:
        return entry.impl(args, nargout, sink)  # type: ignore[call-arg]
    return entry.impl(args, nargout)


_SINK_BUILTINS = {"disp", "fprintf"}


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _dims_from_args(args: list[MxArray], default=(1, 1)) -> tuple[int, int]:
    if not args:
        return default
    if len(args) == 1:
        if args[0].numel == 2:
            flat = args[0].view().ravel()
            return int(np.real(flat[0])), int(np.real(flat[1]))
        n = int(np.real(args[0].scalar()))
        return n, n
    return (
        int(np.real(args[0].scalar())),
        int(np.real(args[1].scalar())),
    )


def _unary_math(name: str, fn, needs_complex_for_negative: bool = False):
    @register(name, min_args=1, max_args=1, doc=f"elementwise {name}")
    def impl(args: list[MxArray], nargout: int) -> list[MxArray]:
        a = args[0]
        view = a.view()
        if a.is_string:
            view = np.array([[float(ord(c)) for c in a.text]])
        if needs_complex_for_negative and not np.iscomplexobj(view):
            if view.size and np.any(view < _NEGATIVE_DOMAIN[name]):
                view = view.astype(np.complex128)
        with np.errstate(divide="ignore", invalid="ignore"):
            return [from_ndarray(fn(view))]

    return impl


_NEGATIVE_DOMAIN = {"sqrt": 0.0, "log": 0.0, "log2": 0.0, "log10": 0.0, "asin": -1.0, "acos": -1.0}


# ----------------------------------------------------------------------
# Array constructors
# ----------------------------------------------------------------------
@register("zeros", 0, 2, int_scalar_affinity=True, doc="matrix of zeros")
def _zeros(args, nargout):
    r, c = _dims_from_args(args)
    return [MxArray(IntrinsicClass.INT, np.zeros((max(r, 0), max(c, 0))))]


@register("ones", 0, 2, int_scalar_affinity=True, doc="matrix of ones")
def _ones(args, nargout):
    r, c = _dims_from_args(args)
    return [MxArray(IntrinsicClass.INT, np.ones((max(r, 0), max(c, 0))))]


@register("eye", 0, 2, int_scalar_affinity=True, doc="identity matrix")
def _eye(args, nargout):
    r, c = _dims_from_args(args)
    return [MxArray(IntrinsicClass.INT, np.eye(max(r, 0), max(c, 0)))]


@register("rand", 0, 2, pure=False, int_scalar_affinity=True,
          doc="uniform random matrix")
def _rand(args, nargout):
    if args and args[0].is_string:
        if len(args) == 2:
            GLOBAL_RANDOM.seed(int(np.real(args[1].scalar())))
        return [empty()]
    r, c = _dims_from_args(args)
    return [MxArray(IntrinsicClass.REAL, GLOBAL_RANDOM.uniform(max(r, 0), max(c, 0)))]


@register("randn", 0, 2, pure=False, int_scalar_affinity=True,
          doc="normal random matrix")
def _randn(args, nargout):
    r, c = _dims_from_args(args)
    return [MxArray(IntrinsicClass.REAL, GLOBAL_RANDOM.normal(max(r, 0), max(c, 0)))]


@register("linspace", 2, 3, int_scalar_affinity=True, doc="linearly spaced vector")
def _linspace(args, nargout):
    lo = float(np.real(args[0].scalar()))
    hi = float(np.real(args[1].scalar()))
    n = int(np.real(args[2].scalar())) if len(args) > 2 else 100
    return [from_ndarray(np.linspace(lo, hi, n).reshape(1, -1))]


@register("reshape", 2, 3, doc="reshape preserving column-major order")
def _reshape(args, nargout):
    a = args[0]
    if len(args) == 2:
        r, c = _dims_from_args([args[1]])
    else:
        r, c = _dims_from_args(args[1:])
    if r * c != a.numel:
        raise DimensionError("reshape: element counts must match")
    return [from_ndarray(a.view().T.reshape(c, r).T)]


@register("repmat", 3, 3, int_scalar_affinity=True, doc="tile a matrix")
def _repmat(args, nargout):
    a = args[0]
    r = int(np.real(args[1].scalar()))
    c = int(np.real(args[2].scalar()))
    return [from_ndarray(np.tile(a.view(), (r, c)))]


# ----------------------------------------------------------------------
# Shape queries
# ----------------------------------------------------------------------
@register("size", 1, 2, max_out=2, int_scalar_affinity=True,
          doc="array dimensions")
def _size(args, nargout):
    a = args[0]
    if len(args) == 2:
        dim = int(np.real(args[1].scalar()))
        if dim == 1:
            return [make_scalar(a.rows)]
        if dim == 2:
            return [make_scalar(a.cols)]
        return [make_scalar(1)]
    if nargout >= 2:
        return [make_scalar(a.rows), make_scalar(a.cols)]
    return [from_ndarray(np.array([[float(a.rows), float(a.cols)]]))]


@register("length", 1, 1, doc="max(size(A)), 0 for empty")
def _length(args, nargout):
    a = args[0]
    if a.is_string:
        return [make_scalar(len(a.text))]
    return [make_scalar(0 if a.is_empty else max(a.rows, a.cols))]


@register("numel", 1, 1, doc="number of elements")
def _numel(args, nargout):
    a = args[0]
    return [make_scalar(len(a.text) if a.is_string else a.numel)]


@register("isempty", 1, 1, doc="true for 0-element arrays")
def _isempty(args, nargout):
    a = args[0]
    return [make_bool(len(a.text) == 0 if a.is_string else a.is_empty)]


@register("isreal", 1, 1, doc="true unless the array is complex")
def _isreal(args, nargout):
    return [make_bool(args[0].klass is not IntrinsicClass.COMPLEX)]


@register("isscalar", 1, 1, doc="true for 1x1 arrays")
def _isscalar(args, nargout):
    return [make_bool(args[0].is_scalar)]


# ----------------------------------------------------------------------
# Elementary elementwise math
# ----------------------------------------------------------------------
_unary_math("abs", np.abs)
_unary_math("sqrt", np.sqrt, needs_complex_for_negative=True)
_unary_math("exp", np.exp)
_unary_math("log", np.log, needs_complex_for_negative=True)
_unary_math("log2", np.log2, needs_complex_for_negative=True)
_unary_math("log10", np.log10, needs_complex_for_negative=True)
_unary_math("sin", np.sin)
_unary_math("cos", np.cos)
_unary_math("tan", np.tan)
_unary_math("asin", np.arcsin, needs_complex_for_negative=False)
_unary_math("acos", np.arccos, needs_complex_for_negative=False)
_unary_math("atan", np.arctan)
_unary_math("sinh", np.sinh)
_unary_math("cosh", np.cosh)
_unary_math("tanh", np.tanh)
def _matlab_round(data):
    """MATLAB rounds halves away from zero; numpy rounds halves to even."""
    return np.sign(data) * np.floor(np.abs(data) + 0.5)


_unary_math("floor", np.floor)
_unary_math("ceil", np.ceil)
_unary_math("round", _matlab_round)
_unary_math("fix", np.trunc)
_unary_math("sign", np.sign)
_unary_math("conj", np.conj)


@register("real", 1, 1, doc="real part")
def _real(args, nargout):
    return [from_ndarray(np.real(args[0].view()).copy())]


@register("imag", 1, 1, doc="imaginary part")
def _imag(args, nargout):
    return [from_ndarray(np.imag(args[0].view()).copy())]


@register("angle", 1, 1, doc="phase angle")
def _angle(args, nargout):
    return [from_ndarray(np.angle(args[0].view()))]


@register("atan2", 2, 2, doc="four-quadrant arctangent")
def _atan2(args, nargout):
    return [from_ndarray(np.arctan2(np.real(args[0].view()), np.real(args[1].view())))]


@register("mod", 2, 2, doc="modulus after flooring division")
def _mod(args, nargout):
    a, b = args[0].view(), args[1].view()
    with np.errstate(divide="ignore", invalid="ignore"):
        return [from_ndarray(np.mod(np.real(a), np.real(b)))]


@register("rem", 2, 2, doc="remainder after truncating division")
def _rem(args, nargout):
    a, b = np.real(args[0].view()), np.real(args[1].view())
    with np.errstate(divide="ignore", invalid="ignore"):
        return [from_ndarray(np.fmod(a, b))]


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def _reduce(name: str, vector_fn, matrix_fn):
    @register(name, 1, 2, max_out=2, doc=f"columnwise {name}")
    def impl(args, nargout):
        a = args[0]
        view = a.view()
        if len(args) == 2 and not args[1].is_string:
            # max(a, b) / min(a, b): elementwise two-argument form.
            if name in ("max", "min"):
                b = args[1].view()
                fn = np.maximum if name == "max" else np.minimum
                return [from_ndarray(fn(np.real(view), np.real(b)))]
        if a.is_empty:
            return [empty(), empty()][: max(nargout, 1)]
        if a.is_vector or a.is_scalar:
            flat = view.ravel()
            result = vector_fn(flat)
            outs = [make_scalar(result)]
            if nargout >= 2 and name in ("max", "min"):
                arg_fn = np.argmax if name == "max" else np.argmin
                outs.append(make_scalar(int(arg_fn(np.real(flat))) + 1))
            return outs
        result = matrix_fn(view)
        outs = [from_ndarray(np.atleast_2d(result))]
        if nargout >= 2 and name in ("max", "min"):
            arg_fn = np.argmax if name == "max" else np.argmin
            outs.append(from_ndarray(np.atleast_2d(arg_fn(np.real(view), axis=0) + 1)))
        return outs

    return impl


def _complex_max(flat):
    return flat[int(np.argmax(np.abs(flat)))] if np.iscomplexobj(flat) else np.max(flat)


def _complex_min(flat):
    return flat[int(np.argmin(np.abs(flat)))] if np.iscomplexobj(flat) else np.min(flat)


_reduce("sum", np.sum, lambda v: np.sum(v, axis=0))
_reduce("prod", np.prod, lambda v: np.prod(v, axis=0))
_reduce("mean", np.mean, lambda v: np.mean(v, axis=0))
_reduce("max", _complex_max, lambda v: np.max(np.real(v), axis=0))
_reduce("min", _complex_min, lambda v: np.min(np.real(v), axis=0))


@register("cumsum", 1, 1, doc="cumulative sum")
def _cumsum(args, nargout):
    a = args[0]
    axis = 0 if a.rows > 1 else 1
    return [from_ndarray(np.cumsum(a.view(), axis=axis))]


@register("any", 1, 1, doc="true if any element is nonzero")
def _any(args, nargout):
    a = args[0]
    if a.is_vector or a.is_scalar or a.is_empty:
        return [make_bool(bool(np.any(a.view() != 0)))]
    return [from_ndarray(np.any(a.view() != 0, axis=0).astype(float).reshape(1, -1))]


@register("all", 1, 1, doc="true if all elements are nonzero")
def _all(args, nargout):
    a = args[0]
    if a.is_vector or a.is_scalar or a.is_empty:
        return [make_bool(bool(np.all(a.view() != 0)))]
    return [from_ndarray(np.all(a.view() != 0, axis=0).astype(float).reshape(1, -1))]


@register("find", 1, 1, doc="indices of nonzero elements")
def _find(args, nargout):
    a = args[0]
    positions = np.flatnonzero(a.view().T.ravel() != 0) + 1
    if a.rows > 1:
        return [from_ndarray(positions.astype(float).reshape(-1, 1))]
    return [from_ndarray(positions.astype(float).reshape(1, -1))]


@register("sort", 1, 1, max_out=2, doc="ascending sort")
def _sort(args, nargout):
    a = args[0]
    view = np.real(a.view())
    if a.is_vector or a.is_scalar:
        order = np.argsort(view.ravel(), kind="stable")
        sorted_flat = a.view().ravel()[order]
        shape = (-1, 1) if a.rows > 1 else (1, -1)
        outs = [from_ndarray(sorted_flat.reshape(shape))]
        if nargout >= 2:
            outs.append(from_ndarray((order + 1).astype(float).reshape(shape)))
        return outs
    order = np.argsort(view, axis=0, kind="stable")
    outs = [from_ndarray(np.take_along_axis(a.view(), order, axis=0))]
    if nargout >= 2:
        outs.append(from_ndarray((order + 1).astype(float)))
    return outs


# ----------------------------------------------------------------------
# Linear algebra (delegating to the kernels in repro.runtime.linalg)
# ----------------------------------------------------------------------
@register("norm", 1, 2, doc="vector or matrix norm")
def _norm(args, nargout):
    kind: float | str = 2
    if len(args) == 2:
        kind = args[1].text if args[1].is_string else float(np.real(args[1].scalar()))
    return [make_scalar(linalg.norm(args[0], kind))]


@register("eig", 1, 1, max_out=2, doc="eigenvalues / eigenvectors")
def _eig(args, nargout):
    if nargout >= 2:
        vectors, values = linalg.eig_pair(args[0])
        return [vectors, values]
    return [linalg.eig_values(args[0])]


@register("inv", 1, 1, doc="matrix inverse")
def _inv(args, nargout):
    return [linalg.inv(args[0])]


@register("det", 1, 1, doc="determinant")
def _det(args, nargout):
    return [make_scalar(linalg.det(args[0]))]


@register("chol", 1, 1, doc="Cholesky factorization")
def _chol(args, nargout):
    return [linalg.chol(args[0])]


@register("diag", 1, 1, doc="diagonal matrix / matrix diagonal")
def _diag(args, nargout):
    return [linalg.diag(args[0])]


@register("tril", 1, 2, doc="lower-triangular part")
def _tril(args, nargout):
    k = int(np.real(args[1].scalar())) if len(args) == 2 else 0
    return [linalg.tril(args[0], k)]


@register("triu", 1, 2, doc="upper-triangular part")
def _triu(args, nargout):
    k = int(np.real(args[1].scalar())) if len(args) == 2 else 0
    return [linalg.triu(args[0], k)]


@register("dot", 2, 2, doc="vector dot product")
def _dot(args, nargout):
    return [make_scalar(linalg.dot(args[0], args[1]))]


# ----------------------------------------------------------------------
# Constants (implemented as nullary builtins, as in MATLAB)
# ----------------------------------------------------------------------
@register("pi", 0, 0, doc="3.14159...")
def _pi(args, nargout):
    return [make_scalar(float(np.pi))]


@register("eps", 0, 0, doc="floating-point relative accuracy")
def _eps(args, nargout):
    return [make_scalar(float(np.finfo(np.float64).eps))]


@register("inf", 0, 0, doc="positive infinity")
def _inf(args, nargout):
    return [make_scalar(float("inf"))]


@register("Inf", 0, 0, doc="positive infinity")
def _Inf(args, nargout):
    return [make_scalar(float("inf"))]


@register("nan", 0, 0, doc="not-a-number")
def _nan(args, nargout):
    return [make_scalar(float("nan"))]


@register("NaN", 0, 0, doc="not-a-number")
def _NaN(args, nargout):
    return [make_scalar(float("nan"))]


@register("i", 0, 0, doc="imaginary unit")
def _imag_unit(args, nargout):
    return [make_scalar(1j)]


@register("j", 0, 0, doc="imaginary unit")
def _imag_unit_j(args, nargout):
    return [make_scalar(1j)]


# ----------------------------------------------------------------------
# Output / errors
# ----------------------------------------------------------------------
@register("disp", 1, 1, pure=False, doc="display a value")
def _disp(args, nargout, sink=None):
    text = args[0].text + "\n" if args[0].is_string else display.format_value(args[0])
    if sink is not None:
        sink.write(text)
    return []


@register("fprintf", 1, 8, pure=False, doc="formatted output")
def _fprintf(args, nargout, sink=None):
    fmt = args[0]
    if not fmt.is_string:
        raise RuntimeMatlabError("fprintf: first argument must be a format string")
    text = display.sprintf(fmt.text, list(args[1:]))
    if sink is not None:
        sink.write(text)
    return []


@register("sprintf", 1, 8, doc="formatted string")
def _sprintf(args, nargout):
    fmt = args[0]
    if not fmt.is_string:
        raise RuntimeMatlabError("sprintf: first argument must be a format string")
    return [make_string(display.sprintf(fmt.text, list(args[1:])))]


@register("num2str", 1, 1, doc="number to string")
def _num2str(args, nargout):
    return [make_string(display.format_scalar(args[0].scalar()))]


@register("error", 1, 2, pure=False, doc="raise a MATLAB error")
def _error(args, nargout):
    message = args[0].text if args[0].is_string else display.format_value(args[0])
    raise RuntimeMatlabError(message)


@register("strcmp", 2, 2, doc="string equality")
def _strcmp(args, nargout):
    a, b = args
    return [make_bool(a.is_string and b.is_string and a.text == b.text)]
