"""Constructors and coercions between host values and MxArray boxes."""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.runtime.mxarray import IntrinsicClass, MxArray, classify_ndarray


def make_scalar(value: float | int | complex) -> MxArray:
    """Box a host scalar with the most precise intrinsic class."""
    if isinstance(value, bool):
        return make_bool(value)
    if isinstance(value, complex):
        if value.imag == 0.0:
            value = value.real
        else:
            return MxArray(
                IntrinsicClass.COMPLEX,
                np.array([[value]], dtype=np.complex128),
            )
    value = float(value)
    klass = (
        IntrinsicClass.INT
        if np.isfinite(value) and value == int(value)
        else IntrinsicClass.REAL
    )
    return MxArray(klass, np.array([[value]], dtype=np.float64))


def make_bool(value: bool) -> MxArray:
    return MxArray(
        IntrinsicClass.BOOL, np.array([[1.0 if value else 0.0]])
    )


def make_string(text: str) -> MxArray:
    return MxArray(IntrinsicClass.STRING, text=text)


def make_matrix(rows: list[list[float | complex]]) -> MxArray:
    """Box a rectangular nested list."""
    if not rows:
        return empty()
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise DimensionError("matrix rows have inconsistent lengths")
    data = np.array(rows)
    if data.dtype == np.bool_ or data.dtype.kind in "iu":
        data = data.astype(np.float64)
    return MxArray(classify_ndarray(data), data)


def empty() -> MxArray:
    """The 0x0 empty array ``[]``."""
    return MxArray(IntrinsicClass.REAL, np.zeros((0, 0)))


def from_ndarray(data: np.ndarray, klass: IntrinsicClass | None = None) -> MxArray:
    """Box a numpy array, classifying it unless a class is forced."""
    data = np.atleast_2d(np.asarray(data))
    if data.dtype == np.bool_:
        return MxArray(IntrinsicClass.BOOL, data.astype(np.float64))
    if data.dtype.kind in "iu":
        data = data.astype(np.float64)
    if data.dtype.kind == "c" and klass is None:
        return MxArray(IntrinsicClass.COMPLEX, data.astype(np.complex128))
    if klass is None:
        klass = classify_ndarray(data)
    dtype = np.complex128 if klass is IntrinsicClass.COMPLEX else np.float64
    return MxArray(klass, data.astype(dtype))


def from_python(value) -> MxArray:
    """Coerce an arbitrary host value into an MxArray.

    Accepts scalars, strings, nested lists, numpy arrays and MxArrays
    themselves (returned as-is).  This is the entry point the public
    :class:`~repro.core.majic.MajicSession` API uses for call arguments.
    """
    if isinstance(value, MxArray):
        return value
    if isinstance(value, str):
        return make_string(value)
    if isinstance(value, bool):
        return make_bool(value)
    if isinstance(value, (int, float, complex)):
        return make_scalar(value)
    if isinstance(value, np.ndarray):
        return from_ndarray(value)
    if isinstance(value, (list, tuple)):
        seq = list(value)
        if not seq:
            return empty()
        if isinstance(seq[0], (list, tuple)):
            return make_matrix([list(r) for r in seq])
        return make_matrix([seq])
    raise TypeError(f"cannot convert {type(value).__name__} to MxArray")


def to_python(value: MxArray):
    """Unbox an MxArray into the natural host value.

    Scalars become float/complex/bool, strings become str, everything else
    becomes a numpy array (a copy of the logical view).
    """
    if not isinstance(value, MxArray):
        return value
    if value.is_string:
        return value.text
    if value.is_scalar:
        if value.klass is IntrinsicClass.BOOL:
            return bool(value.data[0, 0])
        return value.scalar()
    return value.view().copy()
