"""MATLAB value runtime: boxed arrays, generic operators, builtins.

This package is the substrate under every execution engine in PyMaJIC.  The
interpreter manipulates :class:`~repro.runtime.mxarray.MxArray` values through
the fully generic (and therefore slow) operators in
:mod:`repro.runtime.elementwise`; compiled code produced by the JIT and
speculative code generators bypasses the generic layer wherever type inference
proved it safe to do so.
"""

from repro.runtime.mxarray import MxArray, IntrinsicClass
from repro.runtime.values import (
    from_python,
    to_python,
    make_scalar,
    make_bool,
    make_string,
    make_matrix,
    empty,
)
from repro.runtime.builtins import BUILTINS, is_builtin, call_builtin

__all__ = [
    "MxArray",
    "IntrinsicClass",
    "from_python",
    "to_python",
    "make_scalar",
    "make_bool",
    "make_string",
    "make_matrix",
    "empty",
    "BUILTINS",
    "is_builtin",
    "call_builtin",
]
