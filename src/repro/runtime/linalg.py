"""Dense linear-algebra kernels (the BLAS/LAPACK substrate).

The paper's code selector fuses expression trees like ``a*X + b*C*Y`` into a
single ``dgemv`` call (Section 2.6.1); this module supplies that routine and
the other precompiled library kernels the benchmarks rely on (``eig``,
``norm``, ``mldivide``).  They are deliberately implemented over numpy: the
paper's point is that *library* time is unaffected by compilation, and numpy
gives the interpreter and every compiled tier the same library speed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError, RuntimeMatlabError
from repro.runtime.mxarray import IntrinsicClass, MxArray
from repro.runtime.values import from_ndarray


def dgemv(alpha: float, a: MxArray, x: MxArray, beta: float, y: MxArray) -> MxArray:
    """``alpha*A*x + beta*y`` as one fused kernel (BLAS dgemv)."""
    av, xv, yv = a.view(), x.view(), y.view()
    if av.shape[1] != xv.shape[0]:
        raise DimensionError("dgemv: inner dimensions must agree")
    if beta == 0.0:
        return from_ndarray(alpha * (av @ xv))
    if (av.shape[0], xv.shape[1]) != yv.shape:
        raise DimensionError("dgemv: result and y dimensions must agree")
    return from_ndarray(alpha * (av @ xv) + beta * yv)


def dgemm(alpha: float, a: MxArray, b: MxArray, beta: float, c: MxArray) -> MxArray:
    """``alpha*A*B + beta*C`` as one fused kernel (BLAS dgemm)."""
    av, bv = a.view(), b.view()
    if av.shape[1] != bv.shape[0]:
        raise DimensionError("dgemm: inner dimensions must agree")
    if beta == 0.0:
        return from_ndarray(alpha * (av @ bv))
    return from_ndarray(alpha * (av @ bv) + beta * c.view())


def eig_values(a: MxArray) -> MxArray:
    """``e = eig(A)`` — eigenvalues as a column vector.

    Symmetric/Hermitian inputs produce real ascending eigenvalues (as in
    MATLAB); general inputs may produce complex results.
    """
    av = a.view()
    if av.shape[0] != av.shape[1]:
        raise DimensionError("eig: matrix must be square")
    if np.allclose(av, np.conj(av.T)):
        values = np.linalg.eigvalsh(av)
    else:
        values = np.linalg.eigvals(av)
        if np.all(values.imag == 0):
            values = values.real
    return from_ndarray(values.reshape(-1, 1))


def eig_pair(a: MxArray) -> tuple[MxArray, MxArray]:
    """``[V, D] = eig(A)`` — eigenvectors and diagonal eigenvalue matrix."""
    av = a.view()
    if av.shape[0] != av.shape[1]:
        raise DimensionError("eig: matrix must be square")
    if np.allclose(av, np.conj(av.T)):
        values, vectors = np.linalg.eigh(av)
    else:
        values, vectors = np.linalg.eig(av)
        if np.all(values.imag == 0) and np.all(vectors.imag == 0):
            values, vectors = values.real, vectors.real
    return from_ndarray(vectors), from_ndarray(np.diag(values))


def norm(a: MxArray, kind: float | str = 2) -> float:
    """Vector/matrix norms with MATLAB's defaults and name set."""
    av = a.view()
    if a.is_vector or a.is_scalar or a.is_empty:
        flat = av.ravel()
        if kind == 2:
            return float(np.linalg.norm(flat, 2))
        if kind == 1:
            return float(np.sum(np.abs(flat)))
        if kind in ("inf", np.inf):
            return float(np.max(np.abs(flat))) if flat.size else 0.0
        if kind == "fro":
            return float(np.linalg.norm(flat, 2))
        return float(np.sum(np.abs(flat) ** kind) ** (1.0 / kind))
    if kind == 2:
        return float(np.linalg.norm(av, 2))
    if kind == 1:
        return float(np.linalg.norm(av, 1))
    if kind in ("inf", np.inf):
        return float(np.linalg.norm(av, np.inf))
    if kind == "fro":
        return float(np.linalg.norm(av, "fro"))
    raise RuntimeMatlabError(f"norm: unsupported norm kind {kind!r}")


def inv(a: MxArray) -> MxArray:
    av = a.view()
    if av.shape[0] != av.shape[1]:
        raise DimensionError("inv: matrix must be square")
    try:
        return from_ndarray(np.linalg.inv(av))
    except np.linalg.LinAlgError as exc:
        raise RuntimeMatlabError(f"inv failed: {exc}") from exc


def det(a: MxArray) -> float | complex:
    av = a.view()
    if av.shape[0] != av.shape[1]:
        raise DimensionError("det: matrix must be square")
    value = np.linalg.det(av)
    return complex(value) if np.iscomplexobj(av) else float(value)


def chol(a: MxArray) -> MxArray:
    """Upper-triangular Cholesky factor, MATLAB's ``chol`` convention."""
    av = a.view()
    try:
        return from_ndarray(np.linalg.cholesky(av).T.conj())
    except np.linalg.LinAlgError as exc:
        raise RuntimeMatlabError(
            "chol: matrix must be positive definite"
        ) from exc


def diag(a: MxArray) -> MxArray:
    """MATLAB ``diag``: vector -> diagonal matrix, matrix -> diagonal."""
    av = a.view()
    if a.is_vector:
        return from_ndarray(np.diag(av.ravel()))
    return from_ndarray(np.diag(av).reshape(-1, 1))


def tril(a: MxArray, k: int = 0) -> MxArray:
    return from_ndarray(np.tril(a.view(), k))


def triu(a: MxArray, k: int = 0) -> MxArray:
    return from_ndarray(np.triu(a.view(), k))


def dot(a: MxArray, b: MxArray) -> float | complex:
    av, bv = a.view().ravel(), b.view().ravel()
    if av.size != bv.size:
        raise DimensionError("dot: vectors must have the same length")
    value = np.vdot(av, bv)
    return complex(value) if np.iscomplexobj(value) else float(value)
