"""Formatting of MxArray values for display (``disp``, unterminated
statements, ``fprintf``/``sprintf``).

Output is routed through an :class:`OutputSink` so that the engines (and
tests) can capture what a program printed instead of writing to stdout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RuntimeMatlabError
from repro.runtime.mxarray import IntrinsicClass, MxArray


class OutputSink:
    """Collects program output; ``str(sink)`` yields the transcript."""

    def __init__(self):
        self._chunks: list[str] = []

    def write(self, text: str) -> None:
        self._chunks.append(text)

    def getvalue(self) -> str:
        return "".join(self._chunks)

    def clear(self) -> None:
        self._chunks.clear()

    def mark(self) -> int:
        """Position token for :meth:`truncate` (deopt re-execution)."""
        return len(self._chunks)

    def truncate(self, mark: int) -> None:
        """Drop everything written after ``mark`` — a deoptimized compiled
        call may have printed before faulting; the interpreter re-run
        produces the authoritative transcript."""
        del self._chunks[mark:]

    def __str__(self) -> str:
        return self.getvalue()


def format_scalar(value: float | complex) -> str:
    """Format one numeric element roughly like MATLAB's ``format short``."""
    if isinstance(value, complex):
        real = format_scalar(value.real)
        sign = "+" if value.imag >= 0 else "-"
        imag = format_scalar(abs(value.imag))
        return f"{real} {sign} {imag}i"
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4f}"


def format_value(value: MxArray, name: str | None = None) -> str:
    """Render an assignment echo, e.g. ``x =\\n     3``."""
    header = f"{name} =\n" if name else ""
    if value.is_string:
        return f"{header}{value.text}\n"
    if value.is_empty:
        return f"{header}     []\n"
    if value.is_scalar:
        return f"{header}     {format_scalar(value.scalar())}\n"
    view = value.view()
    lines = []
    for r in range(value.rows):
        cells = [format_scalar(complex(view[r, c]) if value.klass is IntrinsicClass.COMPLEX else float(view[r, c]))
                 for c in range(value.cols)]
        lines.append("     " + "   ".join(cells))
    return header + "\n".join(lines) + "\n"


def sprintf(fmt: str, args: list[MxArray]) -> str:
    """MATLAB ``sprintf``: C-style format, arguments consumed cyclically.

    Supports the subset of conversions the benchmarks use: %d %i %f %e %g
    %s %c %% and the escapes \\n \\t \\\\.
    """
    fmt = (
        fmt.replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace("\\\\", "\\")
    )
    flat: list[float | complex | str] = []
    for boxed in args:
        if boxed.is_string:
            flat.append(boxed.text)
        else:
            flat.extend(boxed.view().T.ravel().tolist())
    if not flat:
        return fmt.replace("%%", "%")
    out: list[str] = []
    cursor = 0
    position = 0
    consumed_any = True
    # MATLAB reapplies the whole format until arguments run out.
    while True:
        position = 0
        started = cursor
        while position < len(fmt):
            ch = fmt[position]
            if ch != "%":
                out.append(ch)
                position += 1
                continue
            if position + 1 < len(fmt) and fmt[position + 1] == "%":
                out.append("%")
                position += 2
                continue
            end = position + 1
            while end < len(fmt) and fmt[end] not in "diouxXeEfgGsc":
                end += 1
            if end >= len(fmt):
                raise RuntimeMatlabError(f"sprintf: bad format {fmt!r}")
            spec = fmt[position: end + 1]
            conv = fmt[end]
            if cursor >= len(flat):
                position = end + 1
                continue
            arg = flat[cursor]
            cursor += 1
            if conv in "diouxX":
                value = int(np.real(arg)) if not isinstance(arg, str) else arg
                out.append(spec.replace("i", "d") % value)
            elif conv in "eEfgG":
                value = float(np.real(arg)) if not isinstance(arg, str) else arg
                out.append(spec % value)
            elif conv == "s":
                out.append(spec % (arg if isinstance(arg, str) else format_scalar(arg)))
            elif conv == "c":
                if isinstance(arg, str):
                    out.append(arg[:1])
                else:
                    out.append(chr(int(np.real(arg))))
            position = end + 1
        if cursor >= len(flat) or cursor == started:
            break
    return "".join(out)
