"""Generic polymorphic operators over MxArray boxes (the ``mlf*`` layer).

These functions are the analogue of the MATLAB C library operators the
paper's generic generated code calls (``mlfPlus``, ``mlfTimes``, ... in
Figure 3).  They perform full runtime dispatch: class checks, shape
conformance checks, scalar broadcasting, and complex widening.  Both the
interpreter and the mcc baseline route *every* operation through this layer;
that per-operation overhead is precisely what MaJIC's compiled code removes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import DimensionError, RuntimeMatlabError
from repro.runtime.mxarray import IntrinsicClass, MxArray
from repro.runtime.values import from_ndarray, make_bool, make_scalar


def _string_to_numeric(a: MxArray) -> MxArray:
    """MATLAB silently treats strings as char-code row vectors in math."""
    codes = np.array([[float(ord(ch)) for ch in a.text]])
    if codes.size == 0:
        codes = np.zeros((0, 0))
    return MxArray(IntrinsicClass.INT, codes)


def _numeric(a: MxArray) -> MxArray:
    if a.is_string:
        return _string_to_numeric(a)
    return a


def _binary_views(a: MxArray, b: MxArray, opname: str):
    """Conformance-check two operands, returning broadcastable views."""
    a, b = _numeric(a), _numeric(b)
    av, bv = a.view(), b.view()
    if a.is_scalar or b.is_scalar or a.shape == b.shape:
        return av, bv
    raise DimensionError(
        f"matrix dimensions must agree in '{opname}' "
        f"({a.rows}x{a.cols} vs {b.rows}x{b.cols})"
    )


def _result_box(data: np.ndarray) -> MxArray:
    return from_ndarray(data)


def _elementwise(opname: str, fn: Callable) -> Callable[[MxArray, MxArray], MxArray]:
    def op(a: MxArray, b: MxArray) -> MxArray:
        av, bv = _binary_views(a, b, opname)
        return _result_box(fn(av, bv))

    op.__name__ = f"mlf_{opname}"
    return op


mlf_plus = _elementwise("plus", np.add)
mlf_minus = _elementwise("minus", np.subtract)
mlf_times = _elementwise("times", np.multiply)          # .*


def mlf_rdivide(a: MxArray, b: MxArray) -> MxArray:     # ./
    av, bv = _binary_views(a, b, "rdivide")
    with np.errstate(divide="ignore", invalid="ignore"):
        return _result_box(np.true_divide(av, bv))


def mlf_ldivide(a: MxArray, b: MxArray) -> MxArray:     # .\
    return mlf_rdivide(b, a)


def mlf_power(a: MxArray, b: MxArray) -> MxArray:       # .^
    av, bv = _binary_views(a, b, "power")
    negative_base = np.any(np.real(av) < 0) and not np.iscomplexobj(av)
    fractional_exp = np.any(bv != np.floor(np.real(bv)))
    if negative_base and fractional_exp:
        av = av.astype(np.complex128)
    with np.errstate(divide="ignore", invalid="ignore"):
        return _result_box(np.power(av, bv))


def mlf_mtimes(a: MxArray, b: MxArray) -> MxArray:      # *
    a, b = _numeric(a), _numeric(b)
    if a.is_scalar or b.is_scalar:
        return mlf_times(a, b)
    if a.cols != b.rows:
        raise DimensionError(
            f"inner matrix dimensions must agree in '*' "
            f"({a.rows}x{a.cols} vs {b.rows}x{b.cols})"
        )
    return _result_box(a.view() @ b.view())


def mlf_mrdivide(a: MxArray, b: MxArray) -> MxArray:    # /
    a, b = _numeric(a), _numeric(b)
    if b.is_scalar:
        return mlf_rdivide(a, b)
    # A/B == (B' \ A')'
    return mlf_transpose(mlf_mldivide(mlf_transpose(b), mlf_transpose(a)))


def mlf_mldivide(a: MxArray, b: MxArray) -> MxArray:    # \
    a, b = _numeric(a), _numeric(b)
    if a.is_scalar:
        return mlf_rdivide(b, a)
    if a.rows != b.rows:
        raise DimensionError(
            "matrix dimensions must agree in '\\' "
            f"({a.rows}x{a.cols} vs {b.rows}x{b.cols})"
        )
    av, bv = a.view(), b.view()
    try:
        if a.rows == a.cols:
            solution = np.linalg.solve(av, bv)
        else:
            solution, *_ = np.linalg.lstsq(av, bv, rcond=None)
    except np.linalg.LinAlgError as exc:
        raise RuntimeMatlabError(f"mldivide failed: {exc}") from exc
    return _result_box(solution)


def mlf_mpower(a: MxArray, b: MxArray) -> MxArray:      # ^
    a, b = _numeric(a), _numeric(b)
    if a.is_scalar and b.is_scalar:
        return mlf_power(a, b)
    if a.rows == a.cols and b.is_scalar:
        exponent = b.scalar()
        if exponent == int(np.real(exponent)):
            return _result_box(
                np.linalg.matrix_power(a.view(), int(np.real(exponent)))
            )
    raise DimensionError("unsupported operands for '^'")


def mlf_uminus(a: MxArray) -> MxArray:
    a = _numeric(a)
    return _result_box(-a.view())


def mlf_uplus(a: MxArray) -> MxArray:
    return _numeric(a).copy()


def mlf_transpose(a: MxArray) -> MxArray:               # .'
    if a.is_string:
        a = _string_to_numeric(a)
    return _result_box(a.view().T.copy())


def mlf_ctranspose(a: MxArray) -> MxArray:              # '
    if a.is_string:
        a = _string_to_numeric(a)
    return _result_box(np.conj(a.view()).T.copy())


# ----------------------------------------------------------------------
# Relational operators: MATLAB compares real parts only (Section 2.5:
# "relational operators disregard the imaginary components").
# ----------------------------------------------------------------------
def _relational(opname: str, fn: Callable) -> Callable:
    def op(a: MxArray, b: MxArray) -> MxArray:
        if a.is_string and b.is_string:
            if opname == "eq":
                return make_bool(a.text == b.text)
            if opname == "ne":
                return make_bool(a.text != b.text)
        av, bv = _binary_views(a, b, opname)
        result = fn(np.real(av), np.real(bv))
        boxed = _result_box(result.astype(np.float64))
        boxed.klass = IntrinsicClass.BOOL
        return boxed

    op.__name__ = f"mlf_{opname}"
    return op


mlf_lt = _relational("lt", np.less)
mlf_le = _relational("le", np.less_equal)
mlf_gt = _relational("gt", np.greater)
mlf_ge = _relational("ge", np.greater_equal)


def mlf_eq(a: MxArray, b: MxArray) -> MxArray:
    if a.is_string and b.is_string:
        return make_bool(a.text == b.text)
    av, bv = _binary_views(a, b, "eq")
    boxed = _result_box(np.equal(av, bv).astype(np.float64))
    boxed.klass = IntrinsicClass.BOOL
    return boxed


def mlf_ne(a: MxArray, b: MxArray) -> MxArray:
    if a.is_string and b.is_string:
        return make_bool(a.text != b.text)
    av, bv = _binary_views(a, b, "ne")
    boxed = _result_box(np.not_equal(av, bv).astype(np.float64))
    boxed.klass = IntrinsicClass.BOOL
    return boxed


# ----------------------------------------------------------------------
# Logical operators (element-wise & | ~ plus short-circuit handled by the
# engines through MxArray.bool_value()).
# ----------------------------------------------------------------------
def _logical(opname: str, fn: Callable) -> Callable:
    def op(a: MxArray, b: MxArray) -> MxArray:
        av, bv = _binary_views(a, b, opname)
        result = fn(av != 0, bv != 0).astype(np.float64)
        boxed = _result_box(result)
        boxed.klass = IntrinsicClass.BOOL
        return boxed

    op.__name__ = f"mlf_{opname}"
    return op


mlf_and = _logical("and", np.logical_and)
mlf_or = _logical("or", np.logical_or)


def mlf_not(a: MxArray) -> MxArray:
    a = _numeric(a)
    boxed = _result_box((a.view() == 0).astype(np.float64))
    boxed.klass = IntrinsicClass.BOOL
    return boxed


# ----------------------------------------------------------------------
# Range (colon) and concatenation
# ----------------------------------------------------------------------
def mlf_colon(start: MxArray, step: MxArray, stop: MxArray | None = None) -> MxArray:
    """``start:stop`` or ``start:step:stop``.

    MATLAB silently uses only the real part of the first element of each
    operand (the behaviour Section 2.5 turns into a speculation hint).
    """
    if stop is None:
        start, stop = start, step
        step_value = 1.0
    else:
        step_value = float(np.real(_numeric(step).view().flat[0]))
    lo = float(np.real(_numeric(start).view().flat[0]))
    hi = float(np.real(_numeric(stop).view().flat[0]))
    if step_value == 0:
        return from_ndarray(np.zeros((1, 0)))
    count = int(np.floor((hi - lo) / step_value + 1e-10)) + 1
    if count <= 0:
        return from_ndarray(np.zeros((1, 0)))
    data = lo + step_value * np.arange(count, dtype=np.float64)
    return _result_box(data.reshape(1, -1))


def mlf_horzcat(parts: list[MxArray]) -> MxArray:
    """Row-building bracket operator ``[a b c]``."""
    parts = [p for p in parts if not (p.is_string is False and p.is_empty)]
    if not parts:
        return from_ndarray(np.zeros((0, 0)))
    if all(p.is_string for p in parts):
        return MxArray(IntrinsicClass.STRING, text="".join(p.text for p in parts))
    views = [_numeric(p).view() for p in parts]
    height = views[0].shape[0]
    if any(v.shape[0] != height for v in views):
        raise DimensionError("horizontal concatenation: row counts differ")
    return _result_box(np.hstack(views))


def mlf_vertcat(rows: list[MxArray]) -> MxArray:
    """Column-building bracket operator ``[a; b; c]``."""
    rows = [r for r in rows if not r.is_empty or r.is_string]
    if not rows:
        return from_ndarray(np.zeros((0, 0)))
    views = [_numeric(r).view() for r in rows]
    width = views[0].shape[1]
    if any(v.shape[1] != width for v in views):
        raise DimensionError("vertical concatenation: column counts differ")
    return _result_box(np.vstack(views))


# ----------------------------------------------------------------------
# Generic indexed load/store over index *arrays* (vector subscripts).
# Scalar subscripts go through MxArray.get*/set* directly.
# ----------------------------------------------------------------------
def _linear_positions(index: MxArray, limit: int, grow: bool) -> np.ndarray:
    if index.klass is IntrinsicClass.BOOL:
        positions = np.flatnonzero(index.view().T.ravel() != 0) + 1
    else:
        positions = np.real(index.view().T.ravel())
    integral = np.floor(positions)
    if positions.size and (
        np.any(integral != positions) or np.any(positions < 1)
    ):
        raise RuntimeMatlabError("subscript indices must be positive integers")
    positions = integral.astype(np.int64)
    if not grow and positions.size and positions.max() > limit:
        raise RuntimeMatlabError(
            f"index {int(positions.max())} exceeds matrix dimension ({limit})"
        )
    return positions


def mlf_index(a: MxArray, *indices: MxArray) -> MxArray:
    """Generic checked indexed load: ``A(idx)`` or ``A(idx1, idx2)``.

    Vector subscripts produce subarrays; the shape rules follow MATLAB
    (linear indexing of a matrix with a vector yields a shape matching the
    index's orientation).
    """
    if a.is_string:
        positions = _linear_positions(indices[0], a.cols, grow=False)
        return MxArray(
            IntrinsicClass.STRING,
            text="".join(a.text[p - 1] for p in positions),
        )
    view = a.view()
    if len(indices) == 1:
        idx = indices[0]
        positions = _linear_positions(idx, a.numel, grow=False)
        flat = view.T.ravel()[positions - 1]
        if idx.klass is IntrinsicClass.BOOL or a.is_vector and a.rows > 1:
            shaped = flat.reshape(-1, 1)
        elif idx.rows > 1 and not a.is_vector:
            shaped = flat.reshape(-1, 1)
        else:
            shaped = flat.reshape(1, -1)
        if idx.is_scalar:
            shaped = flat.reshape(1, 1)
        elif not a.is_vector and idx.rows > 1 and idx.cols > 1:
            shaped = flat.reshape(idx.cols, idx.rows).T
        return _result_box(shaped)
    rows = _linear_positions(indices[0], a.rows, grow=False)
    cols = _linear_positions(indices[1], a.cols, grow=False)
    return _result_box(view[np.ix_(rows - 1, cols - 1)])


def mlf_index_all(a: MxArray) -> MxArray:
    """``A(:)`` — column-major flattening."""
    return _result_box(a.view().T.reshape(-1, 1).copy())


def mlf_store(a: MxArray, value: MxArray, *indices: MxArray) -> MxArray:
    """Generic checked indexed store, growing ``a`` as needed.

    Returns the (possibly reallocated) array; callers rebind.
    """
    if len(indices) == 1:
        positions = _linear_positions(indices[0], a.numel, grow=True)
        if positions.size == 0:
            return a
        top = int(positions.max())
        if top > a.numel:
            if a.rows > 1 and a.cols > 1:
                raise RuntimeMatlabError(
                    "in an assignment A(I) = B, a matrix A cannot be resized"
                )
            if a.rows > 1:
                a._grow(top, max(a.cols, 1))
            else:
                a._grow(max(a.rows, 1), top)
        values = _store_values(value, positions.size)
        if np.iscomplexobj(values) and a.klass is not IntrinsicClass.COMPLEX:
            a._widen_to_complex()
        rows_idx = (positions - 1) % a.rows
        cols_idx = (positions - 1) // a.rows
        a.data[rows_idx, cols_idx] = values
    else:
        rows = _linear_positions(indices[0], a.rows, grow=True)
        cols = _linear_positions(indices[1], a.cols, grow=True)
        if rows.size == 0 or cols.size == 0:
            return a
        if rows.max() > a.rows or cols.max() > a.cols:
            a._grow(max(int(rows.max()), a.rows), max(int(cols.max()), a.cols))
        values = _store_values(value, rows.size * cols.size)
        if np.iscomplexobj(values) and a.klass is not IntrinsicClass.COMPLEX:
            a._widen_to_complex()
        a.data[np.ix_(rows - 1, cols - 1)] = values.reshape(rows.size, cols.size)
    a.refresh_class()
    return a


def _store_values(value: MxArray, count: int) -> np.ndarray:
    source = _numeric(value)
    flat = source.view().T.ravel()
    if flat.size == 1 and count != 1:
        return np.repeat(flat, count)
    if flat.size != count:
        raise DimensionError(
            "in an assignment A(I) = B, the number of elements in B and I "
            "must be the same"
        )
    return flat
