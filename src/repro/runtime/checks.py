"""Subscript-check helpers used by generated code.

MaJIC-generated code accesses array elements through one of two paths:

* **checked** — the helpers in this module, which implement the subscript
  checks MATLAB mandates on every array access (positive integral index,
  bounds check on loads, growth on stores);
* **unchecked** — direct buffer access emitted inline when JIT type
  inference proved the subscript to be within bounds (Section 2.4,
  "Subscript check removal").

Keeping the checked path in one tiny module makes the cost of a check
explicit and lets tests count exactly which accesses were compiled
unchecked.
"""

from __future__ import annotations

from repro.errors import SubscriptError
from repro.runtime.mxarray import MxArray


def checked_load1(a: MxArray, k: float) -> float | complex:
    """Checked linear load ``A(k)`` for a scalar subscript."""
    return a.get_linear(k)


def checked_load2(a: MxArray, i: float, j: float) -> float | complex:
    """Checked 2-D load ``A(i, j)`` for scalar subscripts."""
    return a.get2(i, j)


def checked_store1(a: MxArray, k: float, value) -> None:
    """Checked linear store ``A(k) = v`` with growth-on-overflow."""
    a.set_linear(k, value)


def checked_store2(a: MxArray, i: float, j: float, value) -> None:
    """Checked 2-D store ``A(i, j) = v`` with growth-on-overflow."""
    a.set2(i, j, value)


def unchecked_store_grow2(a: MxArray, i: float, j: float, value) -> None:
    """Store with the bounds *error* check removed but growth retained.

    Used where range analysis proved the subscript positive and integral but
    could not bound it by the array extent (the array may legitimately
    grow).  Oversizing (MxArray._grow) keeps repeated growth cheap.
    """
    ri, ci = int(i), int(j)
    if ri > a.rows or ci > a.cols:
        a._grow(max(ri, a.rows), max(ci, a.cols))
    if isinstance(value, complex):
        a._store(ri - 1, ci - 1, value)  # may widen the buffer
        return
    a.data[ri - 1, ci - 1] = value


def unchecked_store_grow1(a: MxArray, k: float, value) -> None:
    """Linear variant of :func:`unchecked_store_grow2` (vectors only)."""
    index = int(k)
    if index > a.numel:
        if a.rows > 1:
            a._grow(index, max(a.cols, 1))
        else:
            a._grow(max(a.rows, 1), index)
    index -= 1
    if isinstance(value, complex):
        a._store(index % a.rows, index // a.rows, value)
        return
    a.data[index % a.rows, index // a.rows] = value


def require_scalar_index(value: float) -> int:
    """Validate a subscript as a positive integer, returning it 0-based."""
    index = int(value)
    if index != value or index < 1:
        raise SubscriptError("subscript indices must be positive integers")
    return index - 1
