"""The MxArray boxed value type.

Every value in interpreted MATLAB is a two-dimensional array carrying an
intrinsic class tag.  This mirrors the ``mxArray`` structure of the MATLAB C
library that the paper's generic generated code calls into (Figure 3,
``poly4_sig1``).

Design notes
------------
* Data is stored in a numpy array whose *capacity* may exceed the logical
  ``rows x cols`` size.  The slack is how the paper's "oversizing"
  optimization (Section 2.6.1) is implemented: growing an array whose target
  still fits the capacity only updates the logical dimensions.  ``size``
  queries always report the logical dimensions, never the capacity, which is
  the paper's correctness requirement for oversizing.
* Arrays use MATLAB semantics throughout: 1-based subscripts, column-major
  linear indexing, automatic zero-filled growth when a store lands out of
  bounds.
* Values are conceptually immutable-by-value (MATLAB is call-by-value); the
  engines enforce copy-on-assignment where required, the box itself offers
  :meth:`copy`.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import DimensionError, SubscriptError


class IntrinsicClass(enum.IntEnum):
    """Runtime intrinsic classes, ordered consistently with the Li lattice.

    ``BOOL < INT < REAL < COMPLEX`` is the numeric chain of the paper's
    intrinsic-type lattice; ``STRING`` sits on its own branch.
    """

    BOOL = 1
    INT = 2
    REAL = 3
    COMPLEX = 4
    STRING = 5

    @property
    def is_numeric(self) -> bool:
        return self is not IntrinsicClass.STRING


_NUMERIC_DTYPE = {
    IntrinsicClass.BOOL: np.float64,
    IntrinsicClass.INT: np.float64,
    IntrinsicClass.REAL: np.float64,
    IntrinsicClass.COMPLEX: np.complex128,
}

# Arrays above this element count are never oversized (Section 2.6.1:
# "Large arrays are never oversized").
OVERSIZE_LIMIT = 1 << 20
# Fraction of extra capacity allocated when an array is grown ("about 10%
# more space ... than strictly necessary").
OVERSIZE_SLACK = 0.10


def classify_ndarray(data: np.ndarray) -> IntrinsicClass:
    """Derive the most precise intrinsic class describing ``data``."""
    if np.iscomplexobj(data):
        if data.size and np.all(data.imag == 0.0):
            data = data.real
        else:
            return IntrinsicClass.COMPLEX
    if data.dtype == np.bool_:
        return IntrinsicClass.BOOL
    if data.size == 0:
        return IntrinsicClass.REAL
    finite = np.isfinite(data)
    if np.all(finite) and np.all(data == np.floor(data)):
        if np.all((data == 0.0) | (data == 1.0)):
            # Integral 0/1 data is reported as INT, not BOOL: MATLAB bools
            # only arise from logical operators, which tag them explicitly.
            return IntrinsicClass.INT
        return IntrinsicClass.INT
    return IntrinsicClass.REAL


class MxArray:
    """A boxed MATLAB value: intrinsic class + logical 2-D shape + data.

    Attributes
    ----------
    klass:
        The runtime :class:`IntrinsicClass` tag.
    rows, cols:
        Logical dimensions.  The backing numpy buffer may be larger
        (oversizing); use :meth:`view` for the logically valid region.
    data:
        Backing buffer.  ``data.shape == (capacity_rows, capacity_cols)``.
    text:
        For ``STRING`` values only, the character payload.
    """

    __slots__ = ("klass", "rows", "cols", "data", "text")

    def __init__(
        self,
        klass: IntrinsicClass,
        data: np.ndarray | None = None,
        text: str | None = None,
        rows: int | None = None,
        cols: int | None = None,
    ):
        self.klass = klass
        if klass is IntrinsicClass.STRING:
            self.text = text if text is not None else ""
            self.data = np.empty((0, 0))
            self.rows = 1 if self.text else 0
            self.cols = len(self.text)
            return
        self.text = None
        if data is None:
            data = np.zeros((0, 0))
        if data.ndim != 2:
            data = np.atleast_2d(data)
        self.data = data
        self.rows = data.shape[0] if rows is None else rows
        self.cols = data.shape[1] if cols is None else cols

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def numel(self) -> int:
        return self.rows * self.cols

    @property
    def is_scalar(self) -> bool:
        return self.rows == 1 and self.cols == 1

    @property
    def is_empty(self) -> bool:
        return self.numel == 0

    @property
    def is_vector(self) -> bool:
        return (self.rows == 1 or self.cols == 1) and not self.is_empty

    @property
    def is_string(self) -> bool:
        return self.klass is IntrinsicClass.STRING

    def view(self) -> np.ndarray:
        """The logically valid region of the backing buffer."""
        if self.data.shape == (self.rows, self.cols):
            return self.data
        return self.data[: self.rows, : self.cols]

    def scalar(self) -> float | complex:
        """The sole element of a 1x1 array, as a host scalar."""
        if not self.is_scalar:
            raise DimensionError(
                f"expected a scalar, got a {self.rows}x{self.cols} array"
            )
        value = self.data[0, 0]
        if self.klass is IntrinsicClass.COMPLEX:
            return complex(value)
        return float(value)

    def bool_value(self) -> bool:
        """Truth value per MATLAB: true iff non-empty and all-nonzero."""
        if self.is_string:
            return bool(self.text)
        if self.is_empty:
            return False
        return bool(np.all(self.view() != 0))

    def copy(self) -> "MxArray":
        """A by-value copy (drops capacity slack)."""
        if self.is_string:
            return MxArray(IntrinsicClass.STRING, text=self.text)
        return MxArray(self.klass, self.view().copy())

    def refresh_class(self) -> None:
        """Re-derive the intrinsic class tag from current data.

        Used after in-place stores that may widen (real into int array) or
        narrow (complex array whose imaginary parts vanished stays complex:
        MATLAB does not narrow implicitly, and neither do we).
        """
        if self.is_string:
            return
        if self.klass is IntrinsicClass.COMPLEX:
            return
        observed = classify_ndarray(self.view())
        if observed > self.klass:
            self.klass = observed

    # ------------------------------------------------------------------
    # Subscripting (1-based, column-major, checked)
    # ------------------------------------------------------------------
    def _check_subscript(self, value: float, limit: int, grow: bool) -> int:
        index = int(value)
        if index != value or index < 1:
            raise SubscriptError(
                "subscript indices must be positive integers"
            )
        if not grow and index > limit:
            raise SubscriptError(
                f"index {index} exceeds matrix dimension ({limit})"
            )
        return index

    def get_linear(self, k: float) -> float | complex:
        """Checked linear (column-major) element load, ``A(k)``."""
        index = self._check_subscript(k, self.numel, grow=False)
        index -= 1
        return self.view()[index % self.rows, index // self.rows]

    def get2(self, i: float, j: float) -> float | complex:
        """Checked two-subscript element load, ``A(i, j)``."""
        ri = self._check_subscript(i, self.rows, grow=False)
        ci = self._check_subscript(j, self.cols, grow=False)
        return self.data[ri - 1, ci - 1]

    def set_linear(self, k: float, value) -> None:
        """Checked linear element store with MATLAB growth semantics.

        Storing past the end of a vector extends it; storing past the end of
        a true matrix is an error (MATLAB forbids linear growth of
        matrices).
        """
        index = self._check_subscript(k, self.numel, grow=True)
        if index > self.numel:
            if self.rows > 1 and self.cols > 1:
                raise SubscriptError(
                    "in an assignment A(I) = B, a matrix A cannot be resized"
                )
            if self.rows > 1:  # column vector
                self._grow(index, max(self.cols, 1))
            else:  # row vector, scalar or empty
                self._grow(max(self.rows, 1), index)
        index -= 1
        self._store(index % self.rows, index // self.rows, value)

    def set2(self, i: float, j: float, value) -> None:
        """Checked two-subscript store with growth."""
        ri = self._check_subscript(i, self.rows, grow=True)
        ci = self._check_subscript(j, self.cols, grow=True)
        if ri > self.rows or ci > self.cols:
            self._grow(max(ri, self.rows), max(ci, self.cols))
        self._store(ri - 1, ci - 1, value)

    def _store(self, r: int, c: int, value) -> None:
        if isinstance(value, complex) and value.imag != 0.0:
            if self.klass is not IntrinsicClass.COMPLEX:
                self._widen_to_complex()
        elif isinstance(value, complex):
            value = value.real
        if self.klass is not IntrinsicClass.COMPLEX:
            if self.klass in (IntrinsicClass.BOOL, IntrinsicClass.INT):
                if value != int(value):
                    self.klass = IntrinsicClass.REAL
                elif self.klass is IntrinsicClass.BOOL and value not in (0, 1):
                    self.klass = IntrinsicClass.INT
        self.data[r, c] = value

    def _widen_to_complex(self) -> None:
        self.data = self.data.astype(np.complex128)
        self.klass = IntrinsicClass.COMPLEX

    # ------------------------------------------------------------------
    # Growth with oversizing (Section 2.6.1)
    # ------------------------------------------------------------------
    def _grow(self, new_rows: int, new_cols: int) -> None:
        cap_rows, cap_cols = self.data.shape
        if new_rows <= cap_rows and new_cols <= cap_cols:
            # Fits the oversized capacity: zero the newly exposed region and
            # bump the logical size.  This is the cheap path oversizing buys.
            if new_rows > self.rows:
                self.data[self.rows: new_rows, :].fill(0)
            if new_cols > self.cols:
                self.data[:, self.cols: new_cols].fill(0)
            self.rows = max(self.rows, new_rows)
            self.cols = max(self.cols, new_cols)
            return
        alloc_rows, alloc_cols = new_rows, new_cols
        if new_rows * new_cols <= OVERSIZE_LIMIT:
            if new_rows > cap_rows and new_rows > 1:
                alloc_rows = int(new_rows * (1.0 + OVERSIZE_SLACK)) + 1
            if new_cols > cap_cols and new_cols > 1:
                alloc_cols = int(new_cols * (1.0 + OVERSIZE_SLACK)) + 1
        fresh = np.zeros((alloc_rows, alloc_cols), dtype=self.data.dtype)
        fresh[: self.rows, : self.cols] = self.view()
        self.data = fresh
        self.rows = max(self.rows, new_rows)
        self.cols = max(self.cols, new_cols)

    @property
    def capacity(self) -> tuple[int, int]:
        """Backing-buffer dimensions (exceeds shape after oversizing)."""
        return self.data.shape

    # ------------------------------------------------------------------
    # Representation
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_string:
            return f"MxArray(string, {self.text!r})"
        if self.is_scalar:
            return f"MxArray({self.klass.name.lower()}, {self.scalar()!r})"
        return (
            f"MxArray({self.klass.name.lower()}, {self.rows}x{self.cols})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, MxArray):
            return NotImplemented
        if self.is_string or other.is_string:
            return self.is_string and other.is_string and self.text == other.text
        return (
            self.shape == other.shape
            and bool(np.array_equal(self.view(), other.view()))
        )

    def __hash__(self):  # MxArray is mutable; identity hash like list
        raise TypeError("MxArray is unhashable")
