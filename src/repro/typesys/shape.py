"""The shape lattice Ls (Section 2.2).

A shape is a pair ⟨rows, cols⟩ of extended naturals (``None`` encodes ∞).
bottom = ⟨0, 0⟩, top = ⟨∞, ∞⟩, and ⟨a, b⟩ ⊑ ⟨c, d⟩ iff a ≤ c and b ≤ d.
MaJIC tracks *two* shapes per type — a lower and an upper bound — so the
componentwise max (join) and min (meet) both appear in type transfer
functions.
"""

from __future__ import annotations

from dataclasses import dataclass

INF = None  # infinity marker for a dimension


def _leq_dim(a: int | None, b: int | None) -> bool:
    if b is INF:
        return True
    if a is INF:
        return False
    return a <= b


def _max_dim(a: int | None, b: int | None) -> int | None:
    if a is INF or b is INF:
        return INF
    return max(a, b)


def _min_dim(a: int | None, b: int | None) -> int | None:
    if a is INF:
        return b
    if b is INF:
        return a
    return min(a, b)


@dataclass(frozen=True)
class Shape:
    """One element of Ls: ⟨rows, cols⟩ with ``None`` = ∞."""

    rows: int | None
    cols: int | None

    # ------------------------------------------------------------------
    @staticmethod
    def bottom() -> "Shape":
        return Shape(0, 0)

    @staticmethod
    def top() -> "Shape":
        return Shape(INF, INF)

    @staticmethod
    def scalar() -> "Shape":
        return Shape(1, 1)

    @staticmethod
    def exact(rows: int, cols: int) -> "Shape":
        return Shape(rows, cols)

    # ------------------------------------------------------------------
    @property
    def is_bottom(self) -> bool:
        return self.rows == 0 and self.cols == 0

    @property
    def is_top(self) -> bool:
        return self.rows is INF and self.cols is INF

    @property
    def is_finite(self) -> bool:
        return self.rows is not INF and self.cols is not INF

    @property
    def is_scalar(self) -> bool:
        return self.rows == 1 and self.cols == 1

    @property
    def numel(self) -> int | None:
        if not self.is_finite:
            return INF
        return self.rows * self.cols

    # ------------------------------------------------------------------
    def leq(self, other: "Shape") -> bool:
        """⊑s — componentwise ≤."""
        return _leq_dim(self.rows, other.rows) and _leq_dim(self.cols, other.cols)

    def join(self, other: "Shape") -> "Shape":
        """⊔s — componentwise max."""
        return Shape(_max_dim(self.rows, other.rows), _max_dim(self.cols, other.cols))

    def meet(self, other: "Shape") -> "Shape":
        """Componentwise min."""
        return Shape(_min_dim(self.rows, other.rows), _min_dim(self.cols, other.cols))

    def transposed(self) -> "Shape":
        return Shape(self.cols, self.rows)

    def __repr__(self) -> str:
        def show(dim: int | None) -> str:
            return "inf" if dim is INF else str(dim)

        return f"<{show(self.rows)},{show(self.cols)}>"
