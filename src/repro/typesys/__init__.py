"""MaJIC's type system (Section 2.2).

A type is the Cartesian product of four lattice components:

``T = Li x Ls x Ls x Ll``

* :mod:`~repro.typesys.intrinsic` — the finite intrinsic lattice **Li**
  (bottom ⊑ bool ⊑ int ⊑ real ⊑ cplx ⊑ top, and bottom ⊑ strg ⊑ top);
* :mod:`~repro.typesys.shape` — **Ls**, pairs of natural numbers ordered
  componentwise, used *twice* (lower and upper shape bounds);
* :mod:`~repro.typesys.ranges` — **Ll**, real intervals ordered by
  containment (bottom is the empty interval ⟨nan, nan⟩).

:mod:`~repro.typesys.mtype` assembles the product and
:mod:`~repro.typesys.signature` builds type signatures with the safety
relation (Qi ⊑ Ti) and the Manhattan-like distance used by the code
repository's function locator (Section 2.2.1).
"""

from repro.typesys.intrinsic import Intrinsic
from repro.typesys.shape import Shape
from repro.typesys.ranges import Interval
from repro.typesys.mtype import MType
from repro.typesys.signature import Signature, signature_of_values

__all__ = [
    "Intrinsic",
    "Shape",
    "Interval",
    "MType",
    "Signature",
    "signature_of_values",
]
