"""Type signatures and the repository's matching machinery (Section 2.2.1).

A signature assigns an :class:`~repro.typesys.mtype.MType` to each formal
parameter of a compiled function.  An invocation with actual types
``Q1..Qn`` may safely execute code compiled for ``T1..Tn`` iff ``Qi ⊑ Ti``
for all ``i``.  When several safe candidates exist, the function locator
picks the one at the smallest *Manhattan-like distance* — the sum of
per-component widening penalties — so the most specialized safe code wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.runtime.mxarray import IntrinsicClass, MxArray
from repro.typesys.intrinsic import Intrinsic
from repro.typesys.mtype import MType
from repro.typesys.ranges import Interval
from repro.typesys.shape import Shape

_INTRINSIC_OF_CLASS = {
    IntrinsicClass.BOOL: Intrinsic.BOOL,
    IntrinsicClass.INT: Intrinsic.INT,
    IntrinsicClass.REAL: Intrinsic.REAL,
    IntrinsicClass.COMPLEX: Intrinsic.COMPLEX,
    IntrinsicClass.STRING: Intrinsic.STRING,
}

# Cap on the per-dimension shape distance so one huge matrix cannot mask
# differences in the other components.
_SHAPE_CAP = 64.0


def type_of_value(value: MxArray) -> MType:
    """Derive the most precise MType describing one runtime value.

    This is the "very precise initial data" JIT type inference starts from
    (Section 2.4): exact intrinsic class, exact shape (min == max) and the
    tight value range — for a scalar, a constant.
    """
    intrinsic = _INTRINSIC_OF_CLASS[value.klass]
    if value.is_string:
        return MType(
            Intrinsic.STRING,
            Shape.exact(value.rows, value.cols),
            Shape.exact(value.rows, value.cols),
            Interval.top(),
        )
    shape = Shape.exact(value.rows, value.cols)
    if intrinsic is Intrinsic.COMPLEX or value.is_empty:
        rng = Interval.top()
    else:
        view = value.view()
        lo = float(np.min(view.real))
        hi = float(np.max(view.real))
        if math.isnan(lo) or math.isnan(hi):
            rng = Interval.top()
        else:
            rng = Interval.of(lo, hi)
    return MType(intrinsic, shape, shape, rng)


@dataclass(frozen=True)
class Signature:
    """Types of a compiled function's formal parameters."""

    types: tuple[MType, ...]

    @staticmethod
    def of(types) -> "Signature":
        return Signature(types=tuple(types))

    @staticmethod
    def all_top(arity: int) -> "Signature":
        return Signature(types=tuple(MType.top() for _ in range(arity)))

    def __len__(self) -> int:
        return len(self.types)

    def __iter__(self):
        return iter(self.types)

    def __getitem__(self, index: int) -> MType:
        return self.types[index]

    # ------------------------------------------------------------------
    def accepts(self, invocation: "Signature") -> bool:
        """Safety: every actual type a subtype of the formal type."""
        if len(invocation) != len(self):
            return False
        return all(q.leq(t) for q, t in zip(invocation.types, self.types))

    def distance(self, invocation: "Signature") -> float:
        """Manhattan-like distance from an invocation to this signature.

        Zero means a perfect match; larger values mean the compiled code
        was compiled for a (safely) wider context and is expected to be
        less optimized.  Only meaningful when :meth:`accepts` holds.
        """
        total = 0.0
        for actual, formal in zip(invocation.types, self.types):
            total += _component_distance(actual, formal)
        return total

    def join(self, other: "Signature") -> "Signature":
        if len(self) != len(other):
            raise ValueError("cannot join signatures of different arity")
        return Signature.of(a.join(b) for a, b in zip(self.types, other.types))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.types)
        return f"Signature({inner})"


def _dim_distance(actual: int | None, formal: int | None) -> float:
    if formal is None:  # formal allows ∞
        return 0.0 if actual is None else _SHAPE_CAP
    if actual is None:
        return _SHAPE_CAP
    return min(float(abs(formal - actual)), _SHAPE_CAP)


def _component_distance(actual: MType, formal: MType) -> float:
    intrinsic = abs(formal.intrinsic.height - actual.intrinsic.height)
    shape = (
        _dim_distance(actual.minshape.rows, formal.minshape.rows)
        + _dim_distance(actual.minshape.cols, formal.minshape.cols)
        + _dim_distance(actual.maxshape.rows, formal.maxshape.rows)
        + _dim_distance(actual.maxshape.cols, formal.maxshape.cols)
    ) / 4.0
    if formal.range.is_top:
        range_penalty = 4.0 if not actual.range.is_top else 0.0
    elif formal.range.is_constant and actual.range.is_constant:
        range_penalty = 0.0
    else:
        range_penalty = 1.0
    return float(intrinsic) * 8.0 + shape + range_penalty


def signature_of_values(values) -> Signature:
    """The invocation signature derived from actual argument values."""
    return Signature.of(type_of_value(v) for v in values)
