"""The intrinsic-type lattice Li (Section 2.2).

    top
   /   \\
 cplx  strg
  |     |
 real   |
  |     |
 int    |
  |     |
 bool   |
   \\   /
   bottom

The numeric chain is totally ordered; ``strg`` branches off on its own.
"""

from __future__ import annotations

import enum


class Intrinsic(enum.Enum):
    BOTTOM = "bottom"
    BOOL = "bool"
    INT = "int"
    REAL = "real"
    COMPLEX = "cplx"
    STRING = "strg"
    TOP = "top"

    # ------------------------------------------------------------------
    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC

    @property
    def height(self) -> int:
        """Distance from bottom; used by the Manhattan distance metric."""
        return _HEIGHT[self]

    def leq(self, other: "Intrinsic") -> bool:
        """The partial order ⊑i."""
        if self is other or self is Intrinsic.BOTTOM or other is Intrinsic.TOP:
            return True
        if self is Intrinsic.TOP or other is Intrinsic.BOTTOM:
            return False
        if self is Intrinsic.STRING or other is Intrinsic.STRING:
            return False  # incomparable with the numeric chain
        return _HEIGHT[self] <= _HEIGHT[other]

    def join(self, other: "Intrinsic") -> "Intrinsic":
        """Least upper bound ⊔i."""
        if self.leq(other):
            return other
        if other.leq(self):
            return self
        return Intrinsic.TOP  # strg joined with a numeric type

    def meet(self, other: "Intrinsic") -> "Intrinsic":
        """Greatest lower bound."""
        if self.leq(other):
            return self
        if other.leq(self):
            return other
        return Intrinsic.BOTTOM

    def __repr__(self) -> str:
        return self.value


_NUMERIC = frozenset(
    {Intrinsic.BOOL, Intrinsic.INT, Intrinsic.REAL, Intrinsic.COMPLEX}
)

_HEIGHT = {
    Intrinsic.BOTTOM: 0,
    Intrinsic.BOOL: 1,
    Intrinsic.INT: 2,
    Intrinsic.REAL: 3,
    Intrinsic.COMPLEX: 4,
    Intrinsic.STRING: 1,
    Intrinsic.TOP: 5,
}


def join_all(items) -> Intrinsic:
    """Join of an iterable of intrinsic types (bottom for empty)."""
    result = Intrinsic.BOTTOM
    for item in items:
        result = result.join(item)
    return result
