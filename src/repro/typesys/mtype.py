"""The product type T = Li x Ls x Ls x Ll (Section 2.2).

An :class:`MType` bundles an intrinsic type, a *minimum* and a *maximum*
shape bound, and a value range.  The paper's collective term "shape" means
both shape descriptors together; an array's shape is *exactly determined*
when the two bounds are equal (Section 2.4, "Exact shape inference"), and a
real scalar is a known *constant* when its range has lo == hi.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.typesys.intrinsic import Intrinsic
from repro.typesys.ranges import Interval
from repro.typesys.shape import Shape


@dataclass(frozen=True)
class MType:
    """One element of the MaJIC type lattice."""

    intrinsic: Intrinsic
    minshape: Shape
    maxshape: Shape
    range: Interval

    # ------------------------------------------------------------------
    # Canonical elements
    # ------------------------------------------------------------------
    @staticmethod
    def bottom() -> "MType":
        return MType(
            Intrinsic.BOTTOM, Shape.bottom(), Shape.bottom(), Interval.bottom()
        )

    @staticmethod
    def top() -> "MType":
        return MType(Intrinsic.TOP, Shape.bottom(), Shape.top(), Interval.top())

    @staticmethod
    def scalar(
        intrinsic: Intrinsic = Intrinsic.REAL,
        rng: Interval | None = None,
    ) -> "MType":
        return MType(
            intrinsic,
            Shape.scalar(),
            Shape.scalar(),
            rng if rng is not None else Interval.top(),
        )

    @staticmethod
    def constant(value: float) -> "MType":
        intrinsic = (
            Intrinsic.INT if float(value) == int(value) else Intrinsic.REAL
        )
        return MType.scalar(intrinsic, Interval.constant(float(value)))

    @staticmethod
    def matrix(
        intrinsic: Intrinsic = Intrinsic.REAL,
        minshape: Shape | None = None,
        maxshape: Shape | None = None,
        rng: Interval | None = None,
    ) -> "MType":
        return MType(
            intrinsic,
            minshape if minshape is not None else Shape.bottom(),
            maxshape if maxshape is not None else Shape.top(),
            rng if rng is not None else Interval.top(),
        )

    @staticmethod
    def exact(
        intrinsic: Intrinsic, rows: int, cols: int, rng: Interval | None = None
    ) -> "MType":
        shape = Shape.exact(rows, cols)
        return MType(
            intrinsic, shape, shape, rng if rng is not None else Interval.top()
        )

    @staticmethod
    def string() -> "MType":
        return MType(
            Intrinsic.STRING, Shape.bottom(), Shape.top(), Interval.top()
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_bottom(self) -> bool:
        return self.intrinsic is Intrinsic.BOTTOM

    @property
    def is_top_like(self) -> bool:
        return (
            self.intrinsic is Intrinsic.TOP
            and self.maxshape.is_top
            and self.range.is_top
        )

    @property
    def is_scalar(self) -> bool:
        """Shape exactly determined as 1x1."""
        return self.minshape.is_scalar and self.maxshape.is_scalar

    @property
    def could_be_scalar(self) -> bool:
        return self.minshape.leq(Shape.scalar()) and Shape.scalar().leq(
            self.maxshape
        )

    @property
    def has_exact_shape(self) -> bool:
        return (
            self.minshape == self.maxshape
            and self.minshape.is_finite
        )

    @property
    def exact_shape(self) -> Shape | None:
        return self.minshape if self.has_exact_shape else None

    @property
    def is_constant(self) -> bool:
        """A known real constant (Section 2.4, constant propagation)."""
        return (
            self.is_scalar
            and self.range.is_constant
            and self.intrinsic.leq(Intrinsic.REAL)
            and self.intrinsic is not Intrinsic.BOTTOM
        )

    @property
    def constant_value(self) -> float:
        if not self.is_constant:
            raise ValueError(f"{self!r} is not a constant")
        return self.range.constant_value

    @property
    def is_real_like(self) -> bool:
        """Intrinsic within the real chain (no complex/string possible)."""
        return self.intrinsic.leq(Intrinsic.REAL) and self.intrinsic is not Intrinsic.BOTTOM

    @property
    def is_integer_like(self) -> bool:
        return self.intrinsic.leq(Intrinsic.INT) and self.intrinsic is not Intrinsic.BOTTOM

    @property
    def is_complex(self) -> bool:
        return self.intrinsic is Intrinsic.COMPLEX

    @property
    def is_string(self) -> bool:
        return self.intrinsic is Intrinsic.STRING

    # ------------------------------------------------------------------
    # Lattice operations (componentwise)
    # ------------------------------------------------------------------
    def leq(self, other: "MType") -> bool:
        """The subtype order ⊑: safe substitutability of values.

        A value set described by ``self`` fits the description ``other``
        when the intrinsic is below, the shape window is contained
        (other.min ⊑ self.min and self.max ⊑ other.max) and the range is
        contained.
        """
        if self.is_bottom:
            return True
        return (
            self.intrinsic.leq(other.intrinsic)
            and other.minshape.leq(self.minshape)
            and self.maxshape.leq(other.maxshape)
            and self.range.leq(other.range)
        )

    def join(self, other: "MType") -> "MType":
        """⊔ — the least type describing values of either type."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return MType(
            self.intrinsic.join(other.intrinsic),
            self.minshape.meet(other.minshape),
            self.maxshape.join(other.maxshape),
            self.range.join(other.range),
        )

    def meet(self, other: "MType") -> "MType":
        """Greatest lower bound — the type of values fitting *both*
        descriptions.  Used by the speculator to fold hints into parameter
        types; a bottom result signals conflicting hints."""
        return MType(
            self.intrinsic.meet(other.intrinsic),
            self.minshape.join(other.minshape),
            self.maxshape.meet(other.maxshape),
            self.range.meet(other.range),
        )

    def widen_range(self) -> "MType":
        """Drop range information (used when iteration caps are hit)."""
        return replace(self, range=Interval.top())

    def widen_shape(self) -> "MType":
        return replace(self, minshape=Shape.bottom(), maxshape=Shape.top())

    def with_range(self, rng: Interval) -> "MType":
        return replace(self, range=rng)

    def with_intrinsic(self, intrinsic: Intrinsic) -> "MType":
        return replace(self, intrinsic=intrinsic)

    def with_shape(self, minshape: Shape, maxshape: Shape) -> "MType":
        return replace(self, minshape=minshape, maxshape=maxshape)

    def __repr__(self) -> str:
        return (
            f"MType({self.intrinsic!r}, min{self.minshape!r}, "
            f"max{self.maxshape!r}, rng{self.range!r})"
        )


def join_types(items) -> MType:
    """Join of an iterable of types (bottom for empty)."""
    result = MType.bottom()
    for item in items:
        result = result.join(item)
    return result
