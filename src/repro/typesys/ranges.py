"""The range lattice Ll — real value intervals (Section 2.2).

bottom = ⟨nan, nan⟩ (the empty interval), top = ⟨-∞, +∞⟩, and
⟨a, b⟩ ⊑ ⟨c, d⟩ iff the left interval is empty or c ≤ a and b ≤ d
(containment).  Ranges exist only for real-valued data; complex and string
expressions carry ⊤l (no information).

Range propagation over this lattice *is* MaJIC's constant propagation
(Section 2.4): a real scalar is a known constant exactly when its interval
has lo == hi.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Interval:
    """A closed interval [lo, hi]; ``nan`` bounds encode the empty interval."""

    lo: float
    hi: float

    # ------------------------------------------------------------------
    @staticmethod
    def bottom() -> "Interval":
        return Interval(math.nan, math.nan)

    @staticmethod
    def top() -> "Interval":
        return Interval(-math.inf, math.inf)

    @staticmethod
    def constant(value: float) -> "Interval":
        if math.isnan(value):
            # A NaN value is representable only by the full interval: the
            # empty interval means "no value", not "the value NaN".
            return Interval.top()
        return Interval(value, value)

    @staticmethod
    def of(lo: float, hi: float) -> "Interval":
        if math.isnan(lo) or math.isnan(hi):
            return Interval.top()
        if lo > hi:
            return Interval.bottom()
        return Interval(lo, hi)

    # ------------------------------------------------------------------
    @property
    def is_bottom(self) -> bool:
        return math.isnan(self.lo)

    @property
    def is_top(self) -> bool:
        return self.lo == -math.inf and self.hi == math.inf

    @property
    def is_constant(self) -> bool:
        return not self.is_bottom and self.lo == self.hi and math.isfinite(self.lo)

    @property
    def constant_value(self) -> float:
        if not self.is_constant:
            raise ValueError("interval is not a constant")
        return self.lo

    @property
    def is_integral_constant(self) -> bool:
        """True for a constant whose value is an integer.

        Integrality of *non-constant* quantities is conveyed by the
        intrinsic component (itype ⊑ int), not by the interval: an interval
        only bounds the value set, it cannot exclude non-integers.
        """
        return self.is_constant and self.lo == math.floor(self.lo)

    @property
    def is_positive(self) -> bool:
        return not self.is_bottom and self.lo > 0

    @property
    def is_nonnegative(self) -> bool:
        return not self.is_bottom and self.lo >= 0

    # ------------------------------------------------------------------
    def leq(self, other: "Interval") -> bool:
        """⊑l — containment (empty ⊑ everything)."""
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        return other.lo <= self.lo and self.hi <= other.hi

    def join(self, other: "Interval") -> "Interval":
        """⊔l — interval hull."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        """Intersection."""
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return Interval.bottom()
        return Interval(lo, hi)

    def contains(self, value: float) -> bool:
        return not self.is_bottom and self.lo <= value <= self.hi

    # ------------------------------------------------------------------
    # Interval arithmetic used by the transfer functions.
    # ------------------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval.of(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval.of(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        if self.is_bottom:
            return self
        return Interval.of(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        products = [0.0 if math.isnan(p) else p for p in products]
        return Interval.of(min(products), max(products))

    def div(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if other.contains(0.0):
            return Interval.top()
        quotients = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ]
        return Interval.of(min(quotients), max(quotients))

    def power(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if not other.is_constant:
            return Interval.top()
        exponent = other.lo
        if exponent == math.floor(exponent) and exponent >= 0:
            candidates = [self.lo ** exponent, self.hi ** exponent]
            if exponent % 2 == 0 and self.contains(0.0):
                candidates.append(0.0)
            return Interval.of(min(candidates), max(candidates))
        if self.lo >= 0:
            return Interval.of(self.lo ** exponent, self.hi ** exponent)
        return Interval.top()

    def floor(self) -> "Interval":
        if self.is_bottom:
            return self
        lo = math.floor(self.lo) if math.isfinite(self.lo) else self.lo
        hi = math.floor(self.hi) if math.isfinite(self.hi) else self.hi
        return Interval.of(lo, hi)

    def ceil(self) -> "Interval":
        if self.is_bottom:
            return self
        lo = math.ceil(self.lo) if math.isfinite(self.lo) else self.lo
        hi = math.ceil(self.hi) if math.isfinite(self.hi) else self.hi
        return Interval.of(lo, hi)

    def abs(self) -> "Interval":
        if self.is_bottom:
            return self
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return self.neg()
        return Interval.of(0.0, max(-self.lo, self.hi))

    def __repr__(self) -> str:
        if self.is_bottom:
            return "<nan,nan>"
        return f"<{self.lo},{self.hi}>"
