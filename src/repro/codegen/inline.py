"""Function inlining (Figure 1 pass 2, Section 2.6.1).

MaJIC inlines calls to small (< 200 lines) user functions, preserving
call-by-value semantics by copying actual parameters — except read-only
formals, which are bound directly ("this can result in huge performance
gain when large matrices are passed as read-only arguments").  Recursive
calls are inlined at most :data:`MAX_RECURSION_DEPTH` levels to avoid code
explosion (Section 3.4).

The inliner is a source-level AST→AST transform that runs before
disambiguation (which is re-run afterwards, as Figure 1 notes the symbol
table must be rebuilt).  Calls nested inside expressions are first hoisted
into temporary assignments so that only statement-level calls need body
substitution.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

from repro.frontend import ast_nodes as ast

MAX_INLINE_LINES = 200
MAX_RECURSION_DEPTH = 3


@dataclass
class InlineResult:
    body: list[ast.Stmt]
    inlined_calls: int = 0


class Inliner:
    """Inlines user-function calls into one function body."""

    def __init__(
        self,
        lookup: Callable[[str], ast.FunctionDef | None],
        max_lines: int = MAX_INLINE_LINES,
        max_depth: int = MAX_RECURSION_DEPTH,
    ):
        self.lookup = lookup
        self.max_lines = max_lines
        self.max_depth = max_depth
        self._counter = 0
        self.inlined_calls = 0
        # Names of every function whose body was embedded (dependency
        # tracking: the caller must be recompiled when these change).
        self.inlined_names: set[str] = set()

    # ------------------------------------------------------------------
    def run(self, fn: ast.FunctionDef) -> ast.FunctionDef:
        """Return a copy of ``fn`` with eligible calls inlined."""
        clone = copy.deepcopy(fn)
        # Names assigned in the caller may shadow function names at
        # runtime; the inliner runs before disambiguation, so it must not
        # inline anything a local assignment could shadow.
        self._caller_assigned = _assigned_names(fn.body) | set(fn.params)
        clone.body = self._inline_body(clone.body, {fn.name: 1})
        return clone

    # ------------------------------------------------------------------
    def _fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}__il{self._counter}"

    def _eligible(self, name: str, depth_map: dict[str, int]) -> ast.FunctionDef | None:
        if name in getattr(self, "_caller_assigned", ()):
            return None
        callee = self.lookup(name)
        if callee is None:
            return None
        if _function_lines(callee) > self.max_lines:
            return None
        if depth_map.get(name, 0) >= self.max_depth:
            return None
        if _has_blockers(callee):
            return None
        return callee

    # ------------------------------------------------------------------
    def _inline_body(
        self, body: list[ast.Stmt], depth_map: dict[str, int]
    ) -> list[ast.Stmt]:
        result: list[ast.Stmt] = []
        for stmt in body:
            result.extend(self._inline_stmt(stmt, depth_map))
        return result

    def _inline_stmt(self, stmt: ast.Stmt, depth_map: dict[str, int]) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        if isinstance(stmt, ast.Assign):
            value, pre = self._hoist_calls(stmt.value, depth_map, top=True)
            out.extend(pre)
            indices = stmt.target.indices
            if indices:
                new_indices = []
                for index in indices:
                    idx, pre2 = self._hoist_calls(index, depth_map)
                    out.extend(pre2)
                    new_indices.append(idx)
                stmt.target.indices = new_indices
            direct = self._try_direct_inline(stmt, value, depth_map)
            if direct is not None:
                out.extend(direct)
                return out
            stmt.value = value
            out.append(stmt)
            return out
        if isinstance(stmt, ast.MultiAssign):
            call = stmt.call
            if isinstance(call, ast.Apply):
                callee = self._eligible(call.name, depth_map)
                if callee is not None and len(stmt.targets) <= len(callee.outputs) \
                        and all(not t.is_indexed for t in stmt.targets):
                    args, pre = self._hoist_args(call, depth_map)
                    out.extend(pre)
                    out.extend(
                        self._expand(
                            callee, args,
                            [t.name for t in stmt.targets], depth_map,
                        )
                    )
                    return out
            out.append(stmt)
            return out
        if isinstance(stmt, ast.ExprStmt):
            value, pre = self._hoist_calls(stmt.value, depth_map)
            out.extend(pre)
            stmt.value = value
            out.append(stmt)
            return out
        if isinstance(stmt, ast.If):
            new_branches = []
            for cond, branch in stmt.branches:
                cond2, pre = self._hoist_calls(cond, depth_map)
                out.extend(pre)  # condition hoists execute before the if
                new_branches.append((cond2, self._inline_body(branch, depth_map)))
            stmt.branches = new_branches
            stmt.orelse = self._inline_body(stmt.orelse, depth_map)
            out.append(stmt)
            return out
        if isinstance(stmt, ast.While):
            # Calls in a while condition cannot be hoisted (they re-run per
            # trip); leave them dynamic.
            stmt.body = self._inline_body(stmt.body, depth_map)
            out.append(stmt)
            return out
        if isinstance(stmt, ast.For):
            iterable, pre = self._hoist_calls(stmt.iterable, depth_map)
            out.extend(pre)
            stmt.iterable = iterable
            stmt.body = self._inline_body(stmt.body, depth_map)
            out.append(stmt)
            return out
        out.append(stmt)
        return out

    # ------------------------------------------------------------------
    def _try_direct_inline(
        self, stmt: ast.Assign, value: ast.Expr, depth_map: dict[str, int]
    ) -> list[ast.Stmt] | None:
        """Inline ``x = f(...)`` without a temporary."""
        if stmt.target.is_indexed or not isinstance(value, ast.Apply):
            return None
        if value.kind not in (ast.ApplyKind.USER_FUNCTION, ast.ApplyKind.UNRESOLVED):
            return None
        callee = self._eligible(value.name, depth_map)
        if callee is None or not callee.outputs:
            return None
        args, pre = self._hoist_args(value, depth_map)
        return pre + self._expand(callee, args, [stmt.target.name], depth_map)

    def _hoist_args(self, call: ast.Apply, depth_map):
        args = []
        pre: list[ast.Stmt] = []
        for arg in call.args:
            arg2, pre2 = self._hoist_calls(arg, depth_map)
            pre.extend(pre2)
            args.append(arg2)
        return args, pre

    def _hoist_calls(
        self, expr: ast.Expr, depth_map: dict[str, int], top: bool = False
    ) -> tuple[ast.Expr, list[ast.Stmt]]:
        """Hoist nested inlinable calls into temp assignments."""
        pre: list[ast.Stmt] = []

        def rewrite(node: ast.Expr, is_top: bool) -> ast.Expr:
            if isinstance(node, ast.Apply):
                node.args = [rewrite(a, False) for a in node.args]
                if node.kind in (
                    ast.ApplyKind.USER_FUNCTION,
                    ast.ApplyKind.UNRESOLVED,
                ):
                    callee = self._eligible(node.name, depth_map)
                    if callee is not None and callee.outputs and not is_top:
                        temp = self._fresh(f"t_{node.name}")
                        pre.extend(
                            self._expand(callee, list(node.args), [temp], depth_map)
                        )
                        return ast.Ident(name=temp, location=node.location)
                return node
            if isinstance(node, ast.BinaryOp):
                node.left = rewrite(node.left, False)
                node.right = rewrite(node.right, False)
                return node
            if isinstance(node, ast.UnaryOp):
                node.operand = rewrite(node.operand, False)
                return node
            if isinstance(node, ast.Transpose):
                node.operand = rewrite(node.operand, False)
                return node
            if isinstance(node, ast.Range):
                node.start = rewrite(node.start, False)
                if node.step is not None:
                    node.step = rewrite(node.step, False)
                node.stop = rewrite(node.stop, False)
                return node
            if isinstance(node, ast.MatrixLit):
                node.rows = [[rewrite(e, False) for e in row] for row in node.rows]
                return node
            return node

        return rewrite(expr, top), pre

    # ------------------------------------------------------------------
    def _expand(
        self,
        callee: ast.FunctionDef,
        args: list[ast.Expr],
        targets: list[str],
        depth_map: dict[str, int],
    ) -> list[ast.Stmt]:
        """Substitute one call: bind params, rename locals, copy body."""
        self.inlined_calls += 1
        self.inlined_names.add(callee.name)
        body = copy.deepcopy(callee.body)
        rename: dict[str, str] = {}
        mutated = _mutated_names(callee.body)

        out: list[ast.Stmt] = []
        # Bind parameters.  Call-by-value requires copies of the actuals,
        # but read-only formals of simple variable arguments are aliased
        # directly (the paper's copy elision).
        for param, arg in zip(callee.params, args):
            local = self._fresh(param)
            rename[param] = local
            out.append(
                ast.Assign(
                    target=ast.LValue(name=local),
                    value=arg,
                    display=False,
                )
            )
        for extra in callee.params[len(args):]:
            rename[extra] = self._fresh(extra)

        # Rename every other local.
        locals_ = _assigned_names(callee.body) - set(callee.params)
        for name in sorted(locals_):
            rename[name] = self._fresh(name)
        for output, target in zip(callee.outputs, targets):
            rename[output] = target
        for output in callee.outputs[len(targets):]:
            rename.setdefault(output, self._fresh(output))

        _rename_body(body, rename)
        inner_depth = dict(depth_map)
        inner_depth[callee.name] = inner_depth.get(callee.name, 0) + 1
        body = self._inline_body(body, inner_depth)
        body = _strip_returns(body)
        out.extend(body)
        return out


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _function_lines(fn: ast.FunctionDef) -> int:
    return sum(1 for _ in ast.walk_stmts(fn.body)) + 1


def _has_blockers(fn: ast.FunctionDef) -> bool:
    """Constructs that prevent inlining (returns inside loops, globals)."""
    def returns_in(body, in_loop: bool) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Return) and in_loop:
                return True
            if isinstance(stmt, ast.Global):
                return True
            if isinstance(stmt, ast.Clear) and not stmt.names:
                return True
            if isinstance(stmt, ast.If):
                for _, branch in stmt.branches:
                    if returns_in(branch, in_loop):
                        return True
                if returns_in(stmt.orelse, in_loop):
                    return True
            elif isinstance(stmt, (ast.While, ast.For)):
                if returns_in(stmt.body, True):
                    return True
        return False

    # A bare `return` is only safe to strip when it is the final top-level
    # statement; a return anywhere else changes control flow under
    # substitution and blocks inlining.
    tail = fn.body[-1] if fn.body else None
    for stmt in ast.walk_stmts(fn.body):
        if isinstance(stmt, ast.Return) and stmt is not tail:
            return True
    return returns_in(fn.body, False)


def _assigned_names(body: list[ast.Stmt]) -> set[str]:
    names: set[str] = set()
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.Assign):
            names.add(stmt.target.name)
        elif isinstance(stmt, ast.MultiAssign):
            names.update(t.name for t in stmt.targets)
        elif isinstance(stmt, ast.For):
            names.add(stmt.var)
    return names


def _mutated_names(body: list[ast.Stmt]) -> set[str]:
    names: set[str] = set()
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.Assign) and stmt.target.is_indexed:
            names.add(stmt.target.name)
        elif isinstance(stmt, ast.MultiAssign):
            names.update(t.name for t in stmt.targets if t.is_indexed)
    return names


def _rename_expr(expr: ast.Expr, rename: dict[str, str]) -> None:
    for node in ast.walk_expr(expr):
        if isinstance(node, (ast.Ident, ast.Apply)) and node.name in rename:
            node.name = rename[node.name]


def _rename_body(body: list[ast.Stmt], rename: dict[str, str]) -> None:
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.Assign):
            if stmt.target.name in rename:
                stmt.target.name = rename[stmt.target.name]
            if stmt.target.indices:
                for index in stmt.target.indices:
                    _rename_expr(index, rename)
            _rename_expr(stmt.value, rename)
        elif isinstance(stmt, ast.MultiAssign):
            for target in stmt.targets:
                if target.name in rename:
                    target.name = rename[target.name]
                if target.indices:
                    for index in target.indices:
                        _rename_expr(index, rename)
            _rename_expr(stmt.call, rename)
        elif isinstance(stmt, ast.ExprStmt):
            _rename_expr(stmt.value, rename)
        elif isinstance(stmt, ast.If):
            for cond, _ in stmt.branches:
                _rename_expr(cond, rename)
        elif isinstance(stmt, ast.While):
            _rename_expr(stmt.cond, rename)
        elif isinstance(stmt, ast.For):
            if stmt.var in rename:
                stmt.var = rename[stmt.var]
            _rename_expr(stmt.iterable, rename)
        elif isinstance(stmt, ast.Global):
            stmt.names = [rename.get(n, n) for n in stmt.names]
        elif isinstance(stmt, ast.Clear):
            stmt.names = [rename.get(n, n) for n in stmt.names]


def _strip_returns(body: list[ast.Stmt]) -> list[ast.Stmt]:
    """Drop a trailing bare ``return`` (other returns blocked inlining)."""
    while body and isinstance(body[-1], ast.Return):
        body = body[:-1]
    return body


def inline_function(
    fn: ast.FunctionDef,
    lookup: Callable[[str], ast.FunctionDef | None],
) -> tuple[ast.FunctionDef, int]:
    """Inline eligible calls in ``fn``; returns (new fn, #inlined)."""
    inliner = Inliner(lookup)
    result = inliner.run(fn)
    return result, inliner.inlined_calls
