"""The optimizing source-code generator (Section 2.6, "speculative mode").

Where the JIT emits three-address code through the vcode layer, this
generator builds *source* for the host toolchain — idiomatic, expression-
style code the host compiler optimizes further — and applies the expensive
optimizations the paper reserves for ahead-of-time compilation:

* expression-style emission (the "native compiler" quality effect);
* loop versioning: subscript checks hoisted into a single loop-entry guard
  (:mod:`repro.codegen.optimizations`) — the static counterpart of the
  JIT's range-based check removal;
* loop-invariant hoisting of pure scalar subexpressions and of array data
  pointers (enabled when the modelled native backend is strong, i.e.
  ``native_opt_level >= 2`` — the MIPS configuration);
* the shared selection rules: small-vector unrolling with pre-allocated
  temporaries and dgemv fusion (``majic_opts`` — disabled for the FALCON
  baseline, which relies on its backend instead).

Compilation through this pipeline is deliberately the slow path ("can take
several seconds" on the paper's machines): it runs several analysis passes
per loop and compiles a full source module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.disambiguate import DisambiguationResult, Disambiguator
from repro.analysis.symtab import SymbolKind
from repro.errors import CodegenError
from repro.frontend import ast_nodes as ast
from repro.inference.annotations import Annotations, SubscriptSafety
from repro.inference.engine import InferenceOptions, TypeInferenceEngine
from repro.codegen.jitgen import CompiledObject, PhaseTimes
from repro.codegen.runtime_support import SCALAR_MATH
from repro.codegen.select import (
    BOXED,
    RAW_COMPLEX,
    RAW_INT,
    RAW_REAL,
    Selector,
    repr_of_type,
)
from repro.codegen.optimizations import (
    VersioningPlan,
    assigned_in,
    find_hoistable,
    plan_versioning,
)
from repro.typesys.intrinsic import Intrinsic
from repro.typesys.signature import Signature
from repro.vcode.emit import EmittedFunction

_BINOP_PY = {
    "+": "+", "-": "-", "*": "*", ".*": "*",
    "/": "/", "./": "/", "^": "**", ".^": "**",
}
_CMP_PY = {"==": "==", "~=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_BINOP_HELPER = {
    "+": "g_add", "-": "g_sub", "*": "g_mul", ".*": "g_emul",
    "/": "g_div", "./": "g_ediv", "\\": "g_ldiv", ".\\": "g_eldiv",
    "^": "g_pow", ".^": "g_epow",
    "==": "g_eq", "~=": "g_ne", "<": "g_lt", "<=": "g_le",
    ">": "g_gt", ">=": "g_ge", "&": "g_and", "|": "g_or",
}


@dataclass
class SrcOptions:
    """Knobs distinguishing platforms and baselines."""

    native_opt_level: int = 1     # 1 = weak backend (SPARC), 2 = strong (MIPS)
    majic_opts: bool = True       # unrolling/prealloc/dgemv (off for FALCON)
    versioning: bool = True       # loop versioning of subscript checks
    inference: InferenceOptions = field(default_factory=InferenceOptions)
    # The paper's native toolchain spends seconds per compile; harnesses
    # may scale the *recorded* codegen time by this factor to model it.
    compile_cost_factor: float = 1.0


class SourceCompiler:
    """The ahead-of-time (speculative / FALCON-style) pipeline."""

    def __init__(
        self, options: SrcOptions | None = None, fault_plan=None, tracer=None
    ):
        from repro.obs.trace import NULL_TRACER

        self.options = options or SrcOptions()
        self.fault_plan = fault_plan
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def compile(
        self,
        fn: ast.FunctionDef,
        signature: Signature,
        disambiguation: DisambiguationResult | None = None,
        annotations: Annotations | None = None,
        mode: str = "spec",
        is_user_function=None,
        callee_oracle=None,
    ) -> CompiledObject:
        if self.fault_plan is not None:
            self.fault_plan.check("spec", fn.name)
        tracer = self.tracer
        times = PhaseTimes()
        start = time.perf_counter()
        if disambiguation is None:
            with tracer.span("disambiguation", "disambiguation",
                             function=fn.name, mode=mode):
                disambiguation = Disambiguator(
                    is_user_function or (lambda name: False)
                ).run_function(fn)
        times.disambiguation = time.perf_counter() - start

        start = time.perf_counter()
        if annotations is None:
            with tracer.span("type_inference", "type_inference",
                             function=fn.name, mode=mode):
                engine = TypeInferenceEngine(
                    options=self.options.inference, callee_oracle=callee_oracle
                )
                annotations = engine.infer(fn, signature, disambiguation)
        times.type_inference = time.perf_counter() - start

        start = time.perf_counter()
        with tracer.span("codegen", "codegen", function=fn.name, mode=mode):
            emitter = _SrcEmitter(fn, annotations, disambiguation, self.options)
            source = emitter.emit()
            namespace: dict = {}
            code = compile(source, f"<src:{fn.name}>", "exec")
            exec(code, namespace)
        times.codegen = (
            time.perf_counter() - start
        ) * self.options.compile_cost_factor

        emitted = EmittedFunction(
            name=emitter.fn_name,
            source=source,
            callable=namespace[emitter.fn_name],
            spill_count=0,
            instruction_count=source.count("\n"),
        )
        return CompiledObject(
            name=fn.name,
            signature=signature,
            emitted=emitted,
            annotations=annotations,
            param_reprs=emitter.param_reprs,
            output_reprs=emitter.output_reprs,
            mode=mode,
            phase_times=times,
        )


class _SrcEmitter:
    """Typed AST → expression-style Python source."""

    def __init__(
        self,
        fn: ast.FunctionDef,
        annotations: Annotations,
        disambiguation: DisambiguationResult,
        options: SrcOptions,
    ):
        self.fn = fn
        self.ann = annotations
        self.dis = disambiguation
        self.options = options
        self.selector = Selector(
            fn, annotations,
            unroll_enabled=options.majic_opts,
            dgemv_enabled=options.majic_opts,
        )
        self.fn_name = f"src_{fn.name}"
        self.lines: list[str] = []
        self.depth = 1
        self.helpers: set[str] = set()
        self.var_kinds: dict[str, str] = {}
        self.forced_safe: set[int] = set()
        self.hoisted: dict[int, str] = {}
        self.data_alias: dict[str, str] = {}
        self.prologue: list[str] = []
        self._temp = 0
        self.param_reprs: list[str] = []
        self.output_reprs: list[str] = []
        self._int_counters = self._find_int_loop_counters()

    # ------------------------------------------------------------------
    def fresh(self, base: str = "t") -> str:
        self._temp += 1
        return f"_{base}{self._temp}"

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def helper(self, name: str) -> str:
        self.helpers.add(name)
        return f"_h_{name}"

    def var(self, name: str) -> str:
        return f"v_{name}"

    def var_kind(self, name: str) -> str:
        kind = self.var_kinds.get(name)
        if kind is None:
            if name in self._int_counters:
                kind = RAW_INT
            else:
                kind = self.selector.var_repr(name)
                info = self.dis.symbols.lookup(name)
                if info is not None and info.is_ambiguous:
                    kind = BOXED
            self.var_kinds[name] = kind
        return kind

    def _find_int_loop_counters(self) -> set[str]:
        loop_names: set[str] = set()
        other: set[str] = set()
        for stmt in ast.walk_stmts(self.fn.body):
            if isinstance(stmt, ast.For):
                var_type = self.ann.var_type(stmt.var)
                simple = isinstance(stmt.iterable, ast.Range) and (
                    stmt.iterable.step is None
                    or _const_int_step(self.ann, stmt.iterable.step) is not None
                )
                if simple and var_type.is_scalar and var_type.is_integer_like:
                    loop_names.add(stmt.var)
                else:
                    other.add(stmt.var)
            elif isinstance(stmt, ast.Assign):
                other.add(stmt.target.name)
            elif isinstance(stmt, ast.MultiAssign):
                other.update(t.name for t in stmt.targets)
        return loop_names - other - set(self.fn.params)

    # ------------------------------------------------------------------
    def coerce(self, code: str, src: str, dst: str) -> str:
        if src == dst or (src in "if" and dst in "if"):
            return code
        if dst == BOXED:
            return f"{self.helper('box')}({code})"
        if src == BOXED:
            if dst == RAW_INT:
                # 'i' promises a host int; unbox_real yields a float.
                return f"int({self.helper('unbox_real')}({code}))"
            helper = "unbox" if dst == RAW_COMPLEX else "unbox_real"
            return f"{self.helper(helper)}({code})"
        if src == RAW_COMPLEX and dst in (RAW_REAL, RAW_INT):
            return f"{self.helper('unbox_real')}({code})"
        return code

    def as_index(self, code: str, kind: str) -> str:
        if kind == RAW_INT:
            return code
        if kind == BOXED:
            return f"int({self.helper('unbox_real')}({code}))"
        return f"int({code})"

    # ------------------------------------------------------------------
    def emit(self) -> str:
        params = [f"p_{i}" for i in range(len(self.fn.params))]
        for name, pname in zip(self.fn.params, params):
            kind = self.var_kind(name)
            self.param_reprs.append(kind)
            if kind == BOXED and not self.selector.is_read_only(name):
                self.prologue.append(
                    f"    {self.var(name)} = "
                    f"{self.helper('copy_value')}({pname})"
                )
            else:
                self.prologue.append(f"    {self.var(name)} = {pname}")
        for name in self.fn.outputs:
            self.output_reprs.append(self.var_kind(name))
            if name not in self.fn.params:
                self.prologue.append(f"    {self.var(name)} = None")

        self.emit_stmts(self.fn.body)
        rets = ", ".join(self.var(n) for n in self.fn.outputs)
        tail = "," if len(self.fn.outputs) == 1 else ""
        self.line(f"return ({rets}{tail})")

        header = [f"def {self.fn_name}({', '.join(params + ['rt'])}):"]
        hoists = [f"    _h_{n} = rt.{n}" for n in sorted(self.helpers)]
        return "\n".join(header + hoists + self.prologue + self.lines) + "\n"

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def emit_stmts(self, body: list[ast.Stmt]) -> None:
        if not body:
            self.line("pass")
            return
        for stmt in body:
            self.emit_stmt(stmt)

    def emit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.emit_assign(stmt)
        elif isinstance(stmt, ast.MultiAssign):
            self.emit_multi_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            code, kind = self.gen(stmt.value)
            if "ans" in self.ann.var_types or stmt.display:
                self.line(
                    f"{self.var('ans')} = "
                    f"{self.coerce(code, kind, self.var_kind('ans'))}"
                )
                if stmt.display:
                    self.line(
                        f"{self.helper('display_value')}('ans', "
                        f"{self.coerce(self.var('ans'), self.var_kind('ans'), BOXED)})"
                    )
            else:
                temp = self.fresh()
                self.line(f"{temp} = {code}")
        elif isinstance(stmt, ast.If):
            for index, (cond, branch) in enumerate(stmt.branches):
                word = "if" if index == 0 else "elif"
                self.line(f"{word} {self.gen_condition(cond)}:")
                self.depth += 1
                self.emit_stmts(branch)
                self.depth -= 1
            if stmt.orelse:
                self.line("else:")
                self.depth += 1
                self.emit_stmts(stmt.orelse)
                self.depth -= 1
        elif isinstance(stmt, ast.While):
            self.line(f"while {self.gen_condition(stmt.cond)}:")
            self.depth += 1
            self.emit_stmts(stmt.body)
            self.depth -= 1
        elif isinstance(stmt, ast.For):
            self.emit_for(stmt)
        elif isinstance(stmt, ast.Break):
            self.line("break")
        elif isinstance(stmt, ast.Continue):
            self.line("continue")
        elif isinstance(stmt, ast.Return):
            rets = ", ".join(self.var(n) for n in self.fn.outputs)
            tail = "," if len(self.fn.outputs) == 1 else ""
            self.line(f"return ({rets}{tail})")
        elif isinstance(stmt, ast.Clear):
            for name in stmt.names or list(self.var_kinds):
                self.line(f"{self.var(name)} = None")
        elif isinstance(stmt, ast.Global):
            raise CodegenError("global is not supported in compiled code")
        else:
            raise CodegenError(f"cannot compile {type(stmt).__name__}")

    def emit_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if not target.is_indexed:
            kind = self.var_kind(target.name)
            code, from_kind = self.gen(stmt.value)
            code = self.coerce(code, from_kind, kind)
            if (
                kind == BOXED
                and isinstance(stmt.value, ast.Ident)
                and (
                    target.name in self.selector.mutated_names
                    or stmt.value.name in self.selector.mutated_names
                )
            ):
                code = f"{self.helper('copy_value')}({code})"
            self.line(f"{self.var(target.name)} = {code}")
            if target.name in self.data_alias:
                # Wholesale reassignment invalidates the hoisted pointer.
                alias = self.data_alias.pop(target.name)
                self.line(f"{alias} = {self.var(target.name)}.data")
            if stmt.display:
                self.line(
                    f"{self.helper('display_value')}({target.name!r}, "
                    f"{self.coerce(self.var(target.name), kind, BOXED)})"
                )
            return
        self.emit_indexed_store(target, stmt.value)

    def emit_indexed_store(self, target: ast.LValue, value_expr: ast.Expr) -> None:
        value_code, value_kind = self.gen(value_expr)
        name = target.name
        arr = self.var(name)
        safety = self.ann.safety_of_store(target)
        if id(target) in self.forced_safe:
            safety = SubscriptSafety.SAFE
        indices = target.indices
        scalar_ok = (
            self.var_kind(name) == BOXED
            and value_kind in (RAW_REAL, RAW_INT, RAW_COMPLEX)
            and all(
                not isinstance(i, (ast.ColonAll, ast.Range))
                and self.ann.type_of(i).is_scalar
                for i in indices
            )
        )
        if scalar_ok and value_kind == RAW_COMPLEX:
            # Complex stores may need to widen the buffer; route through
            # the checked helper, which handles widening on raw complex.
            helper = self.helper(
                "checked_store1" if len(indices) == 1 else "checked_store2"
            )
            idx = [
                self.gen(i, end_array=name,
                         end_dim=(0 if len(indices) == 1 else p + 1))[0]
                for p, i in enumerate(indices)
            ]
            self.line(f"{helper}({arr}, {', '.join(idx)}, {value_code})")
            return
        if scalar_ok and safety is SubscriptSafety.SAFE:
            idx = [
                self.as_index(*self.gen(i, end_array=name,
                                        end_dim=(0 if len(indices) == 1 else p + 1)))
                for p, i in enumerate(indices)
            ]
            base = self.data_alias.get(name, f"{arr}.data")
            if len(idx) == 1:
                array_type = self.ann.var_type(name)
                if array_type.maxshape.rows == 1:
                    self.line(f"{base}[0, {idx[0]} - 1] = {value_code}")
                elif array_type.maxshape.cols == 1:
                    self.line(f"{base}[{idx[0]} - 1, 0] = {value_code}")
                else:
                    self.line(
                        f"{base}[divmod({idx[0]} - 1, {arr}.rows)[::-1]] "
                        f"= {value_code}"
                    )
            else:
                self.line(f"{base}[{idx[0]} - 1, {idx[1]} - 1] = {value_code}")
            return
        if scalar_ok and safety in (
            SubscriptSafety.GROW_ONLY, SubscriptSafety.CHECKED
        ):
            kind = "grow" if safety is SubscriptSafety.GROW_ONLY else "checked"
            helper = self.helper(
                f"{kind}_store1" if len(indices) == 1 else f"{kind}_store2"
            )
            idx = [
                self.gen(i, end_array=name,
                         end_dim=(0 if len(indices) == 1 else p + 1))[0]
                for p, i in enumerate(indices)
            ]
            self.line(f"{helper}({arr}, {', '.join(idx)}, {value_code})")
            return
        # Generic store.
        idx_codes = []
        for position, index in enumerate(indices):
            if isinstance(index, ast.ColonAll):
                idx_codes.append(f"{self.helper('colon_marker')}()")
            else:
                code, kind = self.gen(
                    index, end_array=name,
                    end_dim=(0 if len(indices) == 1 else position + 1),
                )
                idx_codes.append(code)
        helper = self.helper("g_store1" if len(indices) == 1 else "g_store2")
        boxed_value = self.coerce(value_code, value_kind, BOXED)
        self.line(f"{arr} = {helper}({arr}, {', '.join(idx_codes)}, {boxed_value})")
        if name in self.data_alias:
            alias = self.data_alias.pop(name)
            self.line(f"{alias} = {arr}.data")

    def emit_multi_assign(self, stmt: ast.MultiAssign) -> None:
        call = stmt.call
        if not isinstance(call, ast.Apply) or call.kind is ast.ApplyKind.INDEX:
            raise CodegenError("multi-assignment requires a function call")
        args = ", ".join(
            self.coerce(*self.gen(a), BOXED) for a in call.args
        )
        nargout = len(stmt.targets)
        if call.kind is ast.ApplyKind.BUILTIN:
            call_code = (
                f"{self.helper('builtin')}"
                f"({call.name!r}, {nargout}{', ' + args if args else ''})"
            )
        else:
            call_code = (
                f"{self.helper('call_user')}"
                f"({call.name!r}, {nargout}{', ' + args if args else ''})"
            )
        temp = self.fresh("m")
        self.line(f"{temp} = {call_code}")
        for position, target in enumerate(stmt.targets):
            element = f"{temp}[{position}]"
            if target.is_indexed:
                idx_codes = [
                    self.gen(i)[0] if not isinstance(i, ast.ColonAll)
                    else f"{self.helper('colon_marker')}()"
                    for i in target.indices
                ]
                helper = self.helper(
                    "g_store1" if len(target.indices) == 1 else "g_store2"
                )
                arr = self.var(target.name)
                self.line(f"{arr} = {helper}({arr}, {', '.join(idx_codes)}, {element})")
            else:
                kind = self.var_kind(target.name)
                self.line(
                    f"{self.var(target.name)} = "
                    f"{self.coerce(element, BOXED, kind)}"
                )

    # ------------------------------------------------------------------
    # Loops: hoisting + versioning
    # ------------------------------------------------------------------
    def emit_for(self, stmt: ast.For) -> None:
        var_kind = self.var_kind(stmt.var)
        iterable = stmt.iterable
        if not isinstance(iterable, ast.Range) or var_kind == BOXED:
            code, kind = self.gen(iterable)
            self.line(
                f"for {self.var(stmt.var)} in "
                f"{self.helper('columns')}({self.coerce(code, kind, BOXED)}):"
            )
            self.depth += 1
            self.emit_stmts(stmt.body)
            self.depth -= 1
            return

        start_temp, stop_temp = self.fresh("lo"), self.fresh("hi")
        self.line(f"{start_temp} = {self.coerce(*self.gen(iterable.start), RAW_REAL)}")
        self.line(f"{stop_temp} = {self.coerce(*self.gen(iterable.stop), RAW_REAL)}")
        step_temp = None
        if iterable.step is not None:
            step_temp = self.fresh("st")
            self.line(f"{step_temp} = {self.coerce(*self.gen(iterable.step), RAW_REAL)}")

        # Loop-invariant hoisting (strong native backend only).
        saved_hoisted = dict(self.hoisted)
        if self.options.native_opt_level >= 2:
            variant = assigned_in(stmt.body) | {stmt.var}
            for expr in find_hoistable(stmt.body, self.ann, variant):
                if id(expr) in self.hoisted:
                    continue
                code, _ = self.gen(expr)
                temp = self.fresh("inv")
                self.line(f"{temp} = {code}")
                self.hoisted[id(expr)] = temp

        plan = (
            plan_versioning(stmt, self.ann)
            if self.options.versioning
            else VersioningPlan()
        )
        if plan.worthwhile:
            descending = (
                iterable.step is not None
                and (_const_int_step(self.ann, iterable.step) or 1) < 0
            )
            lo_temp, hi_temp = (
                (stop_temp, start_temp) if descending
                else (start_temp, stop_temp)
            )
            guard = self._guard_code(plan, lo_temp, hi_temp)
            self.line(f"if {guard}:")
            self.depth += 1
            saved_forced = set(self.forced_safe)
            self.forced_safe |= plan.forced_safe
            self._emit_counted_loop(stmt, start_temp, stop_temp, step_temp)
            self.forced_safe = saved_forced
            self.depth -= 1
            self.line("else:")
            self.depth += 1
            self._emit_counted_loop(stmt, start_temp, stop_temp, step_temp)
            self.depth -= 1
        else:
            self._emit_counted_loop(stmt, start_temp, stop_temp, step_temp)
        self.hoisted = saved_hoisted

    def _emit_counted_loop(self, stmt, start_temp, stop_temp, step_temp) -> None:
        var = self.var(stmt.var)
        var_kind = self.var_kind(stmt.var)
        saved_alias = dict(self.data_alias)
        if self.options.native_opt_level >= 2:
            self._hoist_data_pointers(stmt)
        const_step = (
            _const_int_step(self.ann, stmt.iterable.step)
            if step_temp is not None and isinstance(stmt.iterable, ast.Range)
            else None
        )
        if step_temp is None and var_kind == RAW_INT:
            self.line(f"for {var} in range(int({start_temp}), int({stop_temp}) + 1):")
            self.depth += 1
            self.emit_stmts(stmt.body)
            self.depth -= 1
        elif const_step is not None and var_kind == RAW_INT:
            edge = 1 if const_step > 0 else -1
            self.line(
                f"for {var} in range(int({start_temp}), "
                f"int({stop_temp}) + {edge}, {const_step}):"
            )
            self.depth += 1
            self.emit_stmts(stmt.body)
            self.depth -= 1
        elif step_temp is None:
            self.line(f"{var} = {start_temp}")
            self.line(f"while {var} <= {stop_temp}:")
            self.depth += 1
            self.emit_stmts(stmt.body)
            self.line(f"{var} = {var} + 1.0")
            self.depth -= 1
        else:
            step_type = self.ann.type_of(stmt.iterable.step)
            if step_type.is_constant and step_type.constant_value != 0:
                compare = ">=" if step_type.constant_value < 0 else "<="
                self.line(f"{var} = {start_temp}")
                self.line(f"while {var} {compare} {stop_temp}:")
                self.depth += 1
                self.emit_stmts(stmt.body)
                self.line(f"{var} = {var} + {step_temp}")
                self.depth -= 1
            else:
                self.line(
                    f"for {var} in {self.helper('frange')}"
                    f"({start_temp}, {step_temp}, {stop_temp}):"
                )
                self.depth += 1
                self.emit_stmts(stmt.body)
                self.depth -= 1
        self.data_alias = saved_alias

    def _hoist_data_pointers(self, stmt: ast.For) -> None:
        """Bind ``_d_name = v_name.data`` for loop-stable arrays."""
        reassigned: set[str] = set()
        unstable: set[str] = set()
        accessed: set[str] = set()
        for inner in ast.walk_stmts(stmt.body):
            if isinstance(inner, ast.Assign):
                if inner.target.is_indexed:
                    safety = self.ann.safety_of_store(inner.target)
                    if id(inner.target) in self.forced_safe:
                        safety = SubscriptSafety.SAFE
                    if safety is not SubscriptSafety.SAFE:
                        unstable.add(inner.target.name)
                    else:
                        accessed.add(inner.target.name)
                else:
                    reassigned.add(inner.target.name)
            elif isinstance(inner, ast.MultiAssign):
                for target in inner.targets:
                    (unstable if target.is_indexed else reassigned).add(
                        target.name
                    )
            for expr in ast.stmt_exprs(inner):
                for node in ast.walk_expr(expr):
                    if (
                        isinstance(node, ast.Apply)
                        and node.kind is ast.ApplyKind.INDEX
                    ):
                        safety = self.ann.safety_of_load(node)
                        if id(node) in self.forced_safe:
                            safety = SubscriptSafety.SAFE
                        if safety is SubscriptSafety.SAFE:
                            accessed.add(node.name)
        for name in sorted(accessed - reassigned - unstable):
            if self.var_kind(name) != BOXED or name in self.data_alias:
                continue
            alias = self.fresh(f"d_{name}")
            self.line(f"{alias} = {self.var(name)}.data")
            self.data_alias[name] = alias

    def _guard_code(self, plan: VersioningPlan, start_temp: str, stop_temp: str) -> str:
        parts: list[str] = []
        for term in plan.guard_terms:
            arr = self.var(term.array)
            if term.dim == 0:
                extent = f"({arr}.rows * {arr}.cols)"
            elif term.dim == 1:
                extent = f"{arr}.rows"
            else:
                extent = f"{arr}.cols"
            affine = term.affine
            if affine.uses_var:
                if affine.offset_expr is None:
                    lo, hi = start_temp, stop_temp
                else:
                    offset, _ = self.gen(affine.offset_expr)
                    sign = "+" if affine.offset_sign > 0 else "-"
                    lo = f"({start_temp} {sign} ({offset}))"
                    hi = f"({stop_temp} {sign} ({offset}))"
            else:
                code, _ = self.gen(affine.invariant)
                lo = hi = f"({code})"
            parts.append(f"{lo} >= 1")
            parts.append(f"{hi} <= {extent}")
        return " and ".join(dict.fromkeys(parts)) or "False"

    # ------------------------------------------------------------------
    # Expressions → (code, kind)
    # ------------------------------------------------------------------
    def gen_condition(self, cond: ast.Expr) -> str:
        code, kind = self.gen(cond)
        if kind == BOXED:
            return f"{self.helper('truth')}({code})"
        return code

    def gen(
        self, expr: ast.Expr, end_array: str | None = None, end_dim: int = 0
    ) -> tuple[str, str]:
        temp = self.hoisted.get(id(expr))
        if temp is not None:
            return temp, RAW_REAL
        if isinstance(expr, ast.Number):
            value = expr.value
            if value == int(value) and abs(value) < 2**53:
                # Integral literals stay host ints: index arithmetic on
                # them avoids the int() conversion at every access.
                return repr(int(value)), RAW_INT
            return repr(value), RAW_REAL
        if isinstance(expr, ast.ImagNumber):
            return repr(complex(0.0, expr.value)), RAW_COMPLEX
        if isinstance(expr, ast.StringLit):
            return f"{self.helper('make_string')}({expr.text!r})", BOXED
        if isinstance(expr, ast.Ident):
            return self.gen_ident(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.gen_unary(expr, end_array, end_dim)
        if isinstance(expr, ast.BinaryOp):
            return self.gen_binary(expr, end_array, end_dim)
        if isinstance(expr, ast.Transpose):
            code, kind = self.gen(expr.operand)
            if kind in (RAW_REAL, RAW_INT):
                return code, kind
            helper = "g_ctranspose" if expr.conjugate else "g_transpose"
            return f"{self.helper(helper)}({code})", BOXED
        if isinstance(expr, ast.Range):
            parts = [
                self.coerce(*self.gen(p, end_array, end_dim), RAW_REAL)
                for p in (
                    [expr.start]
                    + ([expr.step] if expr.step is not None else [])
                    + [expr.stop]
                )
            ]
            helper = "colon3" if len(parts) == 3 else "colon2"
            return f"{self.helper(helper)}({', '.join(parts)})", BOXED
        if isinstance(expr, ast.MatrixLit):
            return self.gen_matrix(expr)
        if isinstance(expr, ast.EndMarker):
            arr = self.var(end_array) if end_array else "None"
            return f"{self.helper('end_dim')}({arr}, {end_dim})", RAW_INT
        if isinstance(expr, ast.Apply):
            return self.gen_apply(expr)
        raise CodegenError(f"cannot compile {type(expr).__name__}")

    def gen_ident(self, expr: ast.Ident) -> tuple[str, str]:
        kind = self.dis.kind_of(expr)
        if kind is SymbolKind.VARIABLE:
            return self.var(expr.name), self.var_kind(expr.name)
        if kind is SymbolKind.BUILTIN:
            mtype = self.ann.type_of(expr)
            if mtype.is_constant:
                return repr(mtype.constant_value), RAW_REAL
            if expr.name in ("i", "j"):
                return "1j", RAW_COMPLEX
            code = f"{self.helper('builtin1')}({expr.name!r})"
            return self._annotate(code, BOXED, expr)
        if kind is SymbolKind.USER_FUNCTION:
            code = f"{self.helper('call_user')}({expr.name!r}, 1)[0]"
            return self._annotate(code, BOXED, expr)
        info = self.dis.symbols.lookup(expr.name)
        current = (
            self.coerce(self.var(expr.name), self.var_kind(expr.name), BOXED)
            if info is not None and info.assigned
            else "None"
        )
        return f"{self.helper('ambiguous_lookup')}({expr.name!r}, {current})", BOXED

    def _annotate(self, code: str, kind: str, expr: ast.Expr) -> tuple[str, str]:
        target = repr_of_type(self.ann.type_of(expr))
        if target != kind:
            return self.coerce(code, kind, target), target
        return code, kind

    def gen_unary(self, expr, end_array, end_dim) -> tuple[str, str]:
        shape = self.selector.unroll_shape(expr)
        if shape is not None and expr.op is ast.UnaryKind.NEG:
            return self.gen_unrolled(expr, shape)
        code, kind = self.gen(expr.operand, end_array, end_dim)
        if kind != BOXED:
            if expr.op is ast.UnaryKind.NEG:
                return f"(-{code})", kind
            if expr.op is ast.UnaryKind.POS:
                return code, kind
            return f"(0.0 if {code} != 0 else 1.0)", RAW_REAL
        helper = {"-": "g_neg", "+": "box", "~": "g_not"}[expr.op.value]
        return f"{self.helper(helper)}({code})", BOXED

    def gen_binary(self, expr, end_array, end_dim) -> tuple[str, str]:
        if expr.op in ("&&", "||"):
            left = self.gen_condition(expr.left)
            right = self.gen_condition(expr.right)
            joiner = "and" if expr.op == "&&" else "or"
            return (
                f"(1.0 if (({left}) != 0 {joiner} ({right}) != 0) else 0.0)",
                RAW_REAL,
            )
        match = self.selector.match_dgemv(expr)
        if match is not None:
            return self.gen_dgemv(match)
        shape = self.selector.unroll_shape(expr)
        if shape is not None:
            return self.gen_unrolled(expr, shape)
        left, lkind = self.gen(expr.left, end_array, end_dim)
        right, rkind = self.gen(expr.right, end_array, end_dim)
        raw = lkind != BOXED and rkind != BOXED
        if raw and expr.op in _BINOP_PY:
            kind = RAW_COMPLEX if RAW_COMPLEX in (lkind, rkind) else RAW_REAL
            if (
                lkind == RAW_INT
                and rkind == RAW_INT
                and expr.op in ("+", "-", "*", ".*")
            ):
                kind = RAW_INT  # host int arithmetic stays int
            if self.ann.type_of(expr).is_complex:
                kind = RAW_COMPLEX
            return f"({left} {_BINOP_PY[expr.op]} {right})", kind
        if raw and expr.op in _CMP_PY:
            return (
                f"(1.0 if {left} {_CMP_PY[expr.op]} {right} else 0.0)",
                RAW_REAL,
            )
        if raw and expr.op in ("&", "|"):
            joiner = "and" if expr.op == "&" else "or"
            return (
                f"(1.0 if (({left}) != 0 {joiner} ({right}) != 0) else 0.0)",
                RAW_REAL,
            )
        if raw and expr.op in ("\\", ".\\"):
            return f"({right} / {left})", (
                RAW_COMPLEX if RAW_COMPLEX in (lkind, rkind) else RAW_REAL
            )
        helper = self.helper(_BINOP_HELPER[expr.op])
        return self._annotate(f"{helper}({left}, {right})", BOXED, expr)

    def gen_dgemv(self, match) -> tuple[str, str]:
        alpha = (
            "1.0" if match.alpha is None
            else self.coerce(*self.gen(match.alpha), RAW_REAL)
        )
        matrix = self.coerce(*self.gen(match.matrix), BOXED)
        vector = self.coerce(*self.gen(match.vector), BOXED)
        if match.addend is None:
            beta, addend = "0.0", "None"
        else:
            beta = (
                "1.0" if match.beta is None
                else self.coerce(*self.gen(match.beta), RAW_REAL)
            )
            addend = self.coerce(*self.gen(match.addend), BOXED)
        helper = self.helper("dgemv")
        return f"{helper}({alpha}, {matrix}, {vector}, {beta}, {addend})", BOXED

    def gen_matrix(self, expr: ast.MatrixLit) -> tuple[str, str]:
        shape = self.selector.unroll_shape(expr)
        if shape is not None:
            return self.gen_unrolled(expr, shape)
        if not expr.rows:
            return f"{self.helper('empty_matrix')}()", BOXED
        rows = []
        for row in expr.rows:
            elems = ", ".join(self.gen(item)[0] for item in row)
            rows.append(f"{self.helper('hcat')}({elems})")
        if len(rows) == 1:
            return rows[0], BOXED
        return f"{self.helper('vcat')}({', '.join(rows)})", BOXED

    def gen_unrolled(self, expr: ast.Expr, shape: tuple[int, int]) -> tuple[str, str]:
        rows, cols = shape
        buffer = self.fresh("buf")
        self.prologue.append(
            f"    {buffer} = {self.helper('alloc')}({rows}, {cols})"
        )
        buffer_data = f"{buffer}.data"
        if isinstance(expr, ast.MatrixLit):
            values = []
            for r, row in enumerate(expr.rows):
                for c, item in enumerate(row):
                    values.append(
                        (r, c, self.coerce(*self.gen(item), RAW_REAL))
                    )
            temps = []
            for r, c, code in values:
                temp = self.fresh("e")
                self.line(f"{temp} = {code}")
                temps.append((r, c, temp))
            for r, c, temp in temps:
                self.line(f"{buffer_data}[{r}, {c}] = {temp}")
            return buffer, BOXED
        if isinstance(expr, ast.UnaryOp):
            operand = self._unroll_source(expr.operand)
            for r in range(rows):
                for c in range(cols):
                    self.line(
                        f"{buffer_data}[{r}, {c}] = "
                        f"(-{self._unroll_elem(operand, r, c)})"
                    )
            return buffer, BOXED
        left = self._unroll_source(expr.left)
        right = self._unroll_source(expr.right)
        op = _BINOP_PY[expr.op]
        for r in range(rows):
            for c in range(cols):
                a = self._unroll_elem(left, r, c)
                b = self._unroll_elem(right, r, c)
                self.line(f"{buffer_data}[{r}, {c}] = ({a} {op} {b})")
        return buffer, BOXED

    def _unroll_source(self, node: ast.Expr):
        mtype = self.ann.type_of(node)
        if mtype.is_scalar:
            code = self.coerce(*self.gen(node), RAW_REAL)
            if not _is_simple_code(code):
                temp = self.fresh("s")
                self.line(f"{temp} = {code}")
                code = temp
            return ("scalar", code)
        code = self.coerce(*self.gen(node), BOXED)
        if not _is_simple_code(code):
            temp = self.fresh("a")
            self.line(f"{temp} = {code}")
            code = temp
        return ("array", code)

    def _unroll_elem(self, source, r: int, c: int) -> str:
        tag, code = source
        if tag == "scalar":
            return code
        return f"{code}.data.item({r}, {c})"

    # ------------------------------------------------------------------
    def gen_apply(self, expr: ast.Apply) -> tuple[str, str]:
        if expr.kind is ast.ApplyKind.INDEX:
            return self.gen_index_load(expr)
        if expr.kind is ast.ApplyKind.BUILTIN:
            return self.gen_builtin(expr)
        args = ", ".join(
            self.coerce(*self.gen(a), BOXED) for a in expr.args
        )
        code = f"{self.helper('call_user')}({expr.name!r}, 1{', ' + args if args else ''})[0]"
        return self._annotate(code, BOXED, expr)

    def gen_index_load(self, expr: ast.Apply) -> tuple[str, str]:
        name = expr.name
        arr = self.var(name)
        element = self.ann.type_of(expr)
        target_kind = repr_of_type(element)
        indices = expr.args
        safety = self.ann.safety_of_load(expr)
        if id(expr) in self.forced_safe:
            safety = SubscriptSafety.SAFE
        scalar_ok = (
            self.var_kind(name) == BOXED
            and target_kind in (RAW_REAL, RAW_COMPLEX)
            and all(
                not isinstance(i, (ast.ColonAll, ast.Range))
                and self.ann.type_of(i).is_scalar
                for i in indices
            )
        )
        if scalar_ok:
            idx = [
                self.gen(i, end_array=name,
                         end_dim=(0 if len(indices) == 1 else p + 1))
                for p, i in enumerate(indices)
            ]
            if safety is SubscriptSafety.SAFE:
                base = self.data_alias.get(name, f"{arr}.data")
                ints = [self.as_index(c, k) for c, k in idx]
                if len(ints) == 1:
                    return f"{base}.item({ints[0]} - 1)", target_kind
                return (
                    f"{base}.item({ints[0]} - 1, {ints[1]} - 1)",
                    target_kind,
                )
            helper = self.helper(
                "checked_load1" if len(idx) == 1 else "checked_load2"
            )
            codes = ", ".join(c for c, _ in idx)
            return f"{helper}({arr}, {codes})", target_kind
        # Generic indexing.
        source = (
            arr
            if self.var_kind(name) == BOXED
            else self.coerce(arr, self.var_kind(name), BOXED)
        )
        colon = [
            position
            for position, index in enumerate(indices)
            if isinstance(index, ast.ColonAll)
        ]
        codes = [
            "None" if isinstance(i, ast.ColonAll)
            else self.gen(i, end_array=name,
                          end_dim=(0 if len(indices) == 1 else p + 1))[0]
            for p, i in enumerate(indices)
        ]
        if len(indices) == 1:
            if colon:
                code = f"{self.helper('index_all')}({source})"
            else:
                code = f"{self.helper('g_index1')}({source}, {codes[0]})"
        elif colon == [0]:
            code = f"{self.helper('index_col')}({source}, {codes[1]})"
        elif colon == [1]:
            code = f"{self.helper('index_row')}({source}, {codes[0]})"
        elif colon == [0, 1]:
            code = f"{self.helper('index_whole')}({source})"
        else:
            code = f"{self.helper('g_index2')}({source}, {codes[0]}, {codes[1]})"
        return self._annotate(code, BOXED, expr)

    def gen_builtin(self, expr: ast.Apply) -> tuple[str, str]:
        mtype = self.ann.type_of(expr)
        from repro.runtime.builtins import BUILTINS

        entry = BUILTINS.get(expr.name)
        if mtype.is_constant and entry is not None and entry.pure and not expr.args:
            return repr(mtype.constant_value), RAW_REAL
        fast = SCALAR_MATH.get(expr.name)
        if fast is not None and len(expr.args) == 1:
            arg_type = self.ann.type_of(expr.args[0])
            if arg_type.is_scalar and arg_type.is_real_like:
                code = self.coerce(*self.gen(expr.args[0]), RAW_REAL)
                if mtype.is_scalar and mtype.is_real_like:
                    if fast[0] == "abs":
                        return f"abs({code})", RAW_REAL
                    return f"{self.helper(fast[0])}({code})", RAW_REAL
                if fast[1] is not None and mtype.is_scalar:
                    return f"{self.helper(fast[1])}({code})", RAW_COMPLEX
            if (
                arg_type.is_scalar
                and arg_type.intrinsic is Intrinsic.COMPLEX
                and fast[1] is not None
            ):
                code = self.coerce(*self.gen(expr.args[0]), RAW_COMPLEX)
                kind = RAW_REAL if expr.name == "abs" else RAW_COMPLEX
                return f"{self.helper(fast[1])}({code})", kind
        if expr.name in ("mod", "rem") and len(expr.args) == 2:
            types = [self.ann.type_of(a) for a in expr.args]
            if all(t.is_scalar and t.is_real_like for t in types):
                codes = [
                    self.coerce(*self.gen(a), RAW_REAL) for a in expr.args
                ]
                helper = self.helper("m_mod" if expr.name == "mod" else "m_rem")
                return f"{helper}({', '.join(codes)})", RAW_REAL
        args = ", ".join(self.coerce(*self.gen(a), BOXED) for a in expr.args)
        code = (
            f"{self.helper('builtin1')}({expr.name!r}"
            f"{', ' + args if args else ''})"
        )
        return self._annotate(code, BOXED, expr)


def _const_int_step(annotations, step_expr) -> int | None:
    """The value of a constant integral nonzero loop step, else None."""
    if step_expr is None:
        return None
    step_type = annotations.type_of(step_expr)
    if (
        step_type.is_constant
        and step_type.constant_value == int(step_type.constant_value)
        and step_type.constant_value != 0
    ):
        return int(step_type.constant_value)
    return None


def _is_simple_code(code: str) -> bool:
    """True for a bare variable or literal (safe to repeat in unrolls)."""
    return code.replace("_", "a").replace(".", "0").isalnum()
