"""Runtime support linked into generated code.

Generated functions receive a :class:`RuntimeSupport` instance (``rt``) and
hoist the helpers they use into locals.  Most helpers are module-level
functions (no per-call state); the instance itself only carries the pieces
that depend on the execution context — the user-function dispatcher (which
re-enters the code repository) and the output sink.

The generic ``g_*`` operators accept raw host scalars *or* boxed MxArrays:
they are the compiled-code analogue of the MATLAB C library calls in the
paper's Figure 3 and are exactly what the mcc baseline emits for every
operation.
"""

from __future__ import annotations

import cmath
import math
import time

from repro.errors import RuntimeMatlabError
from repro.runtime import builtins as rt_builtins
from repro.runtime import checks, display, elementwise as ew, linalg
from repro.runtime.mxarray import IntrinsicClass, MxArray
from repro.runtime.values import from_ndarray, make_scalar

import numpy as np

Raw = (int, float, complex, bool)


def box(value) -> MxArray:
    """Box a raw scalar (identity on MxArrays)."""
    if isinstance(value, MxArray):
        return value
    return make_scalar(value)


def unbox(value):
    """Unbox a scalar MxArray into a host scalar (identity on raw)."""
    if isinstance(value, MxArray):
        if value.is_string:
            return value
        return value.scalar()
    return value


def unbox_real(value) -> float:
    """Unbox expecting a real scalar; complex raises (guard for
    annotation-driven raw-float paths fed by dynamic library results)."""
    if isinstance(value, MxArray):
        value = value.scalar()
    if isinstance(value, complex):
        if value.imag == 0.0:
            return value.real
        raise RuntimeMatlabError("expected a real value, got complex")
    return float(value)


def truth(value) -> bool:
    """MATLAB truth: non-empty and all-nonzero."""
    if isinstance(value, MxArray):
        return value.bool_value()
    return value != 0


def copy_value(value):
    """Call-by-value copy (raw scalars are immutable already)."""
    if isinstance(value, MxArray):
        return value.copy()
    return value


# ----------------------------------------------------------------------
# Generic operators (raw-or-boxed polymorphic)
# ----------------------------------------------------------------------
def _generic(op_raw, op_boxed):
    def op(a, b):
        if isinstance(a, Raw) and isinstance(b, Raw):
            return op_raw(a, b)
        return op_boxed(box(a), box(b))

    return op


g_add = _generic(lambda a, b: a + b, ew.mlf_plus)
g_sub = _generic(lambda a, b: a - b, ew.mlf_minus)
g_mul = _generic(lambda a, b: a * b, ew.mlf_mtimes)
g_emul = _generic(lambda a, b: a * b, ew.mlf_times)
g_div = _generic(lambda a, b: a / b, ew.mlf_mrdivide)
g_ediv = _generic(lambda a, b: a / b, ew.mlf_rdivide)
g_ldiv = _generic(lambda a, b: b / a, ew.mlf_mldivide)
g_eldiv = _generic(lambda a, b: b / a, ew.mlf_ldivide)


def _raw_pow(a, b):
    if (
        not isinstance(a, complex)
        and not isinstance(b, complex)
        and a < 0
        and b != int(b)
    ):
        return complex(a) ** b
    return a ** b


g_pow = _generic(_raw_pow, ew.mlf_mpower)
g_epow = _generic(_raw_pow, ew.mlf_power)
g_lt = _generic(lambda a, b: 1.0 if a.real < b.real else 0.0, ew.mlf_lt)
g_le = _generic(lambda a, b: 1.0 if a.real <= b.real else 0.0, ew.mlf_le)
g_gt = _generic(lambda a, b: 1.0 if a.real > b.real else 0.0, ew.mlf_gt)
g_ge = _generic(lambda a, b: 1.0 if a.real >= b.real else 0.0, ew.mlf_ge)
g_eq = _generic(lambda a, b: 1.0 if a == b else 0.0, ew.mlf_eq)
g_ne = _generic(lambda a, b: 1.0 if a != b else 0.0, ew.mlf_ne)
g_and = _generic(
    lambda a, b: 1.0 if (a != 0 and b != 0) else 0.0, ew.mlf_and
)
g_or = _generic(lambda a, b: 1.0 if (a != 0 or b != 0) else 0.0, ew.mlf_or)


def g_neg(a):
    if isinstance(a, Raw):
        return -a
    return ew.mlf_uminus(a)


def g_not(a):
    if isinstance(a, Raw):
        return 0.0 if a != 0 else 1.0
    return ew.mlf_not(a)


def g_transpose(a):
    if isinstance(a, Raw):
        return a
    return ew.mlf_transpose(a)


def g_ctranspose(a):
    if isinstance(a, Raw):
        return a.conjugate() if isinstance(a, complex) else a
    return ew.mlf_ctranspose(a)


# ----------------------------------------------------------------------
# Indexing
# ----------------------------------------------------------------------
COLON = object()  # marker for a bare ':' subscript in generic index paths

checked_load1 = checks.checked_load1
checked_load2 = checks.checked_load2
checked_store1 = checks.checked_store1
checked_store2 = checks.checked_store2
grow_store1 = checks.unchecked_store_grow1
grow_store2 = checks.unchecked_store_grow2


def g_index1(a, idx):
    """Generic ``A(idx)`` where idx may be raw, boxed or ':'."""
    a = box(a)
    if idx is COLON:
        return ew.mlf_index_all(a)
    if isinstance(idx, Raw):
        return a.get_linear(idx.real if isinstance(idx, complex) else idx)
    return ew.mlf_index(a, idx)


def g_index2(a, i, j):
    a = box(a)
    if i is COLON or j is COLON or not (
        isinstance(i, Raw) and isinstance(j, Raw)
    ):
        from repro.runtime.elementwise import mlf_colon

        def normalize(idx, dim_size):
            if idx is COLON:
                return mlf_colon(make_scalar(1), make_scalar(dim_size))
            return box(idx)

        return ew.mlf_index(a, normalize(i, a.rows), normalize(j, a.cols))
    return a.get2(
        i.real if isinstance(i, complex) else i,
        j.real if isinstance(j, complex) else j,
    )


def g_store1(a, idx, value) -> MxArray:
    """Generic ``A(idx) = value``; returns the (possibly new) array."""
    if a is None:
        a = empty_matrix()  # store into an undefined name creates the array
    a = box(a)
    if idx is COLON:
        return ew.mlf_store(a, box(value), _full_range(a.numel))
    if isinstance(idx, Raw) and isinstance(value, Raw):
        a.set_linear(idx.real if isinstance(idx, complex) else idx, value)
        return a
    if isinstance(idx, Raw) and isinstance(value, MxArray) and value.is_scalar:
        a.set_linear(
            idx.real if isinstance(idx, complex) else idx, value.data[0, 0]
        )
        return a
    return ew.mlf_store(a, box(value), box(idx))


def g_store2(a, i, j, value) -> MxArray:
    if a is None:
        a = empty_matrix()
    a = box(a)
    raw_scalar = isinstance(i, Raw) and isinstance(j, Raw)
    if raw_scalar and isinstance(value, Raw):
        a.set2(
            i.real if isinstance(i, complex) else i,
            j.real if isinstance(j, complex) else j,
            value,
        )
        return a
    if i is COLON:
        i = _full_range(a.rows)
    if j is COLON:
        j = _full_range(a.cols)
    return ew.mlf_store(a, box(value), box(i), box(j))


def _full_range(count: int) -> MxArray:
    return ew.mlf_colon(make_scalar(1), make_scalar(count))


# ----------------------------------------------------------------------
# Ranges, iteration, construction
# ----------------------------------------------------------------------
def colon2(a, b) -> MxArray:
    return ew.mlf_colon(box(a), box(b))


def colon3(a, step, b) -> MxArray:
    return ew.mlf_colon(box(a), box(step), box(b))


def frange(start: float, step: float, stop: float):
    """Generic numeric loop range (unknown step sign)."""
    value = start
    if step > 0:
        while value <= stop:
            yield value
            value += step
    elif step < 0:
        while value >= stop:
            yield value
            value += step


def columns(value):
    """Iterate the columns of a boxed iterable (``for v = M``)."""
    boxed = box(value)
    if boxed.is_string:
        for ch in boxed.text:
            yield MxArray(IntrinsicClass.STRING, text=ch)
        return
    view = boxed.view()
    if boxed.rows == 1:
        for k in range(boxed.cols):
            yield view[0, k]  # scalar fast path for row vectors
        return
    for k in range(boxed.cols):
        yield from_ndarray(view[:, k: k + 1].copy())


def build_matrix(rows) -> MxArray:
    """Bracket operator over evaluated (raw or boxed) elements."""
    boxed_rows = [ew.mlf_horzcat([box(item) for item in row]) for row in rows]
    if len(boxed_rows) == 1:
        return boxed_rows[0]
    return ew.mlf_vertcat(boxed_rows)


def alloc(rows: int, cols: int) -> MxArray:
    """Pre-allocated temporary buffer (Section 2.6.1)."""
    return MxArray(IntrinsicClass.REAL, np.zeros((rows, cols)))


def dgemv(alpha, a, x, beta, y) -> MxArray:
    """Fused ``alpha*A*x + beta*y`` (code-selection rule of Section 2.6.1).

    Code selection fires this on the *likely* dgemv shape; when the actual
    operands do not conform as matrix × column-vector (annotations are
    conservative guesses, and the Figure 7 ablations weaken them), the
    kernel falls back to the generic operator chain, preserving MATLAB
    semantics exactly.
    """
    a_boxed, x_boxed = box(a), box(x)
    alpha_scalar = not isinstance(alpha, MxArray) or alpha.is_scalar
    beta_scalar = not isinstance(beta, MxArray) or beta.is_scalar
    if (
        alpha_scalar
        and beta_scalar
        and a_boxed.cols == x_boxed.rows
        and x_boxed.cols == 1
        and not a_boxed.is_scalar
    ):
        y_boxed = box(y) if y is not None else None
        beta_raw = unbox_real(beta)
        if y_boxed is None or (
            beta_raw != 0.0
            and y_boxed.shape == (a_boxed.rows, 1)
        ) or beta_raw == 0.0:
            return linalg.dgemv(
                unbox_real(alpha), a_boxed, x_boxed, beta_raw,
                y_boxed if y_boxed is not None else box(0.0),
            )
    # Generic fallback.
    product = g_mul(alpha, g_mul(a, x))
    if y is None:
        return box(product)
    return g_add(product, g_mul(beta, y))


# ----------------------------------------------------------------------
# Raw scalar math (inlined elementary functions)
# ----------------------------------------------------------------------
m_sqrt = math.sqrt
m_exp = math.exp
m_log = math.log
m_sin = math.sin
m_cos = math.cos
m_tan = math.tan
m_atan = math.atan
m_floor = math.floor
m_ceil = math.ceil
c_sqrt = cmath.sqrt
c_exp = cmath.exp
c_log = cmath.log
c_abs = abs


def m_round(x: float) -> float:
    """MATLAB rounding: halves away from zero."""
    return math.copysign(math.floor(abs(x) + 0.5), x)


def m_fix(x: float) -> float:
    return math.trunc(x)


def m_sign(x: float) -> float:
    return 0.0 if x == 0 else math.copysign(1.0, x)


def m_mod(x: float, m: float) -> float:
    return math.fmod(math.fmod(x, m) + m, m) if m != 0 else x


def m_rem(x: float, m: float) -> float:
    return math.fmod(x, m) if m != 0 else float("nan")


#: Raw-math fast paths for scalar builtin calls: name -> (real, complex).
SCALAR_MATH = {
    "abs": ("abs", "c_abs"),
    "sqrt": ("m_sqrt", "c_sqrt"),
    "exp": ("m_exp", "c_exp"),
    "log": ("m_log", "c_log"),
    "sin": ("m_sin", None),
    "cos": ("m_cos", None),
    "tan": ("m_tan", None),
    "atan": ("m_atan", None),
    "floor": ("m_floor", None),
    "ceil": ("m_ceil", None),
    "round": ("m_round", None),
    "fix": ("m_fix", None),
    "sign": ("m_sign", None),
}


def make_string_value(text: str) -> MxArray:
    return MxArray(IntrinsicClass.STRING, text=text)


def to_int(value) -> int:
    if isinstance(value, MxArray):
        value = value.scalar()
    if isinstance(value, complex):
        value = value.real
    return int(value)


def end_dim(a, dim: int) -> int:
    """Value of the ``end`` keyword inside a subscript of ``a``."""
    a = box(a)
    if dim == 1:
        return a.rows
    if dim == 2:
        return a.cols
    return a.numel


def colon_marker() -> object:
    return COLON


def index_all(a) -> MxArray:
    return ew.mlf_index_all(box(a))


def index_col(a, j) -> MxArray:
    """``A(:, j)``"""
    return g_index2(a, COLON, j)


def index_row(a, i) -> MxArray:
    """``A(i, :)``"""
    return g_index2(a, i, COLON)


def index_whole(a) -> MxArray:
    return box(a).copy()


def hcat(*items) -> MxArray:
    return ew.mlf_horzcat([box(item) for item in items])


def vcat(*rows) -> MxArray:
    return ew.mlf_vertcat([box(row) for row in rows])


def empty_matrix() -> MxArray:
    return MxArray(IntrinsicClass.REAL, np.zeros((0, 0)))


class RuntimeSupport:
    """Per-execution ``rt`` namespace.

    All stateless helpers are class attributes (plain functions); the
    constructor only wires the user-function dispatcher and output sink.
    """

    # Stateless helpers
    box = staticmethod(box)
    unbox = staticmethod(unbox)
    unbox_real = staticmethod(unbox_real)
    truth = staticmethod(truth)
    copy_value = staticmethod(copy_value)
    g_add = staticmethod(g_add)
    g_sub = staticmethod(g_sub)
    g_mul = staticmethod(g_mul)
    g_emul = staticmethod(g_emul)
    g_div = staticmethod(g_div)
    g_ediv = staticmethod(g_ediv)
    g_ldiv = staticmethod(g_ldiv)
    g_eldiv = staticmethod(g_eldiv)
    g_pow = staticmethod(g_pow)
    g_epow = staticmethod(g_epow)
    g_lt = staticmethod(g_lt)
    g_le = staticmethod(g_le)
    g_gt = staticmethod(g_gt)
    g_ge = staticmethod(g_ge)
    g_eq = staticmethod(g_eq)
    g_ne = staticmethod(g_ne)
    g_and = staticmethod(g_and)
    g_or = staticmethod(g_or)
    g_neg = staticmethod(g_neg)
    g_not = staticmethod(g_not)
    g_transpose = staticmethod(g_transpose)
    g_ctranspose = staticmethod(g_ctranspose)
    g_index1 = staticmethod(g_index1)
    g_index2 = staticmethod(g_index2)
    g_store1 = staticmethod(g_store1)
    g_store2 = staticmethod(g_store2)
    checked_load1 = staticmethod(checked_load1)
    checked_load2 = staticmethod(checked_load2)
    checked_store1 = staticmethod(checked_store1)
    checked_store2 = staticmethod(checked_store2)
    grow_store1 = staticmethod(grow_store1)
    grow_store2 = staticmethod(grow_store2)
    colon2 = staticmethod(colon2)
    colon3 = staticmethod(colon3)
    frange = staticmethod(frange)
    columns = staticmethod(columns)
    build_matrix = staticmethod(build_matrix)
    alloc = staticmethod(alloc)
    dgemv = staticmethod(dgemv)
    COLON = COLON
    m_sqrt = staticmethod(m_sqrt)
    m_exp = staticmethod(m_exp)
    m_log = staticmethod(m_log)
    m_sin = staticmethod(m_sin)
    m_cos = staticmethod(m_cos)
    m_tan = staticmethod(m_tan)
    m_atan = staticmethod(m_atan)
    m_floor = staticmethod(m_floor)
    m_ceil = staticmethod(m_ceil)
    m_round = staticmethod(m_round)
    m_fix = staticmethod(m_fix)
    m_sign = staticmethod(m_sign)
    m_mod = staticmethod(m_mod)
    m_rem = staticmethod(m_rem)
    c_sqrt = staticmethod(c_sqrt)
    c_exp = staticmethod(c_exp)
    c_log = staticmethod(c_log)
    c_abs = staticmethod(c_abs)
    make_string = staticmethod(make_string_value)
    to_int = staticmethod(to_int)
    end_dim = staticmethod(end_dim)
    colon_marker = staticmethod(colon_marker)
    index_all = staticmethod(index_all)
    index_col = staticmethod(index_col)
    index_row = staticmethod(index_row)
    index_whole = staticmethod(index_whole)
    hcat = staticmethod(hcat)
    vcat = staticmethod(vcat)
    empty_matrix = staticmethod(empty_matrix)

    def __init__(
        self,
        call_user=None,
        sink: display.OutputSink | None = None,
        fault_plan=None,
        obs=None,
        native=None,
    ):
        self.sink = sink if sink is not None else display.OutputSink()
        self._call_user = call_user
        self.fault_plan = fault_plan
        self.obs = obs
        # The native tier (repro.native): when armed, every fused-kernel
        # dispatch is offered to it first; None keeps the Python kernels.
        self.native = native
        if fault_plan is not None:
            self._arm_faults(fault_plan)

    # ------------------------------------------------------------------
    # Fused-kernel dispatch (repro.kernels): emitted code hoists
    # ``rt.kernel_<hash>`` like any helper; the first lookup resolves it
    # against the process-wide kernel cache and caches the binding on the
    # instance.  An unknown kernel (e.g. a stale disk-cached object whose
    # sources failed to revive) raises AttributeError — a host-level
    # fault the guarded repository absorbs by deoptimizing.
    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        if name.startswith("kernel_"):
            fn = self._bind_kernel(name)
            setattr(self, name, fn)
            return fn
        raise AttributeError(
            f"'{type(self).__name__}' object has no attribute '{name}'"
        )

    def _bind_kernel(self, name: str):
        from repro.faults.plan import SITE_KERNEL_RUN
        from repro.kernels.cache import KERNEL_CACHE

        kernel = KERNEL_CACHE.lookup(name)
        if kernel is None:
            raise AttributeError(f"unknown fused kernel '{name}'")
        fn = kernel.fn
        obs = self.obs
        if obs is not None and obs.metrics.enabled:
            def timed(*args, _fn=fn, _name=name, _obs=obs):
                start = time.perf_counter()
                result = _fn(*args)
                _obs.record_kernel_run(_name, time.perf_counter() - start)
                return result

            fn = timed
        native = self.native
        if native is not None and native.enabled:
            # Native-first dispatch (outside the Python-kernel timer, so
            # majic_kernel_run_seconds stays pure): the engine serves the
            # call from its compiled ``.so`` or returns None, in which
            # case the Python kernel runs — the guarded fallback that
            # keeps this tier bit-identical under every failure mode.
            def native_first(*args, _native=native, _kernel=kernel, _fn=fn):
                result = _native.dispatch(_kernel, args)
                if result is not None:
                    return result
                return _fn(*args)

            fn = native_first
        plan = self.fault_plan
        if plan is not None and any(
            spec.site == SITE_KERNEL_RUN for spec in plan.specs
        ):
            def shim(*args, _fn=fn, _plan=plan, _name=name):
                _plan.check(SITE_KERNEL_RUN, _name)
                return _fn(*args)

            fn = shim
        return fn

    # ------------------------------------------------------------------
    # Fault injection (repro.faults): instance attributes shadow the class
    # helpers, so only sessions that carry a plan pay for the wrapping —
    # emitted code hoists ``rt.<helper>`` per call and picks up the shim.
    # ------------------------------------------------------------------
    def _arm_faults(self, plan) -> None:
        for helper in plan.runtime_helpers():
            if helper == "*":
                for name in _faultable_helpers():
                    self._wrap_helper(name, plan, "rt.*")
            elif hasattr(self, helper):
                self._wrap_helper(helper, plan, f"rt.{helper}")

    def _wrap_helper(self, name: str, plan, site: str) -> None:
        original = getattr(self, name)

        def shim(*args, _original=original, _site=site, **kwargs):
            plan.check(_site)
            return _original(*args, **kwargs)

        setattr(self, name, shim)

    # ------------------------------------------------------------------
    def display_value(self, name, value) -> None:
        """Echo an unsuppressed assignment (the front end's job in
        interpreted code; compiled code calls back here)."""
        label = name.text if isinstance(name, MxArray) else str(name)
        self.sink.write(display.format_value(box(value), label))

    def ambiguous_lookup(self, name, current):
        """Runtime resolution of an ambiguous symbol (Section 2.1).

        If the variable register holds a value, the symbol is a variable
        on this execution path; otherwise fall back to builtin, then user
        function — exactly the interpreter's dynamic rule.
        """
        if current is not None:
            return current
        label = name.text if isinstance(name, MxArray) else str(name)
        if rt_builtins.is_builtin(label):
            return self.builtin1(label)
        return self.call_user(label, 1)[0]

    # ------------------------------------------------------------------
    def builtin(self, name: str, nargout: int, *args):
        """Boxed builtin dispatch (slow generic path)."""
        boxed = [box(a) for a in args]
        return tuple(
            rt_builtins.call_builtin(name, boxed, nargout, sink=self.sink)
        )

    def builtin1(self, name: str, *args):
        """Single-output builtin dispatch."""
        boxed = [box(a) for a in args]
        result = rt_builtins.call_builtin(name, boxed, 1, sink=self.sink)
        return result[0] if result else box(0.0)

    def call_user(self, name: str, nargout: int, *args):
        """Re-enter the execution engine for a user-function call."""
        if self._call_user is None:
            raise RuntimeMatlabError(
                f"undefined function or variable '{name}'"
            )
        return self._call_user(name, [box(a) for a in args], nargout)


def _faultable_helpers() -> list[str]:
    """Every public helper emitted code can reach through ``rt.``."""
    names = []
    for name, value in vars(RuntimeSupport).items():
        if name.startswith("_") or name == "COLON":
            continue
        if isinstance(value, staticmethod) or callable(value):
            names.append(name)
    return names
