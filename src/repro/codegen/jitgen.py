"""The JIT code generator (Section 2.6).

One code-selection pass lowers the typed AST to ICODE; the linear-scan
allocator assigns registers; the emitter produces an in-memory host
function.  No loop optimizations, no common-subexpression elimination, no
instruction scheduling — compilation speed is the design point.

Representation discipline: every MATLAB variable has exactly one
representation for the whole compiled function, chosen from its inferred
type summary — a raw host float (real scalar), raw complex, or a boxed
MxArray.  Expression temporaries use the representation of their inferred
type.  The ``coerce`` helper mediates at the few boundaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.disambiguate import DisambiguationResult, Disambiguator
from repro.analysis.symtab import SymbolKind
from repro.errors import CodegenError
from repro.frontend import ast_nodes as ast
from repro.inference.annotations import Annotations, SubscriptSafety
from repro.inference.engine import InferenceOptions, TypeInferenceEngine
from repro.codegen.select import (
    BOXED,
    RAW_COMPLEX,
    RAW_INT,
    RAW_REAL,
    Selector,
    repr_of_type,
)
from repro.codegen.runtime_support import SCALAR_MATH
from repro.typesys.intrinsic import Intrinsic
from repro.typesys.mtype import MType
from repro.typesys.signature import Signature
from repro.vcode.emit import EmittedFunction, emit_python
from repro.vcode.icode import (
    Block,
    BreakRegion,
    ContinueRegion,
    ForEachRegion,
    ForRegion,
    FunctionIR,
    IfRegion,
    Instr,
    ReturnRegion,
    Seq,
    VRegAllocator,
    WhileRegion,
)
from repro.vcode.liveness import compute_intervals
from repro.vcode.regalloc import DEFAULT_NUM_REGISTERS, LinearScanAllocator

_BINOP_PY = {
    "+": "+", "-": "-", "*": "*", ".*": "*",
    "/": "/", "./": "/", "^": "**", ".^": "**",
    "==": "==", "~=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "&": "&", "|": "|",
}

_BINOP_HELPER = {
    "+": "g_add", "-": "g_sub", "*": "g_mul", ".*": "g_emul",
    "/": "g_div", "./": "g_ediv", "\\": "g_ldiv", ".\\": "g_eldiv",
    "^": "g_pow", ".^": "g_epow",
    "==": "g_eq", "~=": "g_ne", "<": "g_lt", "<=": "g_le",
    ">": "g_gt", ">=": "g_ge", "&": "g_and", "|": "g_or",
}


@dataclass
class JitOptions:
    """Pipeline switches (Figure 7's "no regalloc" lives here)."""

    num_registers: int = DEFAULT_NUM_REGISTERS
    spill_everything: bool = False
    unroll_enabled: bool = True
    dgemv_enabled: bool = True
    fusion: bool = True
    inference: InferenceOptions = field(default_factory=InferenceOptions)


@dataclass
class PhaseTimes:
    """Per-phase compile times (drives Figure 6)."""

    disambiguation: float = 0.0
    type_inference: float = 0.0
    codegen: float = 0.0

    @property
    def total(self) -> float:
        return self.disambiguation + self.type_inference + self.codegen


@dataclass
class CompiledObject:
    """One entry in the code repository."""

    name: str
    signature: Signature
    emitted: EmittedFunction
    annotations: Annotations
    param_reprs: list[str]
    output_reprs: list[str]
    mode: str = "jit"
    phase_times: PhaseTimes = field(default_factory=PhaseTimes)
    #: Source of every fused kernel the emitted code references, keyed by
    #: kernel name — rides the pickle into the persistent cache so a
    #: fresh process can re-register them (``rt.kernel_<hash>`` dispatch
    #: must never miss for disk-revived objects).
    kernel_sources: dict = field(default_factory=dict)
    #: Canonical tree encoding of each referenced kernel (same keys as
    #: ``kernel_sources``) — the native tier decodes these to rebuild
    #: trees for disk-revived kernels, so warm sessions can still promote
    #: them to C.  Older pickles lack the field; revival tolerates that.
    kernel_keys: dict = field(default_factory=dict)

    @property
    def source(self) -> str:
        return self.emitted.source

    # Lazily built fast-path acceptance table: for signatures made purely
    # of scalar formals with top ranges, safety can be checked per argument
    # with two precomputed booleans instead of full MType construction.
    _fast_table = None

    def fast_accepts(self, arg_values) -> bool:
        """Cheap sufficient (not necessary) safety check for hot calls."""
        table = self._fast_table
        if table is None:
            table = self._build_fast_table()
            self._fast_table = table
        if table is False or len(arg_values) != len(table):
            return False
        from repro.runtime.mxarray import IntrinsicClass

        for value, (accepts_int, accepts_real) in zip(arg_values, table):
            if value.rows != 1 or value.cols != 1:
                return False
            klass = value.klass
            if klass is IntrinsicClass.REAL:
                if not accepts_real:
                    return False
            elif klass in (IntrinsicClass.INT, IntrinsicClass.BOOL):
                if not accepts_int:
                    return False
            else:
                return False
        return True

    def _build_fast_table(self):
        from repro.typesys.intrinsic import Intrinsic
        from repro.typesys.mtype import MType

        int_scalar = MType.scalar(Intrinsic.INT)
        real_scalar = MType.scalar(Intrinsic.REAL)
        table = []
        for formal in self.signature.types:
            accepts_int = int_scalar.leq(formal)
            accepts_real = real_scalar.leq(formal)
            if not accepts_int and not accepts_real:
                return False
            table.append((accepts_int, accepts_real))
        return table

    def invoke(self, arg_values, nargout: int, rt):
        """Execute with boxed arguments; returns boxed outputs."""
        from repro.codegen.runtime_support import box, unbox

        raw_args = []
        for value, kind in zip(arg_values, self.param_reprs):
            if kind in (RAW_REAL, RAW_INT, RAW_COMPLEX):
                raw_args.append(unbox(value))
            else:
                raw_args.append(value)
        results = self.emitted.callable(*raw_args, rt)
        outputs = []
        for value in results[: max(nargout, 1) if self.output_reprs else 0]:
            if value is None:
                raise CodegenError(
                    f"output of '{self.name}' was never assigned"
                )
            outputs.append(box(value))
        return outputs


class JitCompiler:
    """The fast compilation pipeline."""

    def __init__(
        self,
        options: JitOptions | None = None,
        callee_oracle=None,
        fault_plan=None,
        tracer=None,
        obs=None,
    ):
        from repro.obs.trace import NULL_TRACER

        self.options = options or JitOptions()
        self.callee_oracle = callee_oracle
        self.fault_plan = fault_plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.obs = obs

    # ------------------------------------------------------------------
    def compile(
        self,
        fn: ast.FunctionDef,
        signature: Signature,
        disambiguation: DisambiguationResult | None = None,
        annotations: Annotations | None = None,
        mode: str = "jit",
        is_user_function=None,
    ) -> CompiledObject:
        if self.fault_plan is not None:
            self.fault_plan.check("jit", fn.name)
        tracer = self.tracer
        times = PhaseTimes()
        start = time.perf_counter()
        if disambiguation is None:
            with tracer.span("disambiguation", "disambiguation",
                             function=fn.name, mode=mode):
                disambiguation = Disambiguator(
                    is_user_function or (lambda name: False)
                ).run_function(fn)
        times.disambiguation = time.perf_counter() - start

        start = time.perf_counter()
        if annotations is None:
            with tracer.span("type_inference", "type_inference",
                             function=fn.name, mode=mode):
                engine = TypeInferenceEngine(
                    options=self.options.inference,
                    callee_oracle=self.callee_oracle,
                )
                annotations = engine.infer(fn, signature, disambiguation)
        times.type_inference = time.perf_counter() - start

        start = time.perf_counter()
        with tracer.span("codegen", "codegen", function=fn.name, mode=mode):
            lowerer = _Lowerer(
                fn, annotations, disambiguation, self.options,
                fault_plan=self.fault_plan, tracer=tracer, obs=self.obs,
            )
            ir = lowerer.lower()
            intervals = compute_intervals(ir)
            allocator = LinearScanAllocator(
                num_registers=self.options.num_registers,
                spill_everything=self.options.spill_everything,
            )
            assignment = allocator.allocate(intervals)
            emitted = emit_python(ir, assignment)
        times.codegen = time.perf_counter() - start

        return CompiledObject(
            name=fn.name,
            signature=signature,
            emitted=emitted,
            annotations=annotations,
            param_reprs=lowerer.param_reprs,
            output_reprs=lowerer.output_reprs,
            mode=mode,
            phase_times=times,
            kernel_sources=dict(lowerer.kernel_sources),
            kernel_keys=dict(lowerer.kernel_keys),
        )


class _Lowerer:
    """AST → ICODE, one pass."""

    def __init__(
        self,
        fn: ast.FunctionDef,
        annotations: Annotations,
        disambiguation: DisambiguationResult,
        options: JitOptions,
        fault_plan=None,
        tracer=None,
        obs=None,
    ):
        from repro.obs.trace import NULL_TRACER

        self.fn = fn
        self.ann = annotations
        self.dis = disambiguation
        self.options = options
        self.fault_plan = fault_plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.obs = obs
        self.kernel_sources: dict[str, str] = {}
        self.kernel_keys: dict[str, str] = {}
        self.selector = Selector(
            fn, annotations,
            unroll_enabled=options.unroll_enabled,
            dgemv_enabled=options.dgemv_enabled,
        )
        self.vregs = VRegAllocator()
        self.var_regs: dict[str, int] = {}
        self.var_kinds: dict[str, str] = {}
        self.reg_kinds: dict[int, str] = {}
        self.prologue = Block()
        self.block: Block | None = None
        self.seq: Seq | None = None
        self.param_reprs: list[str] = []
        self.output_reprs: list[str] = []
        self._buffer_regs: list[int] = []
        self._int_loop_names = self._find_int_loop_counters()

    # ------------------------------------------------------------------
    def fresh(self, kind: str) -> int:
        reg = self.vregs.fresh()
        self.reg_kinds[reg] = kind
        return reg

    def var_reg(self, name: str) -> int:
        reg = self.var_regs.get(name)
        if reg is None:
            kind = self.var_kind(name)
            reg = self.fresh(kind)
            self.var_regs[name] = reg
        return reg

    def var_kind(self, name: str) -> str:
        kind = self.var_kinds.get(name)
        if kind is None:
            if name in self._int_loop_names:
                kind = RAW_INT
            else:
                kind = self.selector.var_repr(name)
                info = self.dis.symbols.lookup(name)
                if info is not None and info.is_ambiguous:
                    kind = BOXED
            self.var_kinds[name] = kind
        return kind

    def _find_int_loop_counters(self) -> set[str]:
        """Names used only as for-loop counters over integer ranges."""
        loop_names: set[str] = set()
        other_defs: set[str] = set()
        for stmt in ast.walk_stmts(self.fn.body):
            if isinstance(stmt, ast.For):
                iterable_type = self.ann.type_of(stmt.iterable)
                var_type = self.ann.var_type(stmt.var)
                simple_range = isinstance(stmt.iterable, ast.Range) and (
                    stmt.iterable.step is None
                    or self._const_int_step(stmt.iterable.step) is not None
                )
                if (
                    simple_range
                    and var_type.is_scalar
                    and var_type.is_integer_like
                    and iterable_type.is_integer_like
                ):
                    loop_names.add(stmt.var)
                else:
                    other_defs.add(stmt.var)
            elif isinstance(stmt, ast.Assign):
                other_defs.add(stmt.target.name)
            elif isinstance(stmt, ast.MultiAssign):
                other_defs.update(t.name for t in stmt.targets)
        return loop_names - other_defs - set(self.fn.params)

    def _const_int_step(self, step_expr) -> int | None:
        if step_expr is None:
            return None
        step_type = self.ann.type_of(step_expr)
        if (
            step_type.is_constant
            and step_type.constant_value == int(step_type.constant_value)
            and step_type.constant_value != 0
        ):
            return int(step_type.constant_value)
        return None

    # ------------------------------------------------------------------
    def emit(self, op, dst=None, args=(), aux=None) -> int | None:
        self.block.emit(Instr(op, dst, tuple(args), aux))
        return dst

    def const(self, value, kind: str) -> int:
        reg = self.fresh(kind)
        self.emit("CONST", reg, (), value)
        return reg

    def callrt(self, helper: str, args, kind: str | None) -> int | None:
        dst = self.fresh(kind) if kind is not None else None
        self.emit("CALLRT", dst, args, helper)
        return dst

    def coerce(self, reg: int, src: str, dst: str) -> int:
        if src == dst or (src in "if" and dst in "if"):
            return reg
        if dst == BOXED:
            return self.callrt("box", [reg], BOXED)
        if src == BOXED:
            helper = "unbox" if dst == RAW_COMPLEX else "unbox_real"
            # unbox_real yields a host float; never claim RAW_INT for it
            # (the 'i' kind promises a value range() and .item() accept).
            honest = RAW_REAL if dst == RAW_INT else dst
            return self.callrt(helper, [reg], honest)
        if dst == RAW_COMPLEX:
            return reg  # raw real usable wherever complex is expected
        if src == RAW_COMPLEX and dst in (RAW_REAL, RAW_INT):
            # Annotation said real; enforce dynamically.
            return self.callrt("unbox_real", [reg], dst)
        return reg

    # ------------------------------------------------------------------
    def lower(self) -> FunctionIR:
        params: list[int] = []
        for name in self.fn.params:
            kind = self.var_kind(name)
            self.param_reprs.append(kind)
            params.append(self.var_reg(name))

        body = Seq(parts=[self.prologue])
        self.block = self.prologue
        # Call-by-value: copy boxed parameters that may be mutated
        # (read-only formals are not copied — Section 2.6.1).
        for name in self.fn.params:
            if self.var_kind(name) == BOXED and not self.selector.is_read_only(name):
                reg = self.var_reg(name)
                copied = self.callrt("copy_value", [reg], BOXED)
                self.emit("MOV", reg, (copied,))

        main = self.lower_stmts(self.fn.body)
        body.parts.append(main)

        outputs = []
        for name in self.fn.outputs:
            outputs.append(self.var_reg(name))
            self.output_reprs.append(self.var_kind(name))

        variable_regs = frozenset(self.var_regs.values()) | frozenset(
            self._buffer_regs
        )
        ir = FunctionIR(
            name=f"mjc_{self.fn.name}",
            params=params,
            param_names=list(self.fn.params),
            body=body,
            outputs=tuple(outputs),
            output_names=tuple(self.fn.outputs),
            nregs=self.vregs.count,
            variable_regs=variable_regs,
            reg_kinds=self.reg_kinds,
        )
        return ir

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def lower_stmts(self, stmts: list[ast.Stmt]) -> Seq:
        saved_block, saved_seq = self.block, self.seq
        seq = Seq(parts=[])
        self.seq = seq
        self.block = Block()
        seq.parts.append(self.block)
        for stmt in stmts:
            self.lower_stmt(stmt)
        self.block, self.seq = saved_block, saved_seq
        return seq

    def _new_block(self) -> Block:
        self.block = Block()
        self.seq.parts.append(self.block)
        return self.block

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.MultiAssign):
            self.lower_multi_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            reg, kind = self.lower_expr(stmt.value)
            if "ans" in self.ann.var_types or stmt.display:
                ans = self.var_reg("ans")
                self.emit("MOV", ans, (self.coerce(reg, kind, self.var_kind("ans")),))
            if stmt.display:
                boxed = self.coerce(reg, kind, BOXED)
                name_reg = self.const("ans", BOXED)
                self.callrt("display_value", [name_reg, boxed], None)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            self.seq.parts.append(BreakRegion())
            self._new_block()
        elif isinstance(stmt, ast.Continue):
            self.seq.parts.append(ContinueRegion())
            self._new_block()
        elif isinstance(stmt, ast.Return):
            self.seq.parts.append(ReturnRegion())
            self._new_block()
        elif isinstance(stmt, ast.Clear):
            names = stmt.names or list(self.var_regs)
            for name in names:
                if name in self.var_regs:
                    none = self.const(None, self.var_kinds[name])
                    self.emit("MOV", self.var_regs[name], (none,))
        elif isinstance(stmt, ast.Global):
            raise CodegenError(
                "global variables are not supported in compiled code"
            )
        else:
            raise CodegenError(f"cannot compile {type(stmt).__name__}")

    def lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if not target.is_indexed:
            kind = self.var_kind(target.name)
            reg, from_kind = self.lower_expr(stmt.value)
            reg = self.coerce(reg, from_kind, kind)
            if (
                kind == BOXED
                and isinstance(stmt.value, ast.Ident)
                and (
                    target.name in self.selector.mutated_names
                    or stmt.value.name in self.selector.mutated_names
                )
            ):
                reg = self.callrt("copy_value", [reg], BOXED)
            self.emit("MOV", self.var_reg(target.name), (reg,))
            if stmt.display:
                boxed = self.coerce(self.var_reg(target.name), kind, BOXED)
                name_reg = self.const(target.name, BOXED)
                self.callrt("display_value", [name_reg, boxed], None)
            return
        self.lower_indexed_store(target, stmt.value)

    def lower_indexed_store(self, target: ast.LValue, value_expr: ast.Expr) -> None:
        value_reg, value_kind = self.lower_expr(value_expr)
        arr = self.var_reg(target.name)
        arr_kind = self.var_kind(target.name)
        safety = self.ann.safety_of_store(target)
        indices = target.indices
        has_colon = any(isinstance(i, ast.ColonAll) for i in indices)
        scalar_indices = all(
            not isinstance(i, (ast.ColonAll, ast.Range))
            and self.ann.type_of(i).is_scalar
            for i in indices
        )
        array_type = self.ann.var_type(target.name)

        if (
            arr_kind == BOXED
            and scalar_indices
            and value_kind in (RAW_REAL, RAW_INT, RAW_COMPLEX)
            and not has_colon
        ):
            index_regs = [
                self.lower_index_arg(i, target.name, pos, len(indices))
                for pos, i in enumerate(indices)
            ]
            if value_kind == RAW_COMPLEX:
                # Complex stores may need to widen the buffer; the checked
                # and grow helpers handle that, the direct path cannot.
                mode = (
                    "grow"
                    if safety is SubscriptSafety.GROW_ONLY
                    else "checked"
                )
            else:
                mode = {
                    SubscriptSafety.SAFE: "unchecked",
                    SubscriptSafety.GROW_ONLY: "grow",
                    SubscriptSafety.CHECKED: "checked",
                }[safety]
            if mode == "unchecked" and len(index_regs) == 1:
                # Orientation lets the emitter index without divmod.
                if array_type.maxshape.rows == 1:
                    mode = "unchecked_row"
                elif array_type.maxshape.cols == 1:
                    mode = "unchecked_col"
            op = "STORE1" if len(index_regs) == 1 else "STORE2"
            self.emit(op, None, (arr, *index_regs, value_reg), mode)
            return
        # Generic store: returns the (possibly reallocated/new) array.
        index_regs = []
        for pos, idx in enumerate(indices):
            if isinstance(idx, ast.ColonAll):
                index_regs.append(self.callrt("colon_marker", [], BOXED))
            else:
                index_regs.append(
                    self._lower_index_any(idx, target.name, pos, len(indices))
                )
        helper = "g_store1" if len(index_regs) == 1 else "g_store2"
        boxed_value = self.coerce(value_reg, value_kind, BOXED)
        result = self.callrt(helper, [arr, *index_regs, boxed_value], BOXED)
        self.emit("MOV", arr, (result,))

    def _lower_index_any(self, idx, name, pos, arity) -> int:
        reg, kind = self.lower_expr(
            idx, end_array=name, end_dim=(0 if arity == 1 else pos + 1)
        )
        return reg  # raw or boxed both accepted by g_store/g_index helpers

    def lower_index_arg(self, idx, name, pos, arity) -> int:
        reg, kind = self.lower_expr(
            idx, end_array=name, end_dim=(0 if arity == 1 else pos + 1)
        )
        if kind == BOXED:
            reg = self.callrt("unbox_real", [reg], RAW_REAL)
        return reg

    def lower_multi_assign(self, stmt: ast.MultiAssign) -> None:
        call = stmt.call
        nargout = len(stmt.targets)
        if not isinstance(call, ast.Apply) or call.kind is ast.ApplyKind.INDEX:
            raise CodegenError("multi-assignment requires a function call")
        arg_regs = [
            self.coerce(*self.lower_expr(arg), BOXED) for arg in call.args
        ]
        name_reg = self.const(call.name, BOXED)
        n_reg = self.const(nargout, RAW_INT)
        helper = (
            "builtin" if call.kind is ast.ApplyKind.BUILTIN else "call_user"
        )
        tuple_reg = self.callrt(helper, [name_reg, n_reg, *arg_regs], BOXED)
        for position, target in enumerate(stmt.targets):
            element = self.fresh(BOXED)
            self.emit("UNPACK", element, (tuple_reg,), position)
            if target.is_indexed:
                # Route through the generic store with the boxed element.
                arr = self.var_reg(target.name)
                index_regs = [
                    self._lower_index_any(i, target.name, pos, len(target.indices))
                    for pos, i in enumerate(target.indices)
                ]
                helper2 = "g_store1" if len(index_regs) == 1 else "g_store2"
                result = self.callrt(
                    helper2, [arr, *index_regs, element], BOXED
                )
                self.emit("MOV", arr, (result,))
            else:
                kind = self.var_kind(target.name)
                self.emit(
                    "MOV",
                    self.var_reg(target.name),
                    (self.coerce(element, BOXED, kind),),
                )

    def _lower_header(self, cond: ast.Expr) -> tuple[Seq, int]:
        """Lower a condition into its own region sequence.

        Conditions may contain short-circuit operators that expand into
        regions of their own; those must land inside the header, not in
        the enclosing statement sequence.
        """
        header = Seq(parts=[])
        saved_seq, saved_block = self.seq, self.block
        self.seq = header
        self.block = Block()
        header.parts.append(self.block)
        cond_reg = self.lower_condition(cond)
        self.seq, self.block = saved_seq, saved_block
        return header, cond_reg

    def lower_if(self, stmt: ast.If) -> None:
        def build(branches, orelse) -> Seq:
            if not branches:
                return self.lower_stmts(orelse)
            (cond, body), rest = branches[0], branches[1:]
            header, cond_reg = self._lower_header(cond)
            then = self.lower_stmts(body)
            else_seq = build(rest, orelse)
            return Seq(parts=[IfRegion(header=header, cond=cond_reg,
                                       then=then, orelse=else_seq)])

        self.seq.parts.append(build(stmt.branches, stmt.orelse))
        self._new_block()

    def lower_condition(self, cond: ast.Expr) -> int:
        reg, kind = self.lower_expr(cond)
        if kind == BOXED:
            return self.callrt("truth", [reg], RAW_REAL)
        return reg

    def lower_while(self, stmt: ast.While) -> None:
        header, cond_reg = self._lower_header(stmt.cond)
        body = self.lower_stmts(stmt.body)
        self.seq.parts.append(
            WhileRegion(header=header, cond=cond_reg, body=body)
        )
        self._new_block()

    def lower_for(self, stmt: ast.For) -> None:
        iterable = stmt.iterable
        var_kind = self.var_kind(stmt.var)
        if isinstance(iterable, ast.Range) and var_kind in (RAW_REAL, RAW_INT):
            init = Block()
            saved = self.block
            self.block = init
            start_reg, start_kind = self.lower_expr(iterable.start)
            start_reg = self.coerce(start_reg, start_kind, var_kind)
            stop_reg, stop_kind = self.lower_expr(iterable.stop)
            stop_reg = self.coerce(stop_reg, stop_kind, var_kind)
            step_reg = None
            descending = False
            if iterable.step is not None:
                const_step = self._const_int_step(iterable.step)
                step_type = self.ann.type_of(iterable.step)
                if not step_type.is_constant or step_type.constant_value == 0:
                    # Unknown step sign: generic iteration helper.
                    self.block = saved
                    self._lower_for_generic(stmt)
                    return
                descending = step_type.constant_value < 0
                if var_kind == RAW_INT and const_step is None:
                    # Integer counters need an integral step.
                    var_kind = RAW_REAL
                    self.var_kinds[stmt.var] = RAW_REAL
                    self.reg_kinds[self.var_regs.get(stmt.var, -1)] = RAW_REAL
                step_reg, step_kind = self.lower_expr(iterable.step)
                step_reg = self.coerce(step_reg, step_kind, var_kind)
                if var_kind == RAW_INT:
                    step_reg = self._to_int(step_reg)
            if var_kind == RAW_INT:
                start_reg = self._to_int(start_reg)
                stop_reg = self._to_int(stop_reg)
            self.block = saved
            body = self.lower_stmts(stmt.body)
            self.seq.parts.append(
                ForRegion(
                    init=init,
                    var=self.var_reg(stmt.var),
                    start=start_reg,
                    stop=stop_reg,
                    step=step_reg,
                    body=body,
                    descending=descending,
                )
            )
            self._new_block()
            return
        self._lower_for_generic(stmt)

    def _to_int(self, reg: int) -> int:
        if self.reg_kinds.get(reg) == RAW_INT:
            return reg
        return self.callrt("to_int", [reg], RAW_INT)

    def _lower_for_generic(self, stmt: ast.For) -> None:
        init = Block()
        saved = self.block
        self.block = init
        raw_iterable = False
        if (
            isinstance(stmt.iterable, ast.Range)
            and self.var_kind(stmt.var) in (RAW_REAL, RAW_INT)
        ):
            # Variable-step numeric loop through the frange helper.
            start_reg = self.coerce(*self.lower_expr(stmt.iterable.start), RAW_REAL)
            step_reg = (
                self.coerce(*self.lower_expr(stmt.iterable.step), RAW_REAL)
                if stmt.iterable.step is not None
                else self.const(1.0, RAW_REAL)
            )
            stop_reg = self.coerce(*self.lower_expr(stmt.iterable.stop), RAW_REAL)
            iterable_reg = self.callrt(
                "frange", [start_reg, step_reg, stop_reg], BOXED
            )
            raw_iterable = True
        else:
            iterable_reg = self.coerce(*self.lower_expr(stmt.iterable), BOXED)
        self.block = saved
        body = self.lower_stmts(stmt.body)
        self.seq.parts.append(
            ForEachRegion(
                init=init,
                var=self.var_reg(stmt.var),
                iterable=iterable_reg,
                body=body,
                raw_iterable=raw_iterable,
            )
        )
        self._new_block()

    # ------------------------------------------------------------------
    # Expressions: returns (register, kind)
    # ------------------------------------------------------------------
    def lower_expr(
        self,
        expr: ast.Expr,
        end_array: str | None = None,
        end_dim: int = 0,
    ) -> tuple[int, str]:
        if isinstance(expr, ast.Number):
            value = expr.value
            if value == int(value) and abs(value) < 2**53:
                # Integral literals stay host ints: index arithmetic on
                # them avoids the int() conversion at every access.
                return self.const(int(value), RAW_INT), RAW_INT
            return self.const(value, RAW_REAL), RAW_REAL
        if isinstance(expr, ast.ImagNumber):
            return self.const(complex(0.0, expr.value), RAW_COMPLEX), RAW_COMPLEX
        if isinstance(expr, ast.StringLit):
            text = self.const(expr.text, BOXED)
            return self.callrt("make_string", [text], BOXED), BOXED
        if isinstance(expr, ast.Ident):
            return self.lower_ident(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.lower_unary(expr, end_array, end_dim)
        if isinstance(expr, ast.BinaryOp):
            return self.lower_binary(expr, end_array, end_dim)
        if isinstance(expr, ast.Transpose):
            reg, kind = self.lower_expr(expr.operand)
            if kind in (RAW_REAL, RAW_INT):
                return reg, kind
            helper = "g_ctranspose" if expr.conjugate else "g_transpose"
            return self.callrt(helper, [reg], kind), kind
        if isinstance(expr, ast.Range):
            parts = [expr.start] + (
                [expr.step] if expr.step is not None else []
            ) + [expr.stop]
            regs = [
                self.coerce(*self.lower_expr(p, end_array, end_dim), RAW_REAL)
                for p in parts
            ]
            helper = "colon3" if len(regs) == 3 else "colon2"
            return self.callrt(helper, regs, BOXED), BOXED
        if isinstance(expr, ast.MatrixLit):
            return self.lower_matrix(expr)
        if isinstance(expr, ast.EndMarker):
            arr = self.var_reg(end_array) if end_array else self.const(None, BOXED)
            dim = self.const(end_dim, RAW_INT)
            return self.callrt("end_dim", [arr, dim], RAW_INT), RAW_INT
        if isinstance(expr, ast.Apply):
            return self.lower_apply(expr)
        if isinstance(expr, ast.ColonAll):
            raise CodegenError("':' subscript outside an index expression")
        raise CodegenError(f"cannot compile {type(expr).__name__}")

    def lower_ident(self, expr: ast.Ident) -> tuple[int, str]:
        kind = self.dis.kind_of(expr)
        if kind is SymbolKind.VARIABLE:
            return self.var_regs.get(expr.name, self.var_reg(expr.name)), self.var_kind(expr.name)
        if kind is SymbolKind.BUILTIN:
            mtype = self.ann.type_of(expr)
            if mtype.is_constant:
                return self.const(mtype.constant_value, RAW_REAL), RAW_REAL
            if expr.name in ("i", "j"):
                return self.const(1j, RAW_COMPLEX), RAW_COMPLEX
            name_reg = self.const(expr.name, BOXED)
            result = self.callrt("builtin1", [name_reg], BOXED)
            return self._coerce_to_annotation(result, BOXED, expr)
        if kind is SymbolKind.USER_FUNCTION:
            name_reg = self.const(expr.name, BOXED)
            n_reg = self.const(1, RAW_INT)
            tuple_reg = self.callrt("call_user", [name_reg, n_reg], BOXED)
            element = self.fresh(BOXED)
            self.emit("UNPACK", element, (tuple_reg,), 0)
            return self._coerce_to_annotation(element, BOXED, expr)
        # Ambiguous: resolved at runtime from the variable register if it
        # was assigned on the executed path, else by dynamic lookup.
        if expr.name in self.var_regs or self._maybe_assigned(expr.name):
            var = self.var_reg(expr.name)
            name_reg = self.const(expr.name, BOXED)
            boxed_var = self.coerce(var, self.var_kind(expr.name), BOXED) \
                if self.var_kind(expr.name) != BOXED else var
            result = self.callrt("ambiguous_lookup", [name_reg, boxed_var], BOXED)
            return result, BOXED
        name_reg = self.const(expr.name, BOXED)
        none_reg = self.const(None, BOXED)
        result = self.callrt("ambiguous_lookup", [name_reg, none_reg], BOXED)
        return result, BOXED

    def _maybe_assigned(self, name: str) -> bool:
        info = self.dis.symbols.lookup(name)
        return info is not None and info.assigned

    def _coerce_to_annotation(self, reg, kind, expr) -> tuple[int, str]:
        target = repr_of_type(self.ann.type_of(expr))
        if target != kind:
            return self.coerce(reg, kind, target), target
        return reg, kind

    # ------------------------------------------------------------------
    def lower_unary(self, expr, end_array, end_dim) -> tuple[int, str]:
        fused = self.try_fuse(expr, end_array, end_dim)
        if fused is not None:
            return fused
        shape = self.selector.unroll_shape(expr)
        if shape is not None and expr.op is ast.UnaryKind.NEG:
            return self.lower_unrolled(expr, shape)
        reg, kind = self.lower_expr(expr.operand, end_array, end_dim)
        if kind != BOXED:
            aux = {"-": "-", "+": "+", "~": "~"}[expr.op.value]
            dst = self.fresh(kind if expr.op is not ast.UnaryKind.NOT else RAW_REAL)
            self.emit("UN", dst, (reg,), aux)
            return dst, self.reg_kinds[dst]
        helper = {"-": "g_neg", "+": "box", "~": "g_not"}[expr.op.value]
        return self.callrt(helper, [reg], BOXED), BOXED

    # ------------------------------------------------------------------
    # Elementwise fusion: collapse a whole array-typed operator tree into
    # one content-addressed kernel call (repro.kernels).  Deep trees over
    # exactly-known small shapes stay with the unroller — per-element
    # host arithmetic beats a NumPy kernel below ~4 collapsed ops.
    _FUSE_OVER_UNROLL_OPS = 4

    def try_fuse(
        self, expr, end_array=None, end_dim=0
    ) -> tuple[int, str] | None:
        if not self.options.fusion:
            return None
        from repro.kernels import KERNEL_CACHE, match_typed

        plan = match_typed(expr, self.ann, self.dis)
        if plan is None:
            return None
        if (
            self.options.unroll_enabled
            and plan.op_count < self._FUSE_OVER_UNROLL_OPS
            and self.selector.unroll_shape(expr) is not None
        ):
            return None
        with self.tracer.span(
            "fusion", "fusion",
            function=self.fn.name, ops=plan.op_count,
        ):
            leaf_regs = []
            descs = []
            for leaf in plan.leaves:
                reg, kind = self.lower_expr(leaf, end_array, end_dim)
                descs.append("b" if kind == BOXED else "s")
                leaf_regs.append(reg)
            kernel = KERNEL_CACHE.get_or_compile(
                plan.root, tuple(descs),
                fault_plan=self.fault_plan, obs=self.obs,
            )
        self.kernel_sources[kernel.name] = kernel.source
        self.kernel_keys[kernel.name] = kernel.key
        result = self.callrt(kernel.name, leaf_regs, BOXED)
        return self._coerce_to_annotation(result, BOXED, expr)

    def lower_binary(self, expr, end_array, end_dim) -> tuple[int, str]:
        if expr.op in ("&&", "||"):
            return self.lower_short_circuit(expr)
        match = self.selector.match_dgemv(expr)
        if match is not None:
            return self.lower_dgemv(match)
        fused = self.try_fuse(expr, end_array, end_dim)
        if fused is not None:
            return fused
        shape = self.selector.unroll_shape(expr)
        if shape is not None:
            return self.lower_unrolled(expr, shape)
        left, lkind = self.lower_expr(expr.left, end_array, end_dim)
        right, rkind = self.lower_expr(expr.right, end_array, end_dim)
        raw = lkind != BOXED and rkind != BOXED
        if raw and expr.op in _BINOP_PY:
            result_kind = RAW_REAL
            if RAW_COMPLEX in (lkind, rkind):
                result_kind = RAW_COMPLEX
            elif (
                lkind == RAW_INT
                and rkind == RAW_INT
                and expr.op in ("+", "-", "*", ".*")
            ):
                result_kind = RAW_INT  # host int arithmetic stays int
            node_type = self.ann.type_of(expr)
            if node_type.is_complex:
                result_kind = RAW_COMPLEX
            dst = self.fresh(result_kind)
            self.emit("BIN", dst, (left, right), _BINOP_PY[expr.op])
            return dst, result_kind
        if raw and expr.op in ("\\", ".\\"):
            dst = self.fresh(RAW_REAL if RAW_COMPLEX not in (lkind, rkind) else RAW_COMPLEX)
            self.emit("BIN", dst, (right, left), "/")
            return dst, self.reg_kinds[dst]
        helper = _BINOP_HELPER[expr.op]
        result = self.callrt(helper, [left, right], BOXED)
        return self._coerce_to_annotation(result, BOXED, expr)

    def lower_short_circuit(self, expr) -> tuple[int, str]:
        """``a && b`` / ``a || b`` with lazy right-operand evaluation."""
        result = self.fresh(RAW_REAL)
        left = self.lower_condition(expr.left)

        def eval_right() -> Seq:
            seq = Seq(parts=[])
            saved_seq, saved_block = self.seq, self.block
            self.seq = seq
            self.block = Block()
            seq.parts.append(self.block)
            right = self.lower_condition(expr.right)
            one = self.const(1.0, RAW_REAL)
            zero = self.const(0.0, RAW_REAL)
            self.seq.parts.append(
                IfRegion(
                    header=Block(),
                    cond=right,
                    then=Seq(parts=[_mov_block(result, one)]),
                    orelse=Seq(parts=[_mov_block(result, zero)]),
                )
            )
            self.seq, self.block = saved_seq, saved_block
            return seq

        def const_result(value: float) -> Seq:
            block = Block()
            creg = self.fresh(RAW_REAL)
            block.emit(Instr("CONST", creg, (), value))
            block.emit(Instr("MOV", result, (creg,)))
            return Seq(parts=[block])

        if expr.op == "&&":
            region = IfRegion(
                header=Block(), cond=left,
                then=eval_right(), orelse=const_result(0.0),
            )
        else:
            region = IfRegion(
                header=Block(), cond=left,
                then=const_result(1.0), orelse=eval_right(),
            )
        self.seq.parts.append(region)
        self._new_block()
        return result, RAW_REAL

    def lower_matrix(self, expr: ast.MatrixLit) -> tuple[int, str]:
        shape = self.selector.unroll_shape(expr)
        if shape is not None:
            return self.lower_unrolled(expr, shape)
        if not expr.rows:
            return self.callrt("empty_matrix", [], BOXED), BOXED
        row_regs = []
        for row in expr.rows:
            elems = [self.lower_expr(item)[0] for item in row]
            row_regs.append(self.callrt("hcat", elems, BOXED))
        if len(row_regs) == 1:
            return row_regs[0], BOXED
        return self.callrt("vcat", row_regs, BOXED), BOXED

    def lower_dgemv(self, match) -> tuple[int, str]:
        alpha = (
            self.const(1.0, RAW_REAL)
            if match.alpha is None
            else self.coerce(*self.lower_expr(match.alpha), RAW_REAL)
        )
        matrix = self.coerce(*self.lower_expr(match.matrix), BOXED)
        vector = self.coerce(*self.lower_expr(match.vector), BOXED)
        if match.addend is None:
            beta = self.const(0.0, RAW_REAL)
            addend = self.const(None, BOXED)
        else:
            beta = (
                self.const(1.0, RAW_REAL)
                if match.beta is None
                else self.coerce(*self.lower_expr(match.beta), RAW_REAL)
            )
            addend = self.coerce(*self.lower_expr(match.addend), BOXED)
        result = self.callrt("dgemv", [alpha, matrix, vector, beta, addend], BOXED)
        return result, BOXED

    # ------------------------------------------------------------------
    # Unrolled small-vector operations with pre-allocated site buffers
    # ------------------------------------------------------------------
    def lower_unrolled(self, expr: ast.Expr, shape: tuple[int, int]) -> tuple[int, str]:
        rows, cols = shape
        buffer = self._site_buffer(rows, cols)
        if isinstance(expr, ast.MatrixLit):
            regs = []
            for r, row in enumerate(expr.rows):
                for c, item in enumerate(row):
                    value = self.coerce(*self.lower_expr(item), RAW_REAL)
                    regs.append((r, c, value))
            for r, c, value in regs:
                i = self.const(r + 1, RAW_INT)
                j = self.const(c + 1, RAW_INT)
                self.emit("STORE2", None, (buffer, i, j, value), "unchecked")
            return buffer, BOXED
        if isinstance(expr, ast.UnaryOp):
            operand = self._unroll_operand(expr.operand)
            for r in range(rows):
                for c in range(cols):
                    value = self._unroll_element(operand, r, c)
                    dst = self.fresh(RAW_REAL)
                    self.emit("UN", dst, (value,), "-")
                    self._unroll_store(buffer, r, c, dst)
            return buffer, BOXED
        # Binary elementwise / scalar-array op.
        left = self._unroll_operand(expr.left)
        right = self._unroll_operand(expr.right)
        py_op = _BINOP_PY[expr.op]
        for r in range(rows):
            for c in range(cols):
                a = self._unroll_element(left, r, c)
                b = self._unroll_element(right, r, c)
                dst = self.fresh(RAW_REAL)
                self.emit("BIN", dst, (a, b), py_op)
                self._unroll_store(buffer, r, c, dst)
        return buffer, BOXED

    def _site_buffer(self, rows: int, cols: int) -> int:
        """Per-site pre-allocated result buffer (allocated once at entry)."""
        buffer = self.fresh(BOXED)
        saved = self.block
        self.block = self.prologue
        r = self.const(rows, RAW_INT)
        c = self.const(cols, RAW_INT)
        self.emit("CALLRT", buffer, (r, c), "alloc")
        self.block = saved
        self._buffer_regs.append(buffer)
        return buffer

    def _unroll_operand(self, node: ast.Expr):
        """Either ('scalar', reg) or ('array', reg) for element access."""
        mtype = self.ann.type_of(node)
        if mtype.is_scalar:
            return ("scalar", self.coerce(*self.lower_expr(node), RAW_REAL))
        reg, kind = self.lower_expr(node)
        return ("array", self.coerce(reg, kind, BOXED))

    def _unroll_element(self, operand, r: int, c: int) -> int:
        tag, reg = operand
        if tag == "scalar":
            return reg
        i = self.const(r + 1, RAW_INT)
        j = self.const(c + 1, RAW_INT)
        dst = self.fresh(RAW_REAL)
        self.emit("LOAD2", dst, (reg, i, j), "unchecked")
        return dst

    def _unroll_store(self, buffer: int, r: int, c: int, value: int) -> None:
        i = self.const(r + 1, RAW_INT)
        j = self.const(c + 1, RAW_INT)
        self.emit("STORE2", None, (buffer, i, j, value), "unchecked")

    # ------------------------------------------------------------------
    def lower_apply(self, expr: ast.Apply) -> tuple[int, str]:
        if expr.kind is ast.ApplyKind.INDEX:
            return self.lower_index_load(expr)
        if expr.kind is ast.ApplyKind.BUILTIN:
            return self.lower_builtin_call(expr)
        # User function (or ambiguous call — resolved as late-bound user).
        arg_regs = [
            self.coerce(*self.lower_expr(arg), BOXED) for arg in expr.args
        ]
        name_reg = self.const(expr.name, BOXED)
        n_reg = self.const(1, RAW_INT)
        tuple_reg = self.callrt("call_user", [name_reg, n_reg, *arg_regs], BOXED)
        element = self.fresh(BOXED)
        self.emit("UNPACK", element, (tuple_reg,), 0)
        return self._coerce_to_annotation(element, BOXED, expr)

    def lower_index_load(self, expr: ast.Apply) -> tuple[int, str]:
        arr = self.var_reg(expr.name)
        arr_kind = self.var_kind(expr.name)
        element_type = self.ann.type_of(expr)
        target_kind = repr_of_type(element_type)
        indices = expr.args
        scalar_indices = (
            arr_kind == BOXED
            and all(
                not isinstance(i, (ast.ColonAll, ast.Range))
                and self.ann.type_of(i).is_scalar
                for i in indices
            )
        )
        if scalar_indices and target_kind in (RAW_REAL, RAW_COMPLEX):
            index_regs = [
                self.lower_index_arg(i, expr.name, pos, len(indices))
                for pos, i in enumerate(indices)
            ]
            safety = self.ann.safety_of_load(expr)
            mode = "unchecked" if safety is SubscriptSafety.SAFE else "checked"
            op = "LOAD1" if len(index_regs) == 1 else "LOAD2"
            dst = self.fresh(target_kind)
            self.emit(op, dst, (arr, *index_regs), mode)
            return dst, target_kind
        # Generic indexing through helpers (handles ':' and vector indices).
        if arr_kind != BOXED:
            # Indexing a raw scalar: A(1) of a scalar is the scalar itself;
            # route through the generic helper for full semantics.
            arr = self.coerce(arr, arr_kind, BOXED)
        index_regs = []
        colon_positions = []
        for pos, idx in enumerate(indices):
            if isinstance(idx, ast.ColonAll):
                colon_positions.append(pos)
                index_regs.append(None)
            else:
                index_regs.append(
                    self._lower_index_any(idx, expr.name, pos, len(indices))
                )
        if len(indices) == 1:
            if colon_positions:
                result = self.callrt("index_all", [arr], BOXED)
            else:
                result = self.callrt("g_index1", [arr, index_regs[0]], BOXED)
        else:
            if colon_positions == [0]:
                result = self.callrt("index_col", [arr, index_regs[1]], BOXED)
            elif colon_positions == [1]:
                result = self.callrt("index_row", [arr, index_regs[0]], BOXED)
            elif colon_positions == [0, 1]:
                result = self.callrt("index_whole", [arr], BOXED)
            else:
                result = self.callrt(
                    "g_index2", [arr, index_regs[0], index_regs[1]], BOXED
                )
        return self._coerce_to_annotation(result, BOXED, expr)

    def lower_builtin_call(self, expr: ast.Apply) -> tuple[int, str]:
        mtype = self.ann.type_of(expr)
        # Constant folding via range propagation: a builtin call whose
        # result is a known constant compiles to an immediate.
        from repro.runtime.builtins import BUILTINS

        entry = BUILTINS.get(expr.name)
        if (
            mtype.is_constant
            and entry is not None
            and entry.pure
            and not expr.args
        ):
            return self.const(mtype.constant_value, RAW_REAL), RAW_REAL
        # Builtin-rooted fused trees (e.g. ``exp(a .* b)``).
        fused = self.try_fuse(expr)
        if fused is not None:
            return fused
        # Scalar math fast path.
        fast = SCALAR_MATH.get(expr.name)
        if fast is not None and len(expr.args) == 1:
            arg_type = self.ann.type_of(expr.args[0])
            if arg_type.is_scalar and arg_type.is_real_like:
                reg = self.coerce(*self.lower_expr(expr.args[0]), RAW_REAL)
                real_helper, complex_helper = fast
                if mtype.is_scalar and mtype.is_real_like:
                    if real_helper == "abs":
                        dst = self.fresh(RAW_REAL)
                        self.emit("UN", dst, (reg,), "abs")
                        return dst, RAW_REAL
                    return self.callrt(real_helper, [reg], RAW_REAL), RAW_REAL
                if complex_helper is not None and mtype.is_scalar:
                    return (
                        self.callrt(complex_helper, [reg], RAW_COMPLEX),
                        RAW_COMPLEX,
                    )
            if (
                arg_type.is_scalar
                and arg_type.intrinsic is Intrinsic.COMPLEX
                and fast[1] is not None
            ):
                reg = self.coerce(*self.lower_expr(expr.args[0]), RAW_COMPLEX)
                kind = RAW_REAL if expr.name == "abs" else RAW_COMPLEX
                return self.callrt(fast[1], [reg], kind), kind
        if expr.name in ("mod", "rem") and len(expr.args) == 2:
            types = [self.ann.type_of(a) for a in expr.args]
            if all(t.is_scalar and t.is_real_like for t in types):
                regs = [
                    self.coerce(*self.lower_expr(a), RAW_REAL)
                    for a in expr.args
                ]
                helper = "m_mod" if expr.name == "mod" else "m_rem"
                return self.callrt(helper, regs, RAW_REAL), RAW_REAL
        # Generic builtin dispatch.
        arg_regs = [
            self.coerce(*self.lower_expr(arg), BOXED) for arg in expr.args
        ]
        name_reg = self.const(expr.name, BOXED)
        result = self.callrt("builtin1", [name_reg, *arg_regs], BOXED)
        return self._coerce_to_annotation(result, BOXED, expr)


def _mov_block(dst: int, src: int) -> Block:
    block = Block()
    block.emit(Instr("MOV", dst, (src,)))
    return block
