"""Shared code-selection rules (Section 2.6.1).

Both code generators drive code selection from the parsed AST plus type
annotations, through this module.  The decisions made here are the paper's
selection rules:

* **representation** — scalar arithmetic/logical operations, elementary
  math functions and scalar assignments are inlined on raw host scalars
  ("probably the most important performance optimization in MaJIC");
  everything else stays a boxed MxArray handled by library calls;
* **subscript inlining** — scalar index operations proven safe compile to
  direct buffer accesses;
* **unrolling** — elementary vector operations with exactly known small
  shapes (≤ 3×3) are completely unrolled, with pre-allocated temporaries;
* **dgemv fusion** — expression trees of the form ``a*X + b*C*Y`` collapse
  into a single BLAS call;
* **read-only parameters** — call-by-value copies are elided for
  parameters (and variables) that are never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import ast_nodes as ast
from repro.inference.annotations import Annotations
from repro.typesys.intrinsic import Intrinsic
from repro.typesys.mtype import MType

#: Largest element count for complete unrolling of vector operations
#: ("very effective on small (up to 3 x 3) matrices and vectors").
UNROLL_LIMIT = 9

#: Kinds of value representation in generated code.
RAW_REAL = "f"
RAW_INT = "i"
RAW_COMPLEX = "c"
BOXED = "b"

_ELEMENTWISE_OPS = {"+", "-", ".*", "./", ".^"}


def repr_of_type(mtype: MType) -> str:
    """Representation kind for a value of this type."""
    if mtype.is_scalar and mtype.is_real_like:
        return RAW_REAL
    if mtype.is_scalar and mtype.intrinsic is Intrinsic.COMPLEX:
        return RAW_COMPLEX
    return BOXED


@dataclass
class DgemvMatch:
    """``alpha*A*x + beta*y`` pieces extracted from an expression tree."""

    alpha: ast.Expr | None     # None = 1.0
    matrix: ast.Expr
    vector: ast.Expr
    beta: ast.Expr | None      # None = 1.0
    addend: ast.Expr | None    # None = no +beta*y term


class Selector:
    """Code-selection oracle for one function's typed AST."""

    def __init__(
        self,
        fn: ast.FunctionDef,
        annotations: Annotations,
        unroll_enabled: bool = True,
        dgemv_enabled: bool = True,
    ):
        self.fn = fn
        self.annotations = annotations
        self.unroll_enabled = unroll_enabled
        self.dgemv_enabled = dgemv_enabled
        self.mutated_names = self._collect_mutated()

    # ------------------------------------------------------------------
    def _collect_mutated(self) -> set[str]:
        """Names whose storage may be written in place."""
        mutated: set[str] = set()
        for stmt in ast.walk_stmts(self.fn.body):
            if isinstance(stmt, ast.Assign) and stmt.target.is_indexed:
                mutated.add(stmt.target.name)
            elif isinstance(stmt, ast.MultiAssign):
                for target in stmt.targets:
                    if target.is_indexed:
                        mutated.add(target.name)
        return mutated

    # ------------------------------------------------------------------
    # Representations
    # ------------------------------------------------------------------
    def var_repr(self, name: str) -> str:
        return repr_of_type(self.annotations.var_type(name))

    def expr_repr(self, node: ast.Expr) -> str:
        return repr_of_type(self.annotations.type_of(node))

    def is_read_only(self, name: str) -> bool:
        """Read-only variables need no call-by-value entry copy."""
        return name not in self.mutated_names

    # ------------------------------------------------------------------
    # Unrolling (elementary vector operations, exact small shapes)
    # ------------------------------------------------------------------
    def unroll_shape(self, node: ast.Expr):
        """(rows, cols) if the node's result should be built unrolled."""
        if not self.unroll_enabled:
            return None
        mtype = self.annotations.type_of(node)
        if not mtype.has_exact_shape or not mtype.is_real_like:
            return None
        shape = mtype.exact_shape
        if shape.numel == 0 or shape.numel > UNROLL_LIMIT or shape.is_scalar:
            return None
        if isinstance(node, ast.MatrixLit):
            flat = [item for row in node.rows for item in row]
            if all(
                repr_of_type(self.annotations.type_of(e)) in (RAW_REAL, RAW_INT)
                for e in flat
            ):
                return (shape.rows, shape.cols)
            return None
        if isinstance(node, ast.BinaryOp) and (
            node.op in _ELEMENTWISE_OPS
            or (node.op in ("*", "/") and self._one_side_scalar(node))
        ):
            if self._unrollable_operand(node.left) and self._unrollable_operand(
                node.right
            ):
                return (shape.rows, shape.cols)
        if isinstance(node, ast.UnaryOp) and node.op is ast.UnaryKind.NEG:
            if self._unrollable_operand(node.operand):
                return (shape.rows, shape.cols)
        return None

    def _one_side_scalar(self, node: ast.BinaryOp) -> bool:
        left = self.annotations.type_of(node.left)
        right = self.annotations.type_of(node.right)
        if node.op == "*":
            return left.is_scalar or right.is_scalar
        return right.is_scalar  # '/' by a scalar only

    def _unrollable_operand(self, node: ast.Expr) -> bool:
        """Operand readable element-by-element without a library call."""
        mtype = self.annotations.type_of(node)
        if mtype.is_scalar and mtype.is_real_like:
            return True
        if not mtype.has_exact_shape or not mtype.is_real_like:
            return False
        if mtype.exact_shape.numel > UNROLL_LIMIT:
            return False
        # Variables and nested unrollable expressions both qualify; the
        # generators materialize nested results into site buffers.
        return True

    # ------------------------------------------------------------------
    # dgemv fusion
    # ------------------------------------------------------------------
    def match_dgemv(self, node: ast.Expr) -> DgemvMatch | None:
        """Match ``alpha*A*x [+ beta*y]`` patterns (Section 2.6.1)."""
        if not self.dgemv_enabled or not isinstance(node, ast.BinaryOp):
            return None
        if node.op == "+":
            left = self._match_ax(node.left)
            if left is not None:
                beta, addend = self._match_scaled_vector(node.right)
                if addend is not None:
                    return DgemvMatch(
                        alpha=left[0], matrix=left[1], vector=left[2],
                        beta=beta, addend=addend,
                    )
            right = self._match_ax(node.right)
            if right is not None:
                beta, addend = self._match_scaled_vector(node.left)
                if addend is not None:
                    return DgemvMatch(
                        alpha=right[0], matrix=right[1], vector=right[2],
                        beta=beta, addend=addend,
                    )
            return None
        if node.op == "-":
            left = self._match_ax(node.left)
            if left is not None:
                beta, addend = self._match_scaled_vector(node.right)
                if addend is not None and beta is None:
                    # a*A*x - y  =>  dgemv(alpha, A, x, -1, y)
                    return DgemvMatch(
                        alpha=left[0], matrix=left[1], vector=left[2],
                        beta=_NEG_ONE, addend=addend,
                    )
            return None
        matched = self._match_ax(node)
        if matched is not None:
            return DgemvMatch(
                alpha=matched[0], matrix=matched[1], vector=matched[2],
                beta=None, addend=None,
            )
        return None

    def _match_ax(self, node: ast.Expr):
        """Match ``A*x`` or ``alpha*A*x`` where A is a matrix, x a vector."""
        if not isinstance(node, ast.BinaryOp) or node.op != "*":
            return None
        right_type = self.annotations.type_of(node.right)
        if not self._is_vector_type(right_type):
            return None
        left = node.left
        left_type = self.annotations.type_of(left)
        if self._is_matrix_type(left_type):
            return (None, left, node.right)
        if (
            isinstance(left, ast.BinaryOp)
            and left.op == "*"
            and self.annotations.type_of(left.left).is_scalar
            and self._is_matrix_type(self.annotations.type_of(left.right))
        ):
            return (left.left, left.right, node.right)
        return None

    def _match_scaled_vector(self, node: ast.Expr):
        """Match ``y`` or ``beta*y`` for a vector y; returns (beta, y)."""
        mtype = self.annotations.type_of(node)
        if self._is_vector_type(mtype):
            if (
                isinstance(node, ast.BinaryOp)
                and node.op == "*"
                and self.annotations.type_of(node.left).is_scalar
            ):
                return (node.left, node.right)
            return (None, node)
        return (None, None)

    @staticmethod
    def _is_vector_type(mtype: MType) -> bool:
        if mtype.is_scalar or not mtype.is_real_like and mtype.intrinsic is not Intrinsic.COMPLEX:
            return False
        return mtype.maxshape.cols == 1 and not mtype.is_scalar

    @staticmethod
    def _is_matrix_type(mtype: MType) -> bool:
        if mtype.is_scalar:
            return False
        return mtype.intrinsic.leq(Intrinsic.COMPLEX) and not mtype.is_bottom


#: Sentinel for a literal -1.0 beta in dgemv matches.
_NEG_ONE = ast.Number(value=-1.0)
