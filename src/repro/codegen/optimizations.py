"""Analyses behind the optimizing (speculative/native) code generator.

Three pieces:

* **purity / invariance** — which expressions are pure scalar computations
  over variables not assigned in a given loop (candidates for hoisting and
  for appearing in versioning guards);
* **affine subscripts** — subscripts of the form ``v``, ``v+c``, ``v-c``
  (v the loop variable, c loop-invariant), whose extreme values over the
  loop range are expressible as code;
* **loop versioning** — given a unit-step ``for`` loop, determine which
  CHECKED/GROW subscript accesses can run unchecked behind a single
  entry guard, and build that guard's ingredients.

Versioning is the static-compiler counterpart of the JIT's range-based
check removal (Section 2.4): the speculative compiler lacks the exact
runtime constants, so it emits a guard comparing the loop bounds against
the array extents once, then runs the fully unchecked loop body — the
classic bounds-check optimization of Gupta [13], which the paper cites as
the conventional alternative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as ast
from repro.inference.annotations import Annotations, SubscriptSafety


# ----------------------------------------------------------------------
# Purity and loop-variance
# ----------------------------------------------------------------------
def assigned_in(body: list[ast.Stmt]) -> set[str]:
    """All names assigned anywhere in a statement list."""
    names: set[str] = set()
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.Assign):
            names.add(stmt.target.name)
        elif isinstance(stmt, ast.MultiAssign):
            names.update(t.name for t in stmt.targets)
        elif isinstance(stmt, ast.For):
            names.add(stmt.var)
    return names


def is_pure_scalar(
    expr: ast.Expr, annotations: Annotations, variant: set[str]
) -> bool:
    """Pure scalar computation over variables outside ``variant``."""
    mtype = annotations.type_of(expr)
    if not (mtype.is_scalar and mtype.is_real_like):
        return False
    if isinstance(expr, ast.Number):
        return True
    if isinstance(expr, ast.Ident):
        return expr.name not in variant
    if isinstance(expr, ast.UnaryOp):
        return expr.op is not ast.UnaryKind.NOT and is_pure_scalar(
            expr.operand, annotations, variant
        )
    if isinstance(expr, ast.BinaryOp):
        if expr.op not in ("+", "-", "*", "/", "^", ".*", "./", ".^"):
            return False
        return is_pure_scalar(expr.left, annotations, variant) and is_pure_scalar(
            expr.right, annotations, variant
        )
    return False


def find_hoistable(
    body: list[ast.Stmt], annotations: Annotations, variant: set[str]
) -> list[ast.Expr]:
    """Maximal pure loop-invariant scalar subexpressions worth hoisting.

    "Worth" = contains at least one arithmetic operation (hoisting a bare
    variable or literal saves nothing).
    """
    found: list[ast.Expr] = []
    seen_ids: set[int] = set()

    def visit(expr: ast.Expr) -> None:
        if id(expr) in seen_ids:
            return
        if isinstance(expr, ast.BinaryOp) and is_pure_scalar(
            expr, annotations, variant
        ):
            found.append(expr)
            for node in ast.walk_expr(expr):
                seen_ids.add(id(node))
            return
        for child in _children(expr):
            visit(child)

    for stmt in ast.walk_stmts(body):
        for expr in ast.stmt_exprs(stmt):
            visit(expr)
    return found


def _children(expr: ast.Expr):
    if isinstance(expr, ast.UnaryOp):
        yield expr.operand
    elif isinstance(expr, ast.BinaryOp):
        yield expr.left
        yield expr.right
    elif isinstance(expr, ast.Transpose):
        yield expr.operand
    elif isinstance(expr, ast.Range):
        yield expr.start
        if expr.step is not None:
            yield expr.step
        yield expr.stop
    elif isinstance(expr, ast.MatrixLit):
        for row in expr.rows:
            yield from row
    elif isinstance(expr, ast.Apply):
        yield from expr.args


# ----------------------------------------------------------------------
# Affine subscripts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AffineIndex:
    """``var + offset`` or a loop-invariant expression (var absent)."""

    uses_var: bool
    offset_expr: ast.Expr | None     # invariant offset (None = 0)
    offset_sign: int = 1             # +1 for v+c, -1 for v-c
    invariant: ast.Expr | None = None  # set when uses_var is False


def match_affine(
    expr: ast.Expr,
    loop_var: str,
    annotations: Annotations,
    variant: set[str],
) -> AffineIndex | None:
    """Classify a subscript relative to the loop variable."""
    if isinstance(expr, ast.Ident) and expr.name == loop_var:
        return AffineIndex(uses_var=True, offset_expr=None)
    if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-"):
        left_is_var = (
            isinstance(expr.left, ast.Ident) and expr.left.name == loop_var
        )
        right_is_var = (
            isinstance(expr.right, ast.Ident) and expr.right.name == loop_var
        )

        def integral_offset(offset: ast.Expr) -> bool:
            if not is_pure_scalar(offset, annotations, variant):
                return False
            mtype = annotations.type_of(offset)
            return mtype.is_integer_like or mtype.range.is_integral_constant

        if left_is_var and integral_offset(expr.right):
            sign = 1 if expr.op == "+" else -1
            return AffineIndex(
                uses_var=True, offset_expr=expr.right, offset_sign=sign
            )
        if right_is_var and expr.op == "+" and integral_offset(expr.left):
            return AffineIndex(uses_var=True, offset_expr=expr.left)
    if is_pure_scalar(expr, annotations, variant):
        mtype = annotations.type_of(expr)
        if mtype.is_integer_like or mtype.range.is_integral_constant:
            return AffineIndex(
                uses_var=False, offset_expr=None, invariant=expr
            )
    return None


# ----------------------------------------------------------------------
# Loop versioning
# ----------------------------------------------------------------------
@dataclass
class GuardTerm:
    """One conjunct: ``low ≥ 1`` and ``high ≤ extent`` for one subscript."""

    array: str
    dim: int                     # 0 = linear (numel), 1 = rows, 2 = cols
    affine: AffineIndex


@dataclass
class VersioningPlan:
    """Accesses provable unchecked behind one loop-entry guard."""

    guard_terms: list[GuardTerm] = field(default_factory=list)
    forced_safe: set[int] = field(default_factory=set)  # node/lvalue ids

    @property
    def worthwhile(self) -> bool:
        return bool(self.forced_safe)


def plan_versioning(
    loop: ast.For,
    annotations: Annotations,
) -> VersioningPlan:
    """Build the versioning plan for a constant-step integer ``for`` loop."""
    plan = VersioningPlan()
    if not isinstance(loop.iterable, ast.Range):
        return plan
    step = loop.iterable.step
    if step is not None:
        step_type = annotations.type_of(step)
        if not (
            step_type.is_constant
            and step_type.constant_value == int(step_type.constant_value)
            and step_type.constant_value != 0
        ):
            return plan
    var_type = annotations.var_type(loop.var)
    if not var_type.is_integer_like:
        return plan
    variant = assigned_in(loop.body) | {loop.var}
    reassigned = {
        stmt.target.name
        for stmt in ast.walk_stmts(loop.body)
        if isinstance(stmt, ast.Assign) and not stmt.target.is_indexed
    }

    def consider(array: str, indices: list[ast.Expr], node_id: int, is_store: bool):
        if array in variant and array in reassigned:
            return  # the array object itself changes inside the loop
        terms: list[GuardTerm] = []
        if len(indices) == 1:
            array_type = annotations.var_type(array)
            is_vector = (
                array_type.maxshape.rows == 1 or array_type.maxshape.cols == 1
            )
            if not is_vector:
                return  # unchecked linear access is only valid on vectors
            affine = match_affine(indices[0], loop.var, annotations, variant)
            if affine is None:
                return
            terms.append(GuardTerm(array=array, dim=0, affine=affine))
        else:
            for position, index in enumerate(indices):
                if isinstance(index, (ast.ColonAll, ast.Range)):
                    return
                affine = match_affine(index, loop.var, annotations, variant)
                if affine is None:
                    return
                terms.append(
                    GuardTerm(array=array, dim=position + 1, affine=affine)
                )
        plan.guard_terms.extend(terms)
        plan.forced_safe.add(node_id)

    for stmt in ast.walk_stmts(loop.body):
        if isinstance(stmt, ast.Assign) and stmt.target.is_indexed:
            if annotations.safety_of_store(stmt.target) is not SubscriptSafety.SAFE:
                consider(
                    stmt.target.name, stmt.target.indices, id(stmt.target), True
                )
        for expr in ast.stmt_exprs(stmt):
            for node in ast.walk_expr(expr):
                if (
                    isinstance(node, ast.Apply)
                    and node.kind is ast.ApplyKind.INDEX
                    and annotations.safety_of_load(node)
                    is not SubscriptSafety.SAFE
                ):
                    element = annotations.type_of(node)
                    if element.is_scalar and element.is_real_like:
                        consider(node.name, node.args, id(node), False)
    return plan
