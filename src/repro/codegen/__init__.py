"""Code generation (Section 2.6).

Two code generators share one set of code-selection rules
(:mod:`~repro.codegen.select`) but build radically different code:

* :mod:`~repro.codegen.jitgen` — the JIT pipeline: a single code-selection
  pass lowering the typed AST to ICODE, linear-scan register allocation,
  and in-memory emission.  No loop optimizations, no instruction
  scheduling — fast compilation, reasonable code;
* :mod:`~repro.codegen.srcgen` — the speculative/native pipeline: the same
  selection rules plus the expensive optimizations (function inlining,
  common-subexpression elimination, loop-invariant hoisting, loop
  versioning for subscript checks), emitting a source module compiled by
  the host toolchain.  Slow compilation, best code.

:mod:`~repro.codegen.runtime_support` is the library generated code links
against.
"""

from repro.codegen.jitgen import JitCompiler, CompiledObject
from repro.codegen.srcgen import SourceCompiler
from repro.codegen.runtime_support import RuntimeSupport

__all__ = ["JitCompiler", "SourceCompiler", "CompiledObject", "RuntimeSupport"]
