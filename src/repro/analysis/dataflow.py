"""Generic iterative monotone dataflow framework (Muchnick & Jones style).

Section 2.3 describes the type-inference engine as "an iterative
join-of-all-paths monotonic data analysis framework"; this module provides
that framework in a reusable form, shared by reaching definitions, the
disambiguator's definite-assignment analysis and the type-inference engine
itself.

States are opaque to the framework; clients supply ``join``, ``equals``,
``copy`` and a per-atom ``transfer`` function.  A ``max_iterations`` cap
bounds the fixpoint loop — the paper's engine "caps the number of
iterations" to stay fast enough for JIT use; when the cap is hit, clients
are told so they can widen to a safe answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.analysis.cfg import CFG, Atom, BasicBlock

State = TypeVar("State")


@dataclass
class DataflowProblem(Generic[State]):
    """Client-supplied pieces of a forward dataflow problem."""

    entry_state: State
    bottom: Callable[[], State]
    join: Callable[[State, State], State]
    equals: Callable[[State, State], bool]
    copy: Callable[[State], State]
    transfer: Callable[[Atom, State], State]


@dataclass
class DataflowResult(Generic[State]):
    """IN/OUT states per block plus per-atom entry states."""

    block_in: dict[int, State]
    block_out: dict[int, State]
    atom_in: dict[int, State]  # keyed by id(atom)
    converged: bool
    iterations: int

    def state_before(self, atom: Atom) -> State:
        return self.atom_in[id(atom)]


def solve_forward(
    cfg: CFG,
    problem: DataflowProblem[State],
    max_iterations: int = 50,
) -> DataflowResult[State]:
    """Iterate to a fixpoint (or the cap) over ``cfg`` in reverse postorder."""
    order = cfg.reverse_postorder()
    block_in: dict[int, State] = {}
    block_out: dict[int, State] = {}
    for block in cfg.blocks:
        block_out[block.index] = problem.bottom()

    iterations = 0
    changed = True
    converged = True
    while changed:
        iterations += 1
        if iterations > max_iterations:
            converged = False
            break
        changed = False
        for block in order:
            if block is cfg.entry:
                incoming = problem.copy(problem.entry_state)
            else:
                incoming = None
                for pred in block.predecessors:
                    state = block_out[pred.index]
                    incoming = (
                        problem.copy(state)
                        if incoming is None
                        else problem.join(incoming, state)
                    )
                if incoming is None:  # unreachable block
                    incoming = problem.bottom()
            block_in[block.index] = incoming
            state = problem.copy(incoming)
            for atom in block.atoms:
                state = problem.transfer(atom, state)
            if not problem.equals(state, block_out[block.index]):
                block_out[block.index] = state
                changed = True

    # One final pass to record the state in front of every atom.
    atom_in: dict[int, State] = {}
    for block in cfg.blocks:
        state = problem.copy(
            block_in.get(block.index, problem.bottom())
        )
        for atom in block.atoms:
            atom_in[id(atom)] = problem.copy(state)
            state = problem.transfer(atom, state)

    return DataflowResult(
        block_in=block_in,
        block_out=block_out,
        atom_in=atom_in,
        converged=converged,
        iterations=iterations,
    )
