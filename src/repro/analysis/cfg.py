"""Control-flow graph construction.

The CFG is the backbone of both the disambiguator's reaching-definitions
analysis (Section 2.1) and the type-inference engine's join-over-all-paths
framework (Section 2.3).  Blocks contain *atoms* — execution points at
statement granularity:

* :class:`StmtAtom` — one simple statement (assignment, expression, clear);
* :class:`CondAtom` — evaluation of a branch/loop condition;
* :class:`ForIterAtom` — the implicit per-iteration assignment of a ``for``
  loop variable (one column of the iterable per trip).

``break``/``continue``/``return`` are represented purely through edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as ast


@dataclass(eq=False)
class Atom:
    """Base class for execution points stored in basic blocks."""


@dataclass(eq=False)
class StmtAtom(Atom):
    stmt: ast.Stmt

    def __repr__(self) -> str:  # pragma: no cover
        return f"StmtAtom({type(self.stmt).__name__})"


@dataclass(eq=False)
class CondAtom(Atom):
    """Condition evaluation of an if/while statement."""

    cond: ast.Expr
    owner: ast.Stmt

    def __repr__(self) -> str:  # pragma: no cover
        return "CondAtom"


@dataclass(eq=False)
class ForIterAtom(Atom):
    """The per-iteration definition of a ``for`` loop variable."""

    stmt: ast.For

    def __repr__(self) -> str:  # pragma: no cover
        return f"ForIterAtom({self.stmt.var})"


@dataclass(eq=False)
class BasicBlock:
    index: int
    atoms: list[Atom] = field(default_factory=list)
    successors: list["BasicBlock"] = field(default_factory=list)
    predecessors: list["BasicBlock"] = field(default_factory=list)

    def link(self, succ: "BasicBlock") -> None:
        if succ not in self.successors:
            self.successors.append(succ)
            succ.predecessors.append(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BB{self.index}({len(self.atoms)} atoms)"


class CFG:
    """A per-function control-flow graph."""

    def __init__(self):
        self.blocks: list[BasicBlock] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def reverse_postorder(self) -> list[BasicBlock]:
        """Blocks in reverse postorder from the entry (good worklist order)."""
        seen: set[int] = set()
        order: list[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(block.successors))]
            seen.add(block.index)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ.index not in seen:
                        seen.add(succ.index)
                        stack.append((succ, iter(succ.successors)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order


class _Builder:
    """Walks a statement list, threading blocks and loop/return targets."""

    def __init__(self):
        self.cfg = CFG()
        self.current = self.cfg.entry
        # Stacks of (break-target, continue-target) for enclosing loops.
        self.loop_targets: list[tuple[BasicBlock, BasicBlock]] = []

    def _terminate(self) -> None:
        """Mark the current block as fallen off (no further atoms added)."""
        self.current = self.cfg.new_block()  # unreachable continuation

    def add_statements(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self.add_statement(stmt)

    def add_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, (ast.Assign, ast.MultiAssign, ast.ExprStmt,
                             ast.Clear, ast.Global)):
            self.current.atoms.append(StmtAtom(stmt))
            return
        if isinstance(stmt, ast.If):
            self._add_if(stmt)
            return
        if isinstance(stmt, ast.While):
            self._add_while(stmt)
            return
        if isinstance(stmt, ast.For):
            self._add_for(stmt)
            return
        if isinstance(stmt, ast.Break):
            if self.loop_targets:
                self.current.link(self.loop_targets[-1][0])
            self._terminate()
            return
        if isinstance(stmt, ast.Continue):
            if self.loop_targets:
                self.current.link(self.loop_targets[-1][1])
            self._terminate()
            return
        if isinstance(stmt, ast.Return):
            self.current.link(self.cfg.exit)
            self._terminate()
            return
        raise TypeError(f"unsupported statement {type(stmt).__name__}")

    def _add_if(self, stmt: ast.If) -> None:
        after = self.cfg.new_block()
        for cond, body in stmt.branches:
            self.current.atoms.append(CondAtom(cond=cond, owner=stmt))
            cond_block = self.current
            taken = self.cfg.new_block()
            cond_block.link(taken)
            self.current = taken
            self.add_statements(body)
            self.current.link(after)
            fallthrough = self.cfg.new_block()
            cond_block.link(fallthrough)
            self.current = fallthrough
        if stmt.orelse:
            self.add_statements(stmt.orelse)
        self.current.link(after)
        self.current = after

    def _add_while(self, stmt: ast.While) -> None:
        header = self.cfg.new_block()
        after = self.cfg.new_block()
        self.current.link(header)
        header.atoms.append(CondAtom(cond=stmt.cond, owner=stmt))
        body_block = self.cfg.new_block()
        header.link(body_block)
        header.link(after)
        self.loop_targets.append((after, header))
        self.current = body_block
        self.add_statements(stmt.body)
        self.current.link(header)
        self.loop_targets.pop()
        self.current = after

    def _add_for(self, stmt: ast.For) -> None:
        # Evaluate the iterable once in the current block (its expression is
        # part of the ForIterAtom for analysis purposes), then loop.
        header = self.cfg.new_block()
        after = self.cfg.new_block()
        self.current.link(header)
        header.atoms.append(ForIterAtom(stmt=stmt))
        body_block = self.cfg.new_block()
        header.link(body_block)
        header.link(after)  # zero-trip exit
        self.loop_targets.append((after, header))
        self.current = body_block
        self.add_statements(stmt.body)
        self.current.link(header)
        self.loop_targets.pop()
        self.current = after


def build_cfg(body: list[ast.Stmt]) -> CFG:
    """Build the CFG of a function body or script."""
    builder = _Builder()
    builder.add_statements(body)
    builder.current.link(builder.cfg.exit)
    return builder.cfg
