"""Use-definition chains (the "U/D chain" box of Figure 1).

For every variable *use* the chain records the set of definition atoms that
may reach it.  The optimizing code generator consults the chains for
loop-invariant detection and the inliner for read-only-parameter analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import (
    CFG,
    Atom,
    CondAtom,
    ForIterAtom,
    StmtAtom,
)
from repro.analysis.reaching import reaching_definitions
from repro.frontend import ast_nodes as ast

PARAM_SITE = 0  # pseudo def-site id for formal parameters


@dataclass
class UseDefChains:
    """Maps each use occurrence (id of Ident/Apply node) to def atoms."""

    # id(use node) -> frozenset of def atom ids (0 = parameter)
    chains: dict[int, frozenset[int]] = field(default_factory=dict)
    # atom id -> atom, to let clients look the definitions back up
    atoms: dict[int, Atom] = field(default_factory=dict)
    # variable name -> all def atom ids
    defs_of: dict[str, set[int]] = field(default_factory=dict)

    def definitions_for(self, node: ast.Expr) -> frozenset[int]:
        return self.chains.get(id(node), frozenset())

    def single_definition(self, node: ast.Expr) -> Atom | None:
        """The unique reaching definition of a use, if there is exactly one."""
        sites = self.chains.get(id(node))
        if sites is None or len(sites) != 1:
            return None
        (site,) = sites
        return self.atoms.get(site)

    def is_param_only(self, node: ast.Expr) -> bool:
        """True when the only reaching definition is the formal parameter."""
        sites = self.chains.get(id(node))
        return sites is not None and sites == frozenset({PARAM_SITE})


def build_use_def(cfg: CFG, params: list[str]) -> UseDefChains:
    """Construct U/D chains from reaching definitions over ``cfg``."""
    reaching = reaching_definitions(cfg, params)
    chains = UseDefChains()

    for block in cfg.blocks:
        for atom in block.atoms:
            chains.atoms[id(atom)] = atom
            state = reaching.state_before(atom)
            by_name: dict[str, set[int]] = {}
            for name, site in state:
                by_name.setdefault(name, set()).add(site)

            def record(expr: ast.Expr) -> None:
                for node in ast.walk_expr(expr):
                    if isinstance(node, (ast.Ident, ast.Apply)):
                        name = node.name
                        sites = by_name.get(name)
                        if sites:
                            chains.chains[id(node)] = frozenset(sites)

            if isinstance(atom, StmtAtom):
                stmt = atom.stmt
                for expr in ast.stmt_exprs(stmt):
                    record(expr)
                for name in _atom_def_names(stmt):
                    chains.defs_of.setdefault(name, set()).add(id(atom))
            elif isinstance(atom, CondAtom):
                record(atom.cond)
            elif isinstance(atom, ForIterAtom):
                record(atom.stmt.iterable)
                chains.defs_of.setdefault(atom.stmt.var, set()).add(id(atom))
    return chains


def _atom_def_names(stmt: ast.Stmt) -> list[str]:
    if isinstance(stmt, ast.Assign):
        return [stmt.target.name]
    if isinstance(stmt, ast.MultiAssign):
        return [target.name for target in stmt.targets]
    return []
