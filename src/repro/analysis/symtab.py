"""Static symbol table built by the disambiguator (Figure 1, pass 2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SymbolKind(enum.Enum):
    """Resolution of one symbol *occurrence* (Section 2.1)."""

    VARIABLE = "variable"
    BUILTIN = "builtin"
    USER_FUNCTION = "user_function"
    AMBIGUOUS = "ambiguous"   # deferred to runtime


@dataclass
class SymbolInfo:
    """Aggregate information about one name within a function."""

    name: str
    is_param: bool = False
    is_output: bool = False
    is_global: bool = False
    # Kinds observed across all occurrences of the name.
    kinds: set[SymbolKind] = field(default_factory=set)
    # True if the symbol is ever assigned (incl. for-loop variables).
    assigned: bool = False
    read: bool = False

    @property
    def is_variable(self) -> bool:
        return SymbolKind.VARIABLE in self.kinds or self.assigned

    @property
    def is_ambiguous(self) -> bool:
        return SymbolKind.AMBIGUOUS in self.kinds


class SymbolTable:
    """Name → :class:`SymbolInfo` for one function or script."""

    def __init__(self):
        self._symbols: dict[str, SymbolInfo] = {}

    def lookup(self, name: str) -> SymbolInfo | None:
        return self._symbols.get(name)

    def ensure(self, name: str) -> SymbolInfo:
        info = self._symbols.get(name)
        if info is None:
            info = SymbolInfo(name=name)
            self._symbols[name] = info
        return info

    def names(self) -> list[str]:
        return sorted(self._symbols)

    def variables(self) -> list[str]:
        return sorted(
            name for name, info in self._symbols.items() if info.is_variable
        )

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self):
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)
