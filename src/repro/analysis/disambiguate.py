"""Symbol disambiguation — the first pass of the MaJIC compiler (§2.1).

MATLAB symbols may denote variables, builtin primitives or user functions,
and the interpreter decides dynamically.  MaJIC must decide at compile time.
The rule implemented here is the paper's: *a symbol that has a reaching
definition as a variable on all paths leading to it must be a variable*;
a symbol assigned on only some paths is **ambiguous**, and its handling is
deferred to runtime (the engines fall back to dynamic resolution for it);
a symbol never assigned resolves to a builtin or user function by registry
lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.cfg import (
    CFG,
    Atom,
    CondAtom,
    ForIterAtom,
    StmtAtom,
    build_cfg,
)
from repro.analysis.reaching import AssignmentSets, assignment_analysis
from repro.analysis.symtab import SymbolInfo, SymbolKind, SymbolTable
from repro.frontend import ast_nodes as ast


@dataclass
class DisambiguationResult:
    """Everything later passes need from the disambiguator."""

    cfg: CFG
    symbols: SymbolTable
    assignments: AssignmentSets
    # id(Ident or Apply node) -> resolution of that occurrence
    resolution: dict[int, SymbolKind] = field(default_factory=dict)

    def kind_of(self, node: ast.Expr) -> SymbolKind | None:
        return self.resolution.get(id(node))

    @property
    def has_ambiguous(self) -> bool:
        return any(info.is_ambiguous for info in self.symbols)


class Disambiguator:
    """Resolves every symbol occurrence in one function or script body."""

    def __init__(
        self,
        is_user_function: Callable[[str], bool],
        is_builtin: Callable[[str], bool] | None = None,
    ):
        if is_builtin is None:
            from repro.runtime.builtins import is_builtin as runtime_is_builtin

            is_builtin = runtime_is_builtin
        self.is_builtin = is_builtin
        self.is_user_function = is_user_function

    # ------------------------------------------------------------------
    def run(
        self,
        body: list[ast.Stmt],
        params: list[str] | None = None,
        outputs: list[str] | None = None,
        predefined: list[str] | None = None,
    ) -> DisambiguationResult:
        """Disambiguate ``body``.

        ``predefined`` lists names known to be variables on entry beyond the
        formal parameters (used for scripts running in a workspace).
        """
        params = list(params or [])
        outputs = list(outputs or [])
        entry_vars = params + [n for n in (predefined or []) if n not in params]
        cfg = build_cfg(body)
        assignments = assignment_analysis(cfg, entry_vars)
        result = DisambiguationResult(
            cfg=cfg, symbols=SymbolTable(), assignments=assignments
        )
        for name in params:
            info = result.symbols.ensure(name)
            info.is_param = True
            info.assigned = True
            info.kinds.add(SymbolKind.VARIABLE)
        for name in outputs:
            result.symbols.ensure(name).is_output = True

        for block in cfg.blocks:
            for atom in block.atoms:
                self._process_atom(atom, result)
        return result

    def run_function(self, fn: ast.FunctionDef) -> DisambiguationResult:
        return self.run(fn.body, params=fn.params, outputs=fn.outputs)

    # ------------------------------------------------------------------
    def _process_atom(self, atom: Atom, result: DisambiguationResult) -> None:
        must = result.assignments.must_before(atom)
        may = result.assignments.may_before(atom)

        def resolve_uses(expr: ast.Expr) -> None:
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.Ident):
                    kind = self._resolve(node.name, must, may, is_apply=False)
                    result.resolution[id(node)] = kind
                    info = result.symbols.ensure(node.name)
                    info.kinds.add(kind)
                    info.read = True
                elif isinstance(node, ast.Apply):
                    kind = self._resolve(node.name, must, may, is_apply=True)
                    result.resolution[id(node)] = kind
                    node.kind = _APPLY_KIND[kind]
                    info = result.symbols.ensure(node.name)
                    info.kinds.add(kind)
                    info.read = True

        if isinstance(atom, StmtAtom):
            stmt = atom.stmt
            if isinstance(stmt, ast.Assign):
                if stmt.target.indices:
                    for index in stmt.target.indices:
                        resolve_uses(index)
                resolve_uses(stmt.value)
                self._record_def(stmt.target, result)
            elif isinstance(stmt, ast.MultiAssign):
                for target in stmt.targets:
                    if target.indices:
                        for index in target.indices:
                            resolve_uses(index)
                resolve_uses(stmt.call)
                for target in stmt.targets:
                    self._record_def(target, result)
            elif isinstance(stmt, ast.ExprStmt):
                resolve_uses(stmt.value)
            elif isinstance(stmt, ast.Global):
                for name in stmt.names:
                    info = result.symbols.ensure(name)
                    info.is_global = True
                    info.assigned = True
                    info.kinds.add(SymbolKind.VARIABLE)
        elif isinstance(atom, CondAtom):
            resolve_uses(atom.cond)
        elif isinstance(atom, ForIterAtom):
            resolve_uses(atom.stmt.iterable)
            info = result.symbols.ensure(atom.stmt.var)
            info.assigned = True
            info.kinds.add(SymbolKind.VARIABLE)

    def _record_def(self, target: ast.LValue, result: DisambiguationResult) -> None:
        info = result.symbols.ensure(target.name)
        info.assigned = True
        info.kinds.add(SymbolKind.VARIABLE)

    # ------------------------------------------------------------------
    def _resolve(
        self,
        name: str,
        must: frozenset[str],
        may,
        is_apply: bool,
    ) -> SymbolKind:
        if name in must:
            return SymbolKind.VARIABLE
        if name in may:
            # Defined on some paths only: Figure 2's deferred case.
            return SymbolKind.AMBIGUOUS
        if self.is_builtin(name):
            return SymbolKind.BUILTIN
        if self.is_user_function(name):
            return SymbolKind.USER_FUNCTION
        if is_apply:
            # Unknown call target: bind late; the repository may learn about
            # the function before execution reaches this site.
            return SymbolKind.USER_FUNCTION
        return SymbolKind.AMBIGUOUS


_APPLY_KIND = {
    SymbolKind.VARIABLE: ast.ApplyKind.INDEX,
    SymbolKind.BUILTIN: ast.ApplyKind.BUILTIN,
    SymbolKind.USER_FUNCTION: ast.ApplyKind.USER_FUNCTION,
    SymbolKind.AMBIGUOUS: ast.ApplyKind.AMBIGUOUS,
}


def disambiguate_function(
    fn: ast.FunctionDef,
    is_user_function: Callable[[str], bool] = lambda name: False,
) -> DisambiguationResult:
    """Convenience wrapper: disambiguate one function definition."""
    return Disambiguator(is_user_function).run_function(fn)
