"""Static analyses: CFG construction, dataflow, disambiguation (§2.1).

The disambiguator is "the first pass of the MaJIC compiler": it resolves
every symbol occurrence to variable / builtin / user function, or defers it
to runtime when the occurrence is genuinely ambiguous (paper Figure 2).
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow import DataflowProblem, solve_forward
from repro.analysis.disambiguate import Disambiguator, disambiguate_function
from repro.analysis.symtab import SymbolInfo, SymbolKind, SymbolTable
from repro.analysis.usedef import UseDefChains, build_use_def

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "DataflowProblem",
    "solve_forward",
    "Disambiguator",
    "disambiguate_function",
    "SymbolInfo",
    "SymbolKind",
    "SymbolTable",
    "UseDefChains",
    "build_use_def",
]
