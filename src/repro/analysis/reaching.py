"""Assignment analyses over the CFG.

Two related forward analyses drive symbol disambiguation (Section 2.1):

* **definite assignment** (must): the set of names assigned on *all* paths
  reaching a point — "a symbol that has a reaching definition as a variable
  on all paths leading to it must be a variable";
* **possible assignment** (may): the set of names assigned on *some* path —
  a name read while only may-assigned is ambiguous and its resolution is
  deferred to runtime.

:func:`reaching_definitions` additionally computes classic def-site reaching
definitions used to build U/D chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import CFG, Atom, CondAtom, ForIterAtom, StmtAtom
from repro.analysis.dataflow import DataflowProblem, DataflowResult, solve_forward
from repro.frontend import ast_nodes as ast


def atom_defs(atom: Atom) -> list[str]:
    """Names defined (assigned) by one atom."""
    if isinstance(atom, StmtAtom):
        stmt = atom.stmt
        if isinstance(stmt, ast.Assign):
            return [stmt.target.name]
        if isinstance(stmt, ast.MultiAssign):
            return [target.name for target in stmt.targets]
        if isinstance(stmt, ast.Global):
            return list(stmt.names)
        return []
    if isinstance(atom, ForIterAtom):
        return [atom.stmt.var]
    return []


def atom_kills(atom: Atom) -> list[str] | None:
    """Names killed by one atom; ``None`` means *all* names (bare clear)."""
    if isinstance(atom, StmtAtom) and isinstance(atom.stmt, ast.Clear):
        return atom.stmt.names or None
    return []


@dataclass
class AssignmentSets:
    """Result of the must/may assignment analyses."""

    must: DataflowResult[frozenset[str]]
    may: DataflowResult[frozenset[str]]

    def must_before(self, atom: Atom) -> frozenset[str]:
        return self.must.state_before(atom)

    def may_before(self, atom: Atom) -> frozenset[str]:
        return self.may.state_before(atom)


_ALL = None  # sentinel unused; kept for readability


def _transfer_assigned(atom: Atom, state: frozenset[str]) -> frozenset[str]:
    kills = atom_kills(atom)
    if kills is None:
        state = frozenset()
    elif kills:
        state = state - frozenset(kills)
    defs = atom_defs(atom)
    if defs:
        state = state | frozenset(defs)
    return state


def assignment_analysis(cfg: CFG, params: list[str]) -> AssignmentSets:
    """Run the must- and may-assignment analyses over ``cfg``.

    Formal parameters are assigned on entry (their definitions come from the
    caller), so they seed the entry state of both analyses.
    """
    entry = frozenset(params)

    # The must analysis needs intersection at joins.  The framework joins
    # with a client-supplied function, so we simply pass set intersection.
    # A subtlety: unreachable predecessors contribute bottom; for a must
    # analysis bottom must be the universal set.  We approximate the
    # universe lazily with a token that intersects as identity.
    universe = _Universe()

    must_problem: DataflowProblem = DataflowProblem(
        entry_state=entry,
        bottom=lambda: universe,
        join=_must_join,
        equals=lambda a, b: a == b,
        copy=lambda s: s,
        transfer=_transfer_assigned_must,
    )
    may_problem: DataflowProblem = DataflowProblem(
        entry_state=entry,
        bottom=frozenset,
        join=lambda a, b: a | b,
        equals=lambda a, b: a == b,
        copy=lambda s: s,
        transfer=_transfer_assigned,
    )
    return AssignmentSets(
        must=solve_forward(cfg, must_problem),
        may=solve_forward(cfg, may_problem),
    )


class _Universe:
    """Identity element for set intersection (the must-analysis bottom)."""

    def __and__(self, other):
        return other

    def __rand__(self, other):
        return other

    def __eq__(self, other):
        return isinstance(other, _Universe)

    def __or__(self, other):
        return self

    def __sub__(self, other):
        return self

    def __contains__(self, item) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return "<universe>"


def _must_join(a, b):
    if isinstance(a, _Universe):
        return b
    if isinstance(b, _Universe):
        return a
    return a & b


def _transfer_assigned_must(atom: Atom, state):
    if isinstance(state, _Universe):
        # Transfer out of an unreachable block stays universal.
        return state
    return _transfer_assigned(atom, state)


# ----------------------------------------------------------------------
# Classic reaching definitions (def-site granularity), for U/D chains.
# ----------------------------------------------------------------------
DefSite = tuple[str, int]  # (variable name, id(atom))


def reaching_definitions(
    cfg: CFG, params: list[str]
) -> DataflowResult[frozenset[DefSite]]:
    """May-reaching definition sites; parameters reach from a pseudo-site 0."""
    entry = frozenset((name, 0) for name in params)

    def transfer(atom: Atom, state: frozenset[DefSite]) -> frozenset[DefSite]:
        kills = atom_kills(atom)
        if kills is None:
            state = frozenset()
        elif kills:
            killed = frozenset(kills)
            state = frozenset(d for d in state if d[0] not in killed)
        defs = atom_defs(atom)
        if defs:
            defined = frozenset(defs)
            state = frozenset(d for d in state if d[0] not in defined)
            state = state | frozenset((name, id(atom)) for name in defined)
        return state

    problem: DataflowProblem = DataflowProblem(
        entry_state=entry,
        bottom=frozenset,
        join=lambda a, b: a | b,
        equals=lambda a, b: a == b,
        copy=lambda s: s,
        transfer=transfer,
    )
    return solve_forward(cfg, problem)
