"""PyMaJIC — a reproduction of "MaJIC: Compiling MATLAB for Speed and
Responsiveness" (Almási & Padua, PLDI 2002).

The top-level API is :class:`~repro.core.majic.MajicSession`::

    from repro import MajicSession

    s = MajicSession(platform="sparc")
    s.add_source('''
    function p = poly(x)
    p = x.^5 + 3*x + 2;
    ''')
    s.call("poly", 4)      # JIT-compiled on first use -> 1038.0
    s.speculate_all()      # speculative ahead-of-time compilation

Subpackages
-----------
``runtime``     boxed MxArray values, generic operators, builtins
``frontend``    MATLAB lexer/parser/AST
``analysis``    CFG, dataflow, symbol disambiguation
``typesys``     the Li x Ls x Ls x Ll type lattice and signatures
``inference``   type calculator, JIT inference, the speculator
``vcode``       ICODE IR, linear-scan register allocation, emission
``codegen``     JIT and optimizing (speculative) code generators
``repository``  the compiled-code database and directory snooping
``interp``      the interpreter baseline and the MaJIC front end
``baselines``   mcc and FALCON comparators
``benchsuite``  the 16 benchmarks of Table 1
``experiments`` harnesses regenerating every table and figure
"""

from repro.core.majic import MajicSession, ensure_recursion_limit
from repro.core.platformcfg import AblationFlags, MIPS, SPARC, platform_by_name
from repro.faults import FaultPlan, InjectedFault
from repro.repository.repo import CompileBudget
from repro.resilience import ResiliencePolicy
from repro.tiering import TieringPolicy

__version__ = "1.0.0"

__all__ = [
    "MajicSession",
    "AblationFlags",
    "SPARC",
    "MIPS",
    "platform_by_name",
    "CompileBudget",
    "FaultPlan",
    "InjectedFault",
    "ResiliencePolicy",
    "TieringPolicy",
    "ensure_recursion_limit",
    "__version__",
]
