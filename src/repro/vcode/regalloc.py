"""Linear-scan register allocation (Poletto & Sarkar, TOPLAS 1999).

The paper's JIT re-implements tcc's register allocator; this is the same
algorithm: intervals sorted by start point, an active list sorted by end
point, expiry of dead intervals, and spill-furthest-end when the register
file is exhausted.

``spill_everything`` forces every interval to a spill slot — the Figure 7
"no regalloc" ablation ("roughly equivalent to compiling with -g").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.vcode.liveness import Interval

#: Size of the physical register file modelled for emission.  Each
#: physical register becomes one host local variable.
DEFAULT_NUM_REGISTERS = 12


@dataclass
class Assignment:
    """Result of allocation: vreg → physical register or spill slot."""

    physical: dict[int, int] = field(default_factory=dict)  # vreg -> preg
    spills: dict[int, int] = field(default_factory=dict)    # vreg -> slot
    num_registers: int = DEFAULT_NUM_REGISTERS

    @property
    def spill_count(self) -> int:
        return len(self.spills)

    def location(self, vreg: int) -> str:
        """Host lvalue/rvalue text for a virtual register."""
        preg = self.physical.get(vreg)
        if preg is not None:
            return f"pr{preg}"
        return f"sp[{self.spills[vreg]}]"

    @property
    def frame_size(self) -> int:
        return len(self.spills)


class LinearScanAllocator:
    """One-pass allocation over sorted live intervals."""

    def __init__(
        self,
        num_registers: int = DEFAULT_NUM_REGISTERS,
        spill_everything: bool = False,
    ):
        self.num_registers = num_registers
        self.spill_everything = spill_everything

    def allocate(self, intervals: list[Interval]) -> Assignment:
        assignment = Assignment(num_registers=self.num_registers)
        if self.spill_everything:
            for index, interval in enumerate(intervals):
                assignment.spills[interval.reg] = index
            return assignment

        free = list(range(self.num_registers - 1, -1, -1))  # pop() = lowest
        active: list[tuple[int, Interval]] = []  # sorted by end point
        next_slot = 0

        for interval in intervals:
            # Expire old intervals.
            while active and active[0][0] < interval.start:
                _, expired = active.pop(0)
                free.append(assignment.physical[expired.reg])
            if not free:
                # Spill the interval that ends furthest away.
                furthest_end, furthest = active[-1]
                if furthest_end > interval.end:
                    # Steal its register; spill the furthest interval.
                    preg = assignment.physical.pop(furthest.reg)
                    assignment.spills[furthest.reg] = next_slot
                    next_slot += 1
                    active.pop()
                    assignment.physical[interval.reg] = preg
                    bisect.insort(active, (interval.end, interval),
                                  key=lambda pair: pair[0])
                else:
                    assignment.spills[interval.reg] = next_slot
                    next_slot += 1
                continue
            preg = free.pop()
            assignment.physical[interval.reg] = preg
            bisect.insort(active, (interval.end, interval),
                          key=lambda pair: pair[0])
        return assignment
