"""Lowering register-allocated ICODE to host-executable code.

The JIT code generator "builds code fast and in memory" (Section 2.6); the
host analogue is generating Python source for one function and compiling it
with :func:`compile`.  Physical registers map to host local variables
(``pr0`` .. ``prN``); spilled virtual registers live in an explicit frame
list ``sp`` — a genuinely slower access path, which is what makes the
Figure 7 "no regalloc" ablation measurable.

Runtime-support helpers are hoisted into locals at the top of the emitted
function (``_h_plus = rt.generic_plus``), the host equivalent of keeping
library entry points in registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodegenError
from repro.vcode.icode import (
    Block,
    BreakRegion,
    ContinueRegion,
    ForEachRegion,
    ForRegion,
    FunctionIR,
    IfRegion,
    Instr,
    ReturnRegion,
    Seq,
    WhileRegion,
)
from repro.vcode.regalloc import Assignment

_BIN_NUMERIC = {
    "+": "({a} + {b})",
    "-": "({a} - {b})",
    "*": "({a} * {b})",
    "/": "({a} / {b})",
    "%": "({a} % {b})",
    "**": "({a} ** {b})",
}
_BIN_COMPARE = {
    "<": "(1.0 if {a} < {b} else 0.0)",
    "<=": "(1.0 if {a} <= {b} else 0.0)",
    ">": "(1.0 if {a} > {b} else 0.0)",
    ">=": "(1.0 if {a} >= {b} else 0.0)",
    "==": "(1.0 if {a} == {b} else 0.0)",
    "!=": "(1.0 if {a} != {b} else 0.0)",
    "&": "(1.0 if ({a} != 0 and {b} != 0) else 0.0)",
    "|": "(1.0 if ({a} != 0 or {b} != 0) else 0.0)",
}
_UN = {
    "-": "(-{a})",
    "+": "({a})",
    "~": "(0.0 if {a} != 0 else 1.0)",
    "abs": "abs({a})",
}


@dataclass
class EmittedFunction:
    """Source text plus the compiled callable."""

    name: str
    source: str
    callable: object
    spill_count: int
    instruction_count: int


class _Emitter:
    def __init__(self, ir: FunctionIR, assignment: Assignment):
        self.ir = ir
        self.assignment = assignment
        self.lines: list[str] = []
        self.depth = 1
        self.helpers: set[str] = set()
        self.instruction_count = 0

    # ------------------------------------------------------------------
    def loc(self, reg: int) -> str:
        return self.assignment.location(reg)

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def idx(self, reg: int) -> str:
        """An index operand as a host int expression."""
        if self.ir_kind(reg) == "i":
            return self.loc(reg)
        return f"int({self.loc(reg)})"

    def ir_kind(self, reg: int) -> str:
        kinds = getattr(self.ir, "reg_kinds", None)
        return kinds.get(reg, "f") if kinds else "f"

    def helper(self, name: str) -> str:
        self.helpers.add(name)
        return f"_h_{name}"

    # ------------------------------------------------------------------
    def emit_function(self) -> str:
        params = [f"p_{i}" for i in range(len(self.ir.params))]
        body_lines: list[str] = []
        self.lines = body_lines
        for reg, pname in zip(self.ir.params, params):
            self.line(f"{self.loc(reg)} = {pname}")
        for reg in self.ir.outputs:
            if reg not in self.ir.params:
                self.line(f"{self.loc(reg)} = None")
        self.emit_region(self.ir.body)
        rets = ", ".join(self.loc(r) for r in self.ir.outputs)
        self.line(f"return ({rets}{',' if len(self.ir.outputs) == 1 else ''})")

        header = [f"def {self.ir.name}({', '.join(params + ['rt'])}):"]
        prologue = []
        for name in sorted(self.helpers):
            prologue.append(f"    _h_{name} = rt.{name}")
        if self.assignment.frame_size:
            prologue.append(f"    sp = [None] * {self.assignment.frame_size}")
        return "\n".join(header + prologue + body_lines) + "\n"

    # ------------------------------------------------------------------
    def emit_region(self, region) -> None:
        if isinstance(region, Block):
            for instr in region.instrs:
                self.emit_instr(instr)
            return
        if isinstance(region, Seq):
            for part in region.parts:
                self.emit_region(part)
            return
        if isinstance(region, IfRegion):
            self.emit_region(region.header)
            self.line(f"if {self.loc(region.cond)}:")
            self.depth += 1
            self.emit_region(region.then)
            if not _region_emits(region.then):
                self.line("pass")
            self.depth -= 1
            if _region_emits(region.orelse):
                self.line("else:")
                self.depth += 1
                self.emit_region(region.orelse)
                self.depth -= 1
            return
        if isinstance(region, WhileRegion):
            self.line("while True:")
            self.depth += 1
            self.emit_region(region.header)
            self.line(f"if not {self.loc(region.cond)}:")
            self.line("    break")
            self.emit_region(region.body)
            self.depth -= 1
            return
        if isinstance(region, ForRegion):
            self.emit_for(region)
            return
        if isinstance(region, ForEachRegion):
            self.emit_region(region.init)
            if region.raw_iterable:
                source = self.loc(region.iterable)
            else:
                source = f"{self.helper('columns')}({self.loc(region.iterable)})"
            self.line(f"for {self.loc(region.var)} in {source}:")
            self.depth += 1
            self.emit_region(region.body)
            if not _region_emits(region.body):
                self.line("pass")
            self.depth -= 1
            return
        if isinstance(region, BreakRegion):
            self.line("break")
            return
        if isinstance(region, ContinueRegion):
            self.line("continue")
            return
        if isinstance(region, ReturnRegion):
            rets = ", ".join(self.loc(r) for r in self.ir.outputs)
            self.line(
                f"return ({rets}{',' if len(self.ir.outputs) == 1 else ''})"
            )
            return
        raise CodegenError(f"unknown region {type(region).__name__}")

    def emit_for(self, region: ForRegion) -> None:
        self.emit_region(region.init)
        var = self.loc(region.var)
        start, stop = self.loc(region.start), self.loc(region.stop)
        if self.ir_kind(region.var) == "i":
            if region.step is None:
                header = f"for {var} in range({start}, {stop} + 1):"
            else:
                edge = "- 1" if region.descending else "+ 1"
                header = (
                    f"for {var} in range({start}, {stop} {edge}, "
                    f"{self.loc(region.step)}):"
                )
            self.line(header)
            self.depth += 1
            self.emit_region(region.body)
            if not _region_emits(region.body):
                self.line("pass")
            self.depth -= 1
            return
        step = "1.0" if region.step is None else self.loc(region.step)
        compare = ">=" if region.descending else "<="
        self.line(f"{var} = {start}")
        self.line(f"while {var} {compare} {stop}:")
        self.depth += 1
        self.emit_region(region.body)
        self.line(f"{var} = {var} + {step}")
        self.depth -= 1

    # ------------------------------------------------------------------
    def emit_instr(self, instr: Instr) -> None:
        self.instruction_count += 1
        op = instr.op
        if op == "CONST":
            self.line(f"{self.loc(instr.dst)} = {instr.aux!r}")
            return
        if op == "MOV":
            self.line(f"{self.loc(instr.dst)} = {self.loc(instr.args[0])}")
            return
        if op == "BIN":
            a, b = (self.loc(r) for r in instr.args)
            template = _BIN_NUMERIC.get(instr.aux) or _BIN_COMPARE.get(instr.aux)
            if template is None:
                raise CodegenError(f"unknown BIN operator {instr.aux!r}")
            self.line(f"{self.loc(instr.dst)} = " + template.format(a=a, b=b))
            return
        if op == "UN":
            template = _UN.get(instr.aux)
            if template is None:
                raise CodegenError(f"unknown UN operator {instr.aux!r}")
            a = self.loc(instr.args[0])
            self.line(f"{self.loc(instr.dst)} = " + template.format(a=a))
            return
        if op == "CALLRT":
            helper = self.helper(instr.aux)
            args = ", ".join(self.loc(r) for r in instr.args)
            if instr.dst is not None:
                self.line(f"{self.loc(instr.dst)} = {helper}({args})")
            else:
                self.line(f"{helper}({args})")
            return
        if op == "UNPACK":
            self.line(
                f"{self.loc(instr.dst)} = {self.loc(instr.args[0])}[{instr.aux}]"
            )
            return
        if op == "LOAD1":
            arr, index = instr.args
            if instr.aux == "unchecked":
                self.line(
                    f"{self.loc(instr.dst)} = "
                    f"{self.loc(arr)}.data.item({self.idx(index)} - 1)"
                )
            else:
                helper = self.helper("checked_load1")
                self.line(
                    f"{self.loc(instr.dst)} = "
                    f"{helper}({self.loc(arr)}, {self.loc(index)})"
                )
            return
        if op == "LOAD2":
            arr, i, j = instr.args
            if instr.aux == "unchecked":
                self.line(
                    f"{self.loc(instr.dst)} = {self.loc(arr)}.data.item("
                    f"{self.idx(i)} - 1, {self.idx(j)} - 1)"
                )
            else:
                helper = self.helper("checked_load2")
                self.line(
                    f"{self.loc(instr.dst)} = {helper}({self.loc(arr)}, "
                    f"{self.loc(i)}, {self.loc(j)})"
                )
            return
        if op == "STORE1":
            arr, index, value = instr.args
            if instr.aux == "unchecked_row":
                self.line(
                    f"{self.loc(arr)}.data[0, {self.idx(index)} - 1] "
                    f"= {self.loc(value)}"
                )
            elif instr.aux == "unchecked_col":
                self.line(
                    f"{self.loc(arr)}.data[{self.idx(index)} - 1, 0] "
                    f"= {self.loc(value)}"
                )
            elif instr.aux == "unchecked":
                self.line(
                    f"{self.loc(arr)}.data[divmod({self.idx(index)} - 1, "
                    f"{self.loc(arr)}.rows)[::-1]] = {self.loc(value)}"
                )
            elif instr.aux == "grow":
                helper = self.helper("grow_store1")
                self.line(
                    f"{helper}({self.loc(arr)}, {self.loc(index)}, "
                    f"{self.loc(value)})"
                )
            else:
                helper = self.helper("checked_store1")
                self.line(
                    f"{helper}({self.loc(arr)}, {self.loc(index)}, "
                    f"{self.loc(value)})"
                )
            return
        if op == "STORE2":
            arr, i, j, value = instr.args
            if instr.aux == "unchecked":
                self.line(
                    f"{self.loc(arr)}.data[{self.idx(i)} - 1, "
                    f"{self.idx(j)} - 1] = {self.loc(value)}"
                )
            elif instr.aux == "grow":
                helper = self.helper("grow_store2")
                self.line(
                    f"{helper}({self.loc(arr)}, {self.loc(i)}, "
                    f"{self.loc(j)}, {self.loc(value)})"
                )
            else:
                helper = self.helper("checked_store2")
                self.line(
                    f"{helper}({self.loc(arr)}, {self.loc(i)}, "
                    f"{self.loc(j)}, {self.loc(value)})"
                )
            return
        if op == "BOX":
            helper = self.helper("box")
            self.line(
                f"{self.loc(instr.dst)} = {helper}({self.loc(instr.args[0])})"
            )
            return
        if op == "UNBOX":
            helper = self.helper("unbox")
            self.line(
                f"{self.loc(instr.dst)} = {helper}({self.loc(instr.args[0])})"
            )
            return
        raise CodegenError(f"unknown ICODE op {op!r}")


def _region_emits(region) -> bool:
    """Whether a region produces at least one statement."""
    if isinstance(region, Block):
        return bool(region.instrs)
    if isinstance(region, Seq):
        return any(_region_emits(part) for part in region.parts)
    return True


def emit_python(ir: FunctionIR, assignment: Assignment) -> EmittedFunction:
    """Emit and compile one ICODE function."""
    emitter = _Emitter(ir, assignment)
    source = emitter.emit_function()
    namespace: dict = {}
    code = compile(source, f"<jit:{ir.name}>", "exec")
    exec(code, namespace)
    return EmittedFunction(
        name=ir.name,
        source=source,
        callable=namespace[ir.name],
        spill_count=assignment.spill_count,
        instruction_count=emitter.instruction_count,
    )
