"""The vcode substrate: a RISC-like dynamic code-generation layer.

The paper's JIT builds machine code in memory through ``vcode`` [11] using
tcc's ICODE intermediate language and a re-implementation of the
linear-scan register allocator [19].  This package is the Python analogue:

* :mod:`~repro.vcode.icode` — an ICODE-style instruction set over infinite
  virtual registers, organized into structured regions (host emission has
  no goto, so control flow stays structured);
* :mod:`~repro.vcode.liveness` — live-interval construction over the
  linearized instruction stream, with loop-extent extension;
* :mod:`~repro.vcode.regalloc` — the Poletto–Sarkar linear-scan allocator;
* :mod:`~repro.vcode.emit` — lowering of register-allocated ICODE to a
  host-executable Python function: physical registers become local
  variables, spilled registers live in an explicit frame list (so spilling
  has a real cost, which the Figure 7 "no regalloc" ablation measures);
* :mod:`~repro.vcode.vm` — a reference evaluator used by tests to validate
  the emitter.
"""

from repro.vcode.icode import (
    Instr,
    Block,
    Seq,
    IfRegion,
    WhileRegion,
    ForRegion,
    FunctionIR,
    VRegAllocator,
)
from repro.vcode.liveness import compute_intervals
from repro.vcode.regalloc import LinearScanAllocator, Assignment
from repro.vcode.emit import emit_python

__all__ = [
    "Instr",
    "Block",
    "Seq",
    "IfRegion",
    "WhileRegion",
    "ForRegion",
    "FunctionIR",
    "VRegAllocator",
    "compute_intervals",
    "LinearScanAllocator",
    "Assignment",
    "emit_python",
]
