"""ICODE-style intermediate representation.

Instructions operate on an unbounded set of *virtual registers* (plain
integers).  Control flow is kept structured — a tree of regions — because
the final target (host Python) has no goto; the linearized instruction
order used for liveness and register allocation is the left-to-right walk
of this tree.

Instruction set (op → operands):

======== ====================================================================
``CONST``   dst, aux=literal — load an immediate
``MOV``     dst, (src,)
``BIN``     dst, (a, b), aux=operator — raw scalar op (``+ - * / % **``,
            comparisons, ``and`` ``or``)
``UN``      dst, (a,), aux=operator (``-``, ``not``, ``~``)
``CALLRT``  dst?, args, aux=helper name — call a runtime-support helper
``LOAD1``   dst, (arr, i), aux=mode — linear element load
``LOAD2``   dst, (arr, i, j), aux=mode — 2-D element load
``STORE1``  None, (arr, i, val), aux=mode
``STORE2``  None, (arr, i, j, val), aux=mode
``BOX``     dst, (src,), aux=kind — wrap raw scalar into an MxArray
``UNBOX``   dst, (src,), aux=kind — extract raw scalar (dynamic check)
``RET``     None, (r1, ..., rn) — return the listed registers
======== ====================================================================

Load/store ``mode`` is ``"checked"``, ``"grow"`` or ``"unchecked"`` — the
materialization of the subscript-safety classes of Section 2.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(eq=False)
class Instr:
    op: str
    dst: int | None
    args: tuple[int, ...] = ()
    aux: object = None

    def registers(self) -> list[int]:
        regs = list(self.args)
        if self.dst is not None:
            regs.append(self.dst)
        return regs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dst = f"r{self.dst} = " if self.dst is not None else ""
        args = ", ".join(f"r{a}" for a in self.args)
        aux = f" [{self.aux!r}]" if self.aux is not None else ""
        return f"{dst}{self.op}({args}){aux}"


# ----------------------------------------------------------------------
# Structured regions
# ----------------------------------------------------------------------
@dataclass(eq=False)
class Block:
    """Straight-line instruction sequence."""

    instrs: list[Instr] = field(default_factory=list)

    def emit(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr


@dataclass(eq=False)
class Seq:
    parts: list = field(default_factory=list)


@dataclass(eq=False)
class IfRegion:
    """``if cond_reg: then else: orelse``.

    ``header`` (a Block or Seq) computes the condition; short-circuit
    conditions expand into nested regions inside it.
    """

    header: object  # Block or Seq
    cond: int
    then: Seq
    orelse: Seq


@dataclass(eq=False)
class WhileRegion:
    """``while``: ``header`` recomputes ``cond`` each trip."""

    header: object  # Block or Seq
    cond: int
    body: Seq


@dataclass(eq=False)
class ForRegion:
    """Ascending/descending numeric loop over raw scalars.

    ``var`` takes start, start+step, ... while ``(var - stop) * sign <= 0``.
    ``init`` computes the start/stop/step registers once.
    """

    init: Block
    var: int
    start: int
    stop: int
    step: int | None  # None = step 1
    body: Seq
    descending: bool = False


@dataclass(eq=False)
class BreakRegion:
    pass


@dataclass(eq=False)
class ContinueRegion:
    pass


@dataclass(eq=False)
class ReturnRegion:
    values: tuple[int, ...] = ()


@dataclass(eq=False)
class ForEachRegion:
    """Generic column iteration over a boxed iterable (helper-driven).

    ``raw_iterable`` marks registers already holding a host iterable
    (e.g. a ``frange`` generator), which must not be wrapped in the
    ``columns`` helper.
    """

    init: Block
    var: int          # boxed register receiving each column
    iterable: int
    body: Seq
    raw_iterable: bool = False


Region = object  # union of the classes above; kept loose for simplicity


@dataclass(eq=False)
class FunctionIR:
    """A complete lowered function."""

    name: str
    params: list[int]                # registers holding incoming arguments
    param_names: list[str]
    body: Seq
    outputs: tuple[int, ...] = ()    # registers returned at the end
    output_names: tuple[str, ...] = ()
    nregs: int = 0
    # Registers holding MATLAB variables (may be live across loop back
    # edges); everything else is a single-statement temporary.
    variable_regs: frozenset[int] = frozenset()
    # Representation kind per register: 'f' raw float, 'i' raw int,
    # 'c' raw complex, 'b' boxed MxArray.  Defaults to 'f'.
    reg_kinds: dict[int, str] = field(default_factory=dict)

    def all_blocks(self):
        yield from _blocks_of(self.body)


def _blocks_of(region):
    if isinstance(region, Block):
        yield region
    elif isinstance(region, Seq):
        for part in region.parts:
            yield from _blocks_of(part)
    elif isinstance(region, IfRegion):
        yield from _blocks_of(region.header)
        yield from _blocks_of(region.then)
        yield from _blocks_of(region.orelse)
    elif isinstance(region, WhileRegion):
        yield from _blocks_of(region.header)
        yield from _blocks_of(region.body)
    elif isinstance(region, ForRegion):
        yield region.init
        yield from _blocks_of(region.body)
    elif isinstance(region, ForEachRegion):
        yield region.init
        yield from _blocks_of(region.body)


class VRegAllocator:
    """Hands out fresh virtual register numbers."""

    def __init__(self):
        self.count = 0

    def fresh(self) -> int:
        reg = self.count
        self.count += 1
        return reg
