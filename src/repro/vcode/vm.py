"""A reference evaluator for ICODE.

Interprets :class:`~repro.vcode.icode.FunctionIR` directly over a virtual
register file, without register allocation or emission.  Tests use it to
validate the emitter: for any IR, ``emit_python`` under any register
assignment must compute exactly what this evaluator computes.
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.vcode.icode import (
    Block,
    BreakRegion,
    ContinueRegion,
    ForEachRegion,
    ForRegion,
    FunctionIR,
    IfRegion,
    Instr,
    ReturnRegion,
    Seq,
    WhileRegion,
)

_BIN = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "**": lambda a, b: a ** b,
    "<": lambda a, b: 1.0 if a < b else 0.0,
    "<=": lambda a, b: 1.0 if a <= b else 0.0,
    ">": lambda a, b: 1.0 if a > b else 0.0,
    ">=": lambda a, b: 1.0 if a >= b else 0.0,
    "==": lambda a, b: 1.0 if a == b else 0.0,
    "!=": lambda a, b: 1.0 if a != b else 0.0,
    "&": lambda a, b: 1.0 if (a != 0 and b != 0) else 0.0,
    "|": lambda a, b: 1.0 if (a != 0 or b != 0) else 0.0,
}

_UN = {
    "-": lambda a: -a,
    "+": lambda a: a,
    "~": lambda a: 0.0 if a != 0 else 1.0,
    "abs": abs,
}


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    pass


class VcodeVM:
    """Direct interpreter over virtual registers."""

    def __init__(self, ir: FunctionIR, rt=None):
        self.ir = ir
        self.rt = rt
        self.regs: dict[int, object] = {}

    # ------------------------------------------------------------------
    def run(self, *args):
        self.regs = {}
        for reg, value in zip(self.ir.params, args):
            self.regs[reg] = value
        for reg in self.ir.outputs:
            self.regs.setdefault(reg, None)
        try:
            self._region(self.ir.body)
        except _Return:
            pass
        return tuple(self.regs.get(r) for r in self.ir.outputs)

    # ------------------------------------------------------------------
    def _region(self, region) -> None:
        if isinstance(region, Block):
            for instr in region.instrs:
                self._instr(instr)
            return
        if isinstance(region, Seq):
            for part in region.parts:
                self._region(part)
            return
        if isinstance(region, IfRegion):
            self._region(region.header)
            if self.regs.get(region.cond):
                self._region(region.then)
            else:
                self._region(region.orelse)
            return
        if isinstance(region, WhileRegion):
            while True:
                self._region(region.header)
                if not self.regs.get(region.cond):
                    break
                try:
                    self._region(region.body)
                except _Break:
                    break
                except _Continue:
                    continue
            return
        if isinstance(region, ForRegion):
            self._region(region.init)
            step = (
                self.regs[region.step] if region.step is not None else 1
            )
            value = self.regs[region.start]
            stop = self.regs[region.stop]
            while (value >= stop) if region.descending else (value <= stop):
                self.regs[region.var] = value
                try:
                    self._region(region.body)
                except _Break:
                    break
                except _Continue:
                    pass
                value = self.regs[region.var] + step
            return
        if isinstance(region, ForEachRegion):
            self._region(region.init)
            iterable = self.regs[region.iterable]
            if not region.raw_iterable:
                iterable = self.rt.columns(iterable)
            for item in iterable:
                self.regs[region.var] = item
                try:
                    self._region(region.body)
                except _Break:
                    break
                except _Continue:
                    continue
            return
        if isinstance(region, BreakRegion):
            raise _Break()
        if isinstance(region, ContinueRegion):
            raise _Continue()
        if isinstance(region, ReturnRegion):
            raise _Return()
        raise CodegenError(f"vm: unknown region {type(region).__name__}")

    # ------------------------------------------------------------------
    def _instr(self, instr: Instr) -> None:
        op = instr.op
        regs = self.regs
        if op == "CONST":
            regs[instr.dst] = instr.aux
        elif op == "MOV":
            regs[instr.dst] = regs[instr.args[0]]
        elif op == "BIN":
            regs[instr.dst] = _BIN[instr.aux](
                regs[instr.args[0]], regs[instr.args[1]]
            )
        elif op == "UN":
            regs[instr.dst] = _UN[instr.aux](regs[instr.args[0]])
        elif op == "CALLRT":
            fn = getattr(self.rt, instr.aux)
            result = fn(*(regs[a] for a in instr.args))
            if instr.dst is not None:
                regs[instr.dst] = result
        elif op == "UNPACK":
            regs[instr.dst] = regs[instr.args[0]][instr.aux]
        elif op == "LOAD1":
            arr, index = (regs[a] for a in instr.args)
            if instr.aux == "unchecked":
                regs[instr.dst] = arr.data.item(int(index) - 1)
            else:
                regs[instr.dst] = self.rt.checked_load1(arr, index)
        elif op == "LOAD2":
            arr, i, j = (regs[a] for a in instr.args)
            if instr.aux == "unchecked":
                regs[instr.dst] = arr.data.item(int(i) - 1, int(j) - 1)
            else:
                regs[instr.dst] = self.rt.checked_load2(arr, i, j)
        elif op == "STORE1":
            arr, index, value = (regs[a] for a in instr.args)
            if instr.aux in ("unchecked", "unchecked_row", "unchecked_col"):
                k = int(index) - 1
                arr.data[k % arr.rows, k // arr.rows] = value
            elif instr.aux == "grow":
                self.rt.grow_store1(arr, index, value)
            else:
                self.rt.checked_store1(arr, index, value)
        elif op == "STORE2":
            arr, i, j, value = (regs[a] for a in instr.args)
            if instr.aux == "unchecked":
                arr.data[int(i) - 1, int(j) - 1] = value
            elif instr.aux == "grow":
                self.rt.grow_store2(arr, i, j, value)
            else:
                self.rt.checked_store2(arr, i, j, value)
        elif op == "BOX":
            regs[instr.dst] = self.rt.box(regs[instr.args[0]])
        elif op == "UNBOX":
            regs[instr.dst] = self.rt.unbox(regs[instr.args[0]])
        else:
            raise CodegenError(f"vm: unknown op {op!r}")
