"""Live-interval construction for linear-scan allocation.

Instructions are numbered by a left-to-right walk of the region tree.  A
virtual register's interval is [first position, last position] over all of
its defs and uses, *extended across loops*: a register live on entry to a
loop that is also touched inside it (or touched inside and used after) must
stay live for the whole loop extent, because the back edge re-reads it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vcode.icode import (
    Block,
    ForEachRegion,
    ForRegion,
    FunctionIR,
    IfRegion,
    ReturnRegion,
    Seq,
    WhileRegion,
)


@dataclass
class Interval:
    reg: int
    start: int
    end: int
    # Total number of touches — a cheap spill-cost proxy.
    uses: int = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"r{self.reg}:[{self.start},{self.end}]x{self.uses}"


class _Walker:
    def __init__(self):
        self.position = 0
        self.first: dict[int, int] = {}
        self.last: dict[int, int] = {}
        self.uses: dict[int, int] = {}
        self.loops: list[tuple[int, int]] = []  # (start, end) extents

    def touch(self, reg: int) -> None:
        self.first.setdefault(reg, self.position)
        self.last[reg] = self.position
        self.uses[reg] = self.uses.get(reg, 0) + 1

    def walk(self, region) -> None:
        if isinstance(region, Block):
            for instr in region.instrs:
                self.position += 1
                for reg in instr.registers():
                    self.touch(reg)
            return
        if isinstance(region, Seq):
            for part in region.parts:
                self.walk(part)
            return
        if isinstance(region, IfRegion):
            self.walk(region.header)
            self.position += 1
            self.touch(region.cond)
            self.walk(region.then)
            self.walk(region.orelse)
            return
        if isinstance(region, WhileRegion):
            start = self.position
            self.walk(region.header)
            self.position += 1
            self.touch(region.cond)
            self.walk(region.body)
            self.position += 1
            self.loops.append((start, self.position))
            return
        if isinstance(region, ForRegion):
            self.walk(region.init)
            start = self.position
            self.position += 1
            self.touch(region.var)
            self.touch(region.start)
            self.touch(region.stop)
            if region.step is not None:
                self.touch(region.step)
            self.walk(region.body)
            self.position += 1
            self.touch(region.var)
            self.touch(region.stop)
            if region.step is not None:
                self.touch(region.step)
            self.loops.append((start, self.position))
            return
        if isinstance(region, ForEachRegion):
            self.walk(region.init)
            start = self.position
            self.position += 1
            self.touch(region.var)
            self.touch(region.iterable)
            self.walk(region.body)
            self.position += 1
            self.loops.append((start, self.position))
            return
        if isinstance(region, ReturnRegion):
            self.position += 1
            for reg in region.values:
                self.touch(reg)
            return
        # Break/Continue regions touch nothing.


def compute_intervals(
    ir: FunctionIR, variable_regs: frozenset[int] | None = None
) -> list[Interval]:
    """Intervals for every register, sorted by start position.

    ``variable_regs`` marks registers holding MATLAB *variables* — the only
    registers whose values can cross a loop back edge under the lowering
    discipline (expression temporaries are always defined and consumed
    within one statement).  Only those intervals are extended to the loop
    end; extending everything would inflate register pressure for no
    correctness gain.
    """
    if variable_regs is None:
        variable_regs = getattr(ir, "variable_regs", frozenset()) or frozenset()
    walker = _Walker()
    # Parameters are defined at position 0; outputs are None-initialized
    # there too (the emitter writes them in the prologue), so both sets
    # are live from the very start.
    for reg in ir.params:
        walker.touch(reg)
    for reg in ir.outputs:
        walker.touch(reg)
    walker.walk(ir.body)
    walker.position += 1
    for reg in ir.outputs:
        walker.touch(reg)

    intervals = {
        reg: Interval(reg, walker.first[reg], walker.last[reg], walker.uses[reg])
        for reg in walker.first
    }
    # Loop extension: a variable touched inside a loop stays live through
    # the loop's back edge.
    for loop_start, loop_end in walker.loops:
        for interval in intervals.values():
            if interval.reg not in variable_regs:
                continue
            overlaps = interval.start <= loop_end and interval.end >= loop_start
            if overlaps and interval.end < loop_end:
                interval.end = loop_end
    return sorted(intervals.values(), key=lambda iv: (iv.start, iv.end))
