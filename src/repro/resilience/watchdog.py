"""The execution watchdog: wall-clock deadlines on compiles and runs.

Compilation and compiled-object execution are the two places generated or
generator code can *hang* — a pathological inference fixpoint, a
miscompiled loop bound, an injected ``hang`` fault.  MaJIC's contract is
that neither may wedge the interactive session, so both run under an
:class:`ExecutionGuard` deadline:

* a **compile** that overruns its deadline is cancelled; the caller sees
  :class:`DeadlineExceeded`, records a compile failure and charges a
  quarantine strike (a function whose compiles keep hanging is demoted to
  interpreter-only);
* a **run** that overruns is cancelled mid-flight and falls back to the
  interpreter through the ordinary guarded-deoptimization chain — the
  half-run call's side effects (RNG draws, printed output) roll back as
  for any other deopt.

Mechanism
---------
One process-wide daemon **monitor thread** owns a registry of active
deadlines (a dict of tokens, each naming a thread id and an absolute
deadline).  Guarded code runs *in the calling thread* — registering a
deadline costs two lock acquisitions, not a thread spawn — and the
monitor cancels an overrun by injecting :class:`DeadlineExceeded` into
the offending thread with ``PyThreadState_SetAsyncExc``.  The exception
lands at the next bytecode boundary, which is why the injected ``hang``
fault busy-loops over short sleeps rather than blocking in one long
syscall.

Cancellation is cooperative-asynchronous, not preemptive: a hang inside a
single C call (one giant BLAS operation) is only cancelled when it
returns to the interpreter loop.  That is the honest best available
in-process; the sandbox tier (:mod:`repro.resilience.sandbox`) covers the
remainder with real OS process isolation.

Nested guards collapse onto the outermost one (per thread): a compiled
call re-entering ``execute`` for a callee does not stack a second
deadline, so hot recursive code pays the registration cost once per
top-level invocation.
"""

from __future__ import annotations

import ctypes
import itertools
import threading
import time
from dataclasses import dataclass

#: Deadline kinds (label the diagnostics and pick the policy timeout).
KIND_COMPILE = "compile"
KIND_RUN = "run"


class DeadlineExceeded(RuntimeError):
    """A guarded operation overran its wall-clock deadline.

    Deliberately a plain :class:`RuntimeError` (never a MatlabError): the
    guarded-deopt safety net treats it like any other host-level defect —
    quarantine the implicated version and re-execute through the
    interpreter.
    """


def async_raise(thread_id: int, exc_type=DeadlineExceeded) -> bool:
    """Schedule ``exc_type`` to be raised in another thread.

    Returns True when exactly one thread state was modified.  CPython
    only; on failure (or a non-CPython host) returns False and the caller
    degrades to bounded-hang semantics.
    """
    try:
        res = ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id), ctypes.py_object(exc_type)
        )
    except Exception:  # noqa: BLE001 - non-CPython / restricted host
        return False
    if res > 1:
        # Undefined target: revoke rather than poison an arbitrary thread.
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id), None
        )
        return False
    return res == 1


def async_raise_clear(thread_id: int) -> None:
    """Revoke a pending asynchronous exception that never materialized."""
    try:
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id), None
        )
    except Exception:  # noqa: BLE001
        pass


@dataclass
class _Entry:
    thread_id: int
    deadline: float
    label: str
    kind: str
    on_fire: object  # callback(label, kind, overrun_seconds) or None
    fired: bool = False


class _WatchdogMonitor:
    """The process-wide deadline registry plus its single daemon thread.

    Shared by every session so a test suite creating hundreds of sessions
    spawns one thread, not hundreds.  The thread starts lazily on the
    first registration and sleeps on a condition (woken by registrations,
    timed to the earliest pending deadline) — idle sessions cost nothing.
    """

    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        self._entries: dict[int, _Entry] = {}
        self._tokens = itertools.count(1)
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def register(self, deadline_seconds: float, label: str, kind: str,
                 on_fire=None) -> int:
        entry = _Entry(
            thread_id=threading.get_ident(),
            deadline=time.monotonic() + deadline_seconds,
            label=label,
            kind=kind,
            on_fire=on_fire,
        )
        with self._cond:
            token = next(self._tokens)
            self._entries[token] = entry
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop, name="majic-watchdog", daemon=True
                )
                self._thread.start()
            self._cond.notify_all()
        return token

    def cancel(self, token: int) -> bool:
        """Retire one deadline; returns True when it already fired."""
        with self._cond:
            entry = self._entries.pop(token, None)
            return entry.fired if entry is not None else False

    def active(self) -> int:
        with self._cond:
            return len(self._entries)

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            callbacks = []
            with self._cond:
                if not self._entries:
                    # Park until the next registration; wake periodically
                    # so a long-idle process keeps exactly one thread.
                    self._cond.wait(timeout=5.0)
                    continue
                now = time.monotonic()
                soonest = None
                for entry in self._entries.values():
                    if entry.fired:
                        continue
                    if now >= entry.deadline:
                        entry.fired = True
                        overrun = now - entry.deadline
                        if async_raise(entry.thread_id):
                            callbacks.append(
                                (entry.on_fire, entry.label, entry.kind,
                                 overrun)
                            )
                    elif soonest is None or entry.deadline < soonest:
                        soonest = entry.deadline
                wait = None if soonest is None else max(
                    soonest - time.monotonic(), 0.001
                )
                if not callbacks:
                    self._cond.wait(timeout=wait if wait is not None else 1.0)
            for on_fire, label, kind, overrun in callbacks:
                if on_fire is None:
                    continue
                try:
                    on_fire(label, kind, overrun)
                except Exception:  # noqa: BLE001 - the watchdog must survive
                    pass


#: The shared monitor (one per process).
MONITOR = _WatchdogMonitor()


class _NullGuardContext:
    """Reusable no-op context for disabled deadline kinds."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullGuardContext()


class _GuardContext:
    """One armed deadline around a compile or run (context manager)."""

    __slots__ = ("_guard", "_label", "_kind", "_timeout", "_token", "_tid")

    def __init__(self, guard, label, kind, timeout):
        self._guard = guard
        self._label = label
        self._kind = kind
        self._timeout = timeout
        self._token = None
        self._tid = None

    def __enter__(self):
        state = self._guard._tls
        state.depth = getattr(state, "depth", 0) + 1
        if state.depth == 1:
            self._tid = threading.get_ident()
            self._token = MONITOR.register(
                self._timeout, self._label, self._kind, self._guard._on_fire
            )
        return self

    def __exit__(self, exc_type, exc, tb):
        state = self._guard._tls
        state.depth -= 1
        if self._token is None:
            return False
        fired = MONITOR.cancel(self._token)
        if fired and exc_type is not DeadlineExceeded:
            # The deadline fired but the guarded code finished (or raised
            # something else) before the asynchronous exception landed:
            # revoke it so it cannot detonate in unrelated later code.
            async_raise_clear(self._tid)
        return False


class ExecutionGuard:
    """Per-repository watchdog facade over the shared monitor.

    Carries the policy timeouts and the diagnostics/metrics wiring; hands
    out deadline contexts for the two guarded operation kinds.  A kind
    with no timeout yields a shared no-op context, so disabled guards add
    one attribute check to the hot path.
    """

    def __init__(
        self,
        compile_deadline: float | None = None,
        run_deadline: float | None = None,
        diagnostics=None,
        obs=None,
    ):
        self.compile_deadline = compile_deadline
        self.run_deadline = run_deadline
        self.diagnostics = diagnostics
        self.obs = obs
        self.timeouts: list[tuple[str, str, float]] = []  # (label, kind, overrun)
        self._tls = threading.local()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def compile_guard(self, label: str):
        if self.compile_deadline is None:
            return _NULL_CONTEXT
        return _GuardContext(self, label, KIND_COMPILE, self.compile_deadline)

    def run_guard(self, label: str):
        if self.run_deadline is None:
            return _NULL_CONTEXT
        return _GuardContext(self, label, KIND_RUN, self.run_deadline)

    # ------------------------------------------------------------------
    def _on_fire(self, label: str, kind: str, overrun: float) -> None:
        """Monitor-thread callback: record the cancellation."""
        with self._lock:
            self.timeouts.append((label, kind, overrun))
        if self.diagnostics is not None:
            from repro.repository.diagnostics import WATCHDOG_TIMEOUT

            deadline = (
                self.compile_deadline if kind == KIND_COMPILE
                else self.run_deadline
            )
            self.diagnostics.record(
                WATCHDOG_TIMEOUT, label,
                detail=f"{kind} overran its {deadline:.4f}s deadline; "
                "cancelled by the watchdog",
            )
        if self.obs is not None:
            self.obs.record_watchdog_timeout(kind)
