"""The sandbox trial tier: first runs of fresh compiles in a subprocess.

The watchdog (:mod:`repro.resilience.watchdog`) can cancel a pure-Python
hang, but a real crash — a segfault in a native kernel, an OOM kill, an
``os._exit`` — takes down whatever process it happens in.  MatlabMPI gets
its fault model for free from OS process isolation; this module borrows
exactly that trick for the one moment a compiled object is least trusted:
its **first** execution.

Protocol
--------
* A freshly compiled (or disk-revived) object's first invocation runs in
  a forked child process under a hard timeout.  The child reseeds the
  shared random stream from the parent's snapshot, interprets any user
  callees (the interpreter is ground truth, so results stay
  bit-identical), and ships back outputs + transcript + the post-call RNG
  state over a pipe.
* **Success** promotes the object: the parent applies the child's side
  effects and every later call runs in-process at full speed.
* **Failure** — crash, OOM kill, timeout, injected fault — kills the
  sandbox, not the session.  The parent raises :class:`SandboxFailure`,
  which flows through the ordinary guarded-deopt chain: quarantine the
  version, charge a strike, re-execute through the interpreter.
* A **MATLAB-level error** in the child is the program's own behaviour:
  the object is promoted (it behaved correctly) and the error re-raises
  in the parent with the child's transcript applied.

The executor uses the ``fork`` start method (cheap, inherits the compiled
callable and kernel cache without serialization); on platforms without
``fork`` the trial degrades to immediate promotion, recorded once in the
diagnostics.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from dataclasses import dataclass, field

from repro.faults.plan import (
    InjectedFault,
    SITE_CRASH,
    SITE_HANG,
    SITE_OOM,
    SimulatedCrash,
)

#: Exit code the child uses for an injected crash (distinguishable from a
#: genuine interpreter error in the diagnostics).
CRASH_EXIT_CODE = 86


class SandboxFailure(RuntimeError):
    """A sandbox trial died (crash, OOM, hang, injected fault).

    A host-level failure, never a MatlabError: the repository absorbs it
    through the deopt chain exactly like an in-process miscompile.
    """


@dataclass
class SandboxVerdict:
    """Outcome of one supervised first run."""

    ok: bool
    reason: str = ""
    outputs: list = field(default_factory=list)
    sink_text: str = ""
    rng_state: object = None
    matlab_error: BaseException | None = None
    fired: list = field(default_factory=list)
    #: False when no trial actually ran (fork unavailable): the caller
    #: promotes the object and executes it in-process instead.
    executed: bool = True


def _child_main(conn, obj, functions, args, nargout, rng_state,
                fault_plan, kernels) -> None:
    """Run one trial invocation inside the forked child.

    ``functions`` maps name -> FunctionDef (already parsed in the
    parent); user callees are interpreted, which keeps the child
    self-contained — it never re-enters the parent's repository.
    """
    from repro.codegen.runtime_support import RuntimeSupport
    from repro.core.majic import ensure_recursion_limit
    from repro.errors import MatlabError, RuntimeMatlabError
    from repro.interp.interpreter import Interpreter
    from repro.runtime.builtins import GLOBAL_RANDOM
    from repro.runtime.display import OutputSink

    def reply(**payload) -> None:
        try:
            conn.send(payload)
        except Exception:  # noqa: BLE001 - parent may already have gone
            pass

    try:
        ensure_recursion_limit(100_000)
        GLOBAL_RANDOM.restore(rng_state)
        sink = OutputSink()
        interp = Interpreter(function_lookup=functions.get, sink=sink)

        def call_user(name, call_args, call_nargout):
            fn = functions.get(name)
            if fn is None:
                raise RuntimeMatlabError(
                    f"undefined function or variable '{name}'"
                )
            return tuple(interp.call_function(fn, call_args, call_nargout))

        rt = RuntimeSupport(call_user=call_user, sink=sink)
        # Pre-resolved fused kernels: bound here instead of through the
        # process-wide kernel cache, whose lock state after fork is
        # unknowable (a parent worker may have held it mid-compile).
        for kernel_name, kernel_fn in kernels.items():
            setattr(rt, kernel_name, kernel_fn)
        if fault_plan is not None:
            # The chaos sites this tier exists for: a crash exits the
            # child the way a segfault would; an OOM raises MemoryError;
            # a hang leaves the child wedged for the parent to kill.
            try:
                fault_plan.check(SITE_CRASH, obj.name)
                fault_plan.check(SITE_OOM, obj.name)
                fault_plan.check(SITE_HANG, obj.name)
            except SimulatedCrash:
                reply(status="crash", fired=list(fault_plan.fired))
                conn.close()
                os._exit(CRASH_EXIT_CODE)
            except MemoryError as exc:
                reply(status="fault", reason=repr(exc),
                      fired=list(fault_plan.fired))
                return
            except InjectedFault as exc:
                reply(status="fault", reason=repr(exc),
                      fired=list(fault_plan.fired))
                return
        try:
            outputs = obj.invoke(args, nargout, rt)
        except MatlabError as exc:
            try:
                error_payload = pickle.dumps(exc)
            except Exception:  # noqa: BLE001 - unpicklable program error
                error_payload = pickle.dumps(RuntimeMatlabError(str(exc)))
            reply(
                status="matlab_error",
                error=error_payload,
                sink=sink.getvalue(),
                rng=GLOBAL_RANDOM.snapshot(),
            )
            return
        reply(
            status="ok",
            outputs=pickle.dumps(outputs, protocol=pickle.HIGHEST_PROTOCOL),
            sink=sink.getvalue(),
            rng=GLOBAL_RANDOM.snapshot(),
        )
    except BaseException as exc:  # noqa: BLE001 - report, never traceback-spam
        reply(status="fault", reason=repr(exc))
    finally:
        try:
            conn.close()
        except Exception:  # noqa: BLE001
            pass


class SandboxExecutor:
    """Supervised first-run trials for freshly compiled objects."""

    def __init__(
        self,
        timeout: float = 30.0,
        fault_plan=None,
        diagnostics=None,
        obs=None,
    ):
        self.timeout = timeout
        self.fault_plan = fault_plan
        self.diagnostics = diagnostics
        self.obs = obs
        self.trials = 0
        self.failures = 0
        self._lock = threading.Lock()
        self._context = None
        self.available = "fork" in multiprocessing.get_all_start_methods()

    # ------------------------------------------------------------------
    def _ctx(self):
        if self._context is None:
            self._context = multiprocessing.get_context("fork")
        return self._context

    @staticmethod
    def _resolve_kernels(obj) -> dict:
        """Bind the object's fused kernels in the parent, pre-fork, so the
        child never touches the kernel cache's (possibly fork-poisoned)
        lock."""
        sources = getattr(obj, "kernel_sources", None)
        if not sources:
            return {}
        from repro.kernels.cache import KERNEL_CACHE

        kernels = {}
        for name in sources:
            kernel = KERNEL_CACHE.lookup(name)
            if kernel is not None:
                kernels[name] = kernel.fn
        return kernels

    # ------------------------------------------------------------------
    def trial(self, obj, functions, args, nargout, rng_state) -> SandboxVerdict:
        """Execute one first run under supervision; never raises."""
        if not self.available:
            return SandboxVerdict(
                ok=True, reason="sandbox unavailable (no fork); promoted",
                outputs=None, executed=False,
            )
        with self._lock:
            self.trials += 1
        kernels = self._resolve_kernels(obj)
        ctx = self._ctx()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main,
            args=(child_conn, obj, functions, list(args), nargout,
                  rng_state, self.fault_plan, kernels),
            daemon=True,
            name=f"majic-sandbox-{obj.name}",
        )
        process.start()
        child_conn.close()
        message = None
        try:
            if parent_conn.poll(self.timeout):
                message = parent_conn.recv()
        except (EOFError, OSError):
            message = None  # child died mid-send (crash exit)
        finally:
            parent_conn.close()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        return self._verdict(obj, process, message)

    # ------------------------------------------------------------------
    def _verdict(self, obj, process, message) -> SandboxVerdict:
        if message is not None and message.get("status") == "ok":
            return SandboxVerdict(
                ok=True,
                outputs=pickle.loads(message["outputs"]),
                sink_text=message.get("sink", ""),
                rng_state=message.get("rng"),
            )
        if message is not None and message.get("status") == "matlab_error":
            return SandboxVerdict(
                ok=True,
                sink_text=message.get("sink", ""),
                rng_state=message.get("rng"),
                matlab_error=pickle.loads(message["error"]),
            )
        with self._lock:
            self.failures += 1
        fired = [] if message is None else message.get("fired", ())
        if self.fault_plan is not None and fired:
            # The child's plan is a copy-on-write fork; merge what it
            # reported so harness assertions see the fired fault.
            already = len(self.fault_plan.fired)
            self.fault_plan.absorb_fired(fired[already:])
        if message is None:
            exitcode = process.exitcode
            if exitcode is None:
                reason = f"sandbox timed out after {self.timeout:.4f}s; killed"
            elif exitcode == CRASH_EXIT_CODE:
                reason = "sandbox crashed (injected crash exit)"
            else:
                reason = f"sandbox died with exit code {exitcode}"
        elif message.get("status") == "crash":
            reason = "sandbox crashed (injected crash exit)"
        else:
            reason = message.get("reason", "sandbox trial failed")
        return SandboxVerdict(ok=False, reason=reason, fired=list(fired))
