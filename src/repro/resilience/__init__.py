"""Execution supervision: watchdogs, sandbox trials, self-healing.

``repro.resilience`` is the robustness tier layered over the repository:

* :mod:`~repro.resilience.watchdog` — wall-clock deadlines on compiles
  and compiled runs, cancelled by asynchronous exception injection from a
  single process-wide monitor thread;
* :mod:`~repro.resilience.sandbox` — a freshly compiled object's first
  run executes in a supervised fork; a crash/OOM/hang kills the sandbox,
  never the session;
* worker supervision lives in
  :mod:`repro.repository.background` (heartbeats, dead-worker restarts
  with exponential backoff, poison-task quarantine) and cache
  self-healing in :mod:`repro.repository.cache` (corruption detection,
  IO retries, quarantine-and-rebuild) — both are steered by the
  :class:`ResiliencePolicy` knobs defined here.

Everything is policy-driven: a single frozen :class:`ResiliencePolicy`
carries the deadlines, backoffs and retry budgets, and a session passes
one policy down through the repository, the speculation engine and the
disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.resilience.sandbox import (
    SandboxExecutor,
    SandboxFailure,
    SandboxVerdict,
)
from repro.resilience.watchdog import (
    DeadlineExceeded,
    ExecutionGuard,
    KIND_COMPILE,
    KIND_RUN,
    MONITOR,
)


@dataclass(frozen=True)
class ResiliencePolicy:
    """The supervision knobs, in one immutable bundle.

    Defaults are chosen so an undisturbed session pays (nearly) nothing:
    the compile watchdog is armed but generous, the run watchdog and the
    sandbox tier are opt-in, and the worker/cache healing parameters only
    matter once something actually dies.
    """

    #: Wall-clock deadline on one compile (None disables the guard).  A
    #: compile is off the hot path, so a generous armed-by-default bound
    #: costs ~2 lock acquisitions per compile.
    compile_deadline: float | None = 60.0
    #: Wall-clock deadline on one compiled-object run.  Off by default:
    #: arming it costs a registration per top-level call, and MaJIC
    #: cannot know how long a legitimate user computation should take.
    run_deadline: float | None = None
    #: Run every fresh compile's first invocation in a forked sandbox.
    sandbox: bool = False
    #: Hard timeout on one sandbox trial before the child is killed.
    sandbox_timeout: float = 30.0
    #: A worker whose heartbeat is older than this is presumed hung and
    #: gets a DeadlineExceeded injected.
    worker_heartbeat_timeout: float = 30.0
    #: Total dead-worker restarts the supervisor will pay for before the
    #: engine degrades to foreground-only compilation.
    worker_max_restarts: int = 8
    #: Base of the exponential restart backoff (seconds); restart *n*
    #: waits ``backoff * 2**n`` capped at 1s.
    worker_restart_backoff: float = 0.01
    #: How many times a task that killed its worker is retried before it
    #: is quarantined as poison.
    worker_max_task_retries: int = 2
    #: Wall-clock deadline on one out-of-band native (C) kernel compile.
    #: Enforced as a hard subprocess timeout on the toolchain invocation —
    #: the watchdog equivalent for work that happens in a child process.
    native_compile_deadline: float | None = 60.0
    #: Smoke-test a freshly compiled (not cache-revived) ``.so`` in a
    #: forked child before trusting it in-process — the sandbox tier for
    #: native code.  On by default: the trial runs once per compile, off
    #: the hot path, and a crashing artifact then kills the fork, never
    #: the session.  Skipped automatically where ``os.fork`` is missing.
    native_trial: bool = True
    #: Transient-IO retry budget for one cache read/write.
    cache_io_retries: int = 3
    #: Base of the cache retry backoff (seconds), doubled per attempt.
    cache_io_backoff: float = 0.005
    #: How long the parallel driver waits for one worker rank's reply
    #: before declaring the message lost and falling back to serial
    #: execution (:mod:`repro.parallel`).
    parallel_recv_timeout: float = 60.0
    #: Dead parallel-worker respawns paid for before the parallel backend
    #: degrades to serial execution for the rest of the session.
    parallel_max_restarts: int = 4
    #: Base of the parallel-worker respawn backoff (seconds), doubled per
    #: restart of the same rank, capped at 1s.
    parallel_restart_backoff: float = 0.02

    def with_overrides(self, **kwargs) -> "ResiliencePolicy":
        """A copy with the given fields replaced (None values kept)."""
        return replace(self, **kwargs)


#: The default policy (module-level so callers can compare identity).
DEFAULT_POLICY = ResiliencePolicy()

__all__ = [
    "DEFAULT_POLICY",
    "DeadlineExceeded",
    "ExecutionGuard",
    "KIND_COMPILE",
    "KIND_RUN",
    "MONITOR",
    "ResiliencePolicy",
    "SandboxExecutor",
    "SandboxFailure",
    "SandboxVerdict",
]
