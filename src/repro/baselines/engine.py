"""Shared machinery for the batch-compiler baselines.

A :class:`BaselineEngine` owns a function table, compiles whole programs
ahead of time (batch), and executes invocations against its compiled
objects.  Unlike the MaJIC repository there is no locator ladder: a batch
compiler produces exactly one version per function.
"""

from __future__ import annotations

from repro.codegen.inline import Inliner
from repro.codegen.jitgen import CompiledObject
from repro.codegen.runtime_support import RuntimeSupport
from repro.errors import CodegenError, RepositoryError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.interp.interpreter import Interpreter
from repro.runtime.display import OutputSink
from repro.runtime.mxarray import MxArray
from repro.typesys.signature import Signature, signature_of_values


class BaselineEngine:
    """Base class: function table + batch compile + execution."""

    name = "baseline"
    inline_enabled = True

    def __init__(self, sink: OutputSink | None = None):
        self.sink = sink if sink is not None else OutputSink()
        self._functions: dict[str, ast.FunctionDef] = {}
        self._objects: dict[str, CompiledObject] = {}
        self._uncompilable: set[str] = set()
        self.compile_seconds = 0.0
        self._interpreter = Interpreter(
            function_lookup=self._functions.get,
            sink=self.sink,
            call_dispatcher=self._dispatch,
        )
        self._rt = RuntimeSupport(call_user=self._call_user, sink=self.sink)

    # ------------------------------------------------------------------
    def add_source(self, text: str) -> list[str]:
        program = parse(text)
        names = []
        for fn in program.functions:
            self._functions[fn.name] = fn
            self._objects.pop(fn.name, None)
            names.append(fn.name)
        return names

    def knows(self, name: str) -> bool:
        return name in self._functions

    def prepared(self, name: str) -> ast.FunctionDef:
        fn = self._functions.get(name)
        if fn is None:
            raise RepositoryError(f"unknown function '{name}'")
        if not self.inline_enabled:
            return fn
        return Inliner(self._functions.get).run(fn)

    # ------------------------------------------------------------------
    def compile_function(
        self, name: str, example_args: list[MxArray]
    ) -> CompiledObject | None:
        """Batch-compile one function; engines define _compile."""
        import time

        start = time.perf_counter()
        try:
            obj = self._compile(name, example_args)
        except CodegenError:
            self._uncompilable.add(name)
            return None
        finally:
            self.compile_seconds += time.perf_counter() - start
        self._objects[name] = obj
        return obj

    def _compile(self, name: str, example_args: list[MxArray]) -> CompiledObject:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def execute(self, name: str, args: list[MxArray], nargout: int = 1):
        obj = self._objects.get(name)
        if obj is None and name not in self._uncompilable:
            obj = self.compile_function(name, args)
        if obj is None:
            fn = self._functions[name]
            return self._interpreter.call_function(fn, args, nargout)
        return obj.invoke(args, nargout, self._rt)

    def _call_user(self, name: str, args: list[MxArray], nargout: int):
        return tuple(self.execute(name, args, nargout))

    def _dispatch(self, name, args, nargout):
        if not self.knows(name):
            return None
        return self.execute(name, args, nargout)

    # ------------------------------------------------------------------
    def invocation_signature(self, args: list[MxArray]) -> Signature:
        return signature_of_values(args)
