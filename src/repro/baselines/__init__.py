"""Comparator systems: mcc and FALCON (Section 3.2).

Both are batch compilers; the harness measures their generated code with
compilation excluded, matching the paper's methodology.
"""

from repro.baselines.engine import BaselineEngine
from repro.baselines.mcc import MccCompilerEngine
from repro.baselines.falcon import FalconCompilerEngine

__all__ = ["BaselineEngine", "MccCompilerEngine", "FalconCompilerEngine"]
