"""The FALCON baseline (DeRose & Padua's MATLAB→Fortran 90 translator).

FALCON is a batch compiler with high-quality static type inference.  It
has no calling context, but "circumvents this problem by 'peeking' into
the input files of the code it compiles and extracting type information
from there" (Section 4) — which gives it type information equivalent to
the actual invocation's signature.  Its code quality comes from the native
Fortran compiler ("FALCON relies heavily on the native Fortran compiler to
generate good code"), so it inherits the platform's native optimization
level but *not* MaJIC's own selection tricks (small-vector unrolling,
pre-allocated temporaries, dgemv fusion).

Per the paper's methodology, subscript checks are eliminated wherever safe
(we run the same range analysis plus loop versioning) and compile time is
excluded from measured runtimes.
"""

from __future__ import annotations

from repro.baselines.engine import BaselineEngine
from repro.codegen.jitgen import CompiledObject
from repro.codegen.srcgen import SourceCompiler, SrcOptions
from repro.runtime.display import OutputSink
from repro.runtime.mxarray import MxArray
from repro.typesys.signature import signature_of_values


class FalconCompilerEngine(BaselineEngine):
    """Batch compiler: exact types from file peeking + native backend."""

    name = "falcon"
    inline_enabled = True

    def __init__(
        self,
        native_opt_level: int = 1,
        sink: OutputSink | None = None,
    ):
        super().__init__(sink=sink)
        self.native_opt_level = native_opt_level

    def _compile(self, name: str, example_args: list[MxArray]) -> CompiledObject:
        fn = self.prepared(name)
        options = SrcOptions(
            native_opt_level=self.native_opt_level,
            majic_opts=False,       # FALCON has no MaJIC-specific selection
            versioning=True,        # subscript checks eliminated where safe
        )
        compiler = SourceCompiler(options)
        # "Peeking": type information equivalent to the invocation values.
        signature = signature_of_values(example_args)
        return compiler.compile(
            fn, signature, mode="falcon", is_user_function=self.knows
        )
