"""The mcc baseline (Mathworks' compiler, as configured in Section 3.2).

mcc-generated code is the bottom row of the paper's Figure 3: every
operation remains a generic boxed library call (``mlfPower``, ``mlfTimes``,
``mlfPlus`` ...), so compilation removes the *interpretive* overhead
(parsing, dynamic symbol resolution, tree walking) but none of the dynamic
*dispatch* overhead.  The paper finds mcc "not particularly successful at
removing the interpretive overhead" — this engine reproduces that design
point by running the JIT pipeline with empty type annotations: every
expression is ⊤, so code selection falls back to the generic helpers
everywhere.

Following the paper's methodology, the harness configures mcc favourably
(batch compilation excluded from runtimes, subscript checks left to the
generic layer exactly as mcc's library does).
"""

from __future__ import annotations

from repro.baselines.engine import BaselineEngine
from repro.codegen.jitgen import CompiledObject, JitCompiler, JitOptions
from repro.codegen.runtime_support import RuntimeSupport, box
from repro.inference.annotations import Annotations
from repro.runtime import elementwise as ew
from repro.runtime.mxarray import IntrinsicClass, MxArray
from repro.runtime.values import from_ndarray, make_scalar
from repro.typesys.signature import Signature


def _boxed(op):
    """An operator that boxes both operands and the result, like the
    MATLAB C library functions mcc-generated code calls."""

    def wrapped(a, b):
        return op(box(a), box(b))

    return wrapped


class MccRuntimeSupport(RuntimeSupport):
    """mxArray-faithful runtime: every operation allocates boxed values.

    mcc's generated C never unboxes: ``mlfPlus``/``mlfTimes``/... take and
    return ``mxArray*``.  Overriding the generic helpers (and the column
    iterator) to stay boxed reproduces that cost model.
    """

    g_add = staticmethod(_boxed(ew.mlf_plus))
    g_sub = staticmethod(_boxed(ew.mlf_minus))
    g_mul = staticmethod(_boxed(ew.mlf_mtimes))
    g_emul = staticmethod(_boxed(ew.mlf_times))
    g_div = staticmethod(_boxed(ew.mlf_mrdivide))
    g_ediv = staticmethod(_boxed(ew.mlf_rdivide))
    g_ldiv = staticmethod(_boxed(ew.mlf_mldivide))
    g_eldiv = staticmethod(_boxed(ew.mlf_ldivide))
    g_pow = staticmethod(_boxed(ew.mlf_mpower))
    g_epow = staticmethod(_boxed(ew.mlf_power))
    g_lt = staticmethod(_boxed(ew.mlf_lt))
    g_le = staticmethod(_boxed(ew.mlf_le))
    g_gt = staticmethod(_boxed(ew.mlf_gt))
    g_ge = staticmethod(_boxed(ew.mlf_ge))
    g_eq = staticmethod(_boxed(ew.mlf_eq))
    g_ne = staticmethod(_boxed(ew.mlf_ne))
    g_and = staticmethod(_boxed(ew.mlf_and))
    g_or = staticmethod(_boxed(ew.mlf_or))

    # Indexing keeps the library's scalar fast paths: the harness follows
    # the paper's methodology of configuring mcc favourably ("we manually
    # eliminated subscript checks"), so element access is not the mcc
    # bottleneck — the boxed arithmetic above is.


class MccCompilerEngine(BaselineEngine):
    """Batch compiler producing fully generic (boxed) code."""

    name = "mcc"
    # mcc does not perform MATLAB-level inlining.
    inline_enabled = False

    def __init__(self, sink=None):
        super().__init__(sink=sink)
        self._rt = MccRuntimeSupport(
            call_user=self._call_user, sink=self.sink
        )

    def _compile(self, name: str, example_args: list[MxArray]) -> CompiledObject:
        fn = self.prepared(name)
        compiler = JitCompiler(
            JitOptions(unroll_enabled=False, dgemv_enabled=False)
        )
        # Empty annotations: every type is the implicit ⊤ default, forcing
        # the generic complex-matrix code paths of Figure 3's last row.
        annotations = Annotations()
        signature = Signature.all_top(len(fn.params))
        return compiler.compile(
            fn,
            signature,
            annotations=annotations,
            mode="mcc",
            is_user_function=self.knows,
        )
