"""Elementwise fusion tree matchers.

A *fusion tree* is a maximal expression subtree built from elementwise
operators whose interior nodes are all array-valued numbers: evaluating it
through the generic runtime costs one boxed library call (dispatch +
conformance check + result classification + an ``astype`` copy) per
operator — exactly the per-operation overhead of the paper's Figure 3.
The matchers here find such trees; :mod:`repro.kernels.codegen` collapses
each into a single NumPy kernel.

Two matchers share the tree representation:

* :func:`match_typed` runs inside the JIT lowerer over a type-annotated
  body.  Interior nodes must be proven numeric non-scalars; ``*`` and
  ``/`` participate only when inference proves the relevant operand
  scalar (``mlf_mtimes``/``mlf_mrdivide`` delegate to their elementwise
  forms in that case, so the rewrite is exact).  Leaves must be pure
  (variables, literals, indexing, pure builtins) so that evaluating all
  of them before any operator — which fusion does — cannot reorder an
  observable side effect around a legitimate MATLAB error.
* :func:`match_dynamic` is the interpreter's structural matcher: no type
  information, so leaves are restricted to variables and numeric
  literals, every leaf descriptor is a boxed array, and scalarness
  requirements of ``*``/``/`` nodes are revalidated against live values
  by :meth:`DynamicPlan.runtime_ok` on every evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.symtab import SymbolKind
from repro.codegen.select import BOXED, repr_of_type
from repro.frontend import ast_nodes as ast

#: Leaf descriptors: a boxed MxArray operand vs a raw host scalar.
DESC_BOXED = "b"
DESC_SCALAR = "s"

#: Elementwise binary operators fused unconditionally (when array-typed).
FUSIBLE_BINOPS = {
    "+", "-", ".*", "./", ".^",
    "==", "~=", "<", "<=", ">", ">=",
    "&", "|",
}

#: Shape-preserving unary math builtins whose runtime implementation is a
#: single ``np`` call under ``_unary_math`` (see ``runtime/builtins.py``).
#: ``sqrt``/``log`` carry the same runtime complex-widening check there.
FUSIBLE_UNARY_BUILTINS = {
    "abs", "sqrt", "exp", "log", "sin", "cos", "tan",
    "floor", "ceil", "conj",
}

#: Tree-size guardrails: a fused kernel needs at least two collapsed
#: operators to beat a helper call, and very wide trees would generate
#: functions with unwieldy argument lists.
MIN_OPS = 2
MAX_OPS = 24
MAX_LEAVES = 12


@dataclass(frozen=True)
class Leaf:
    """Reference to the ``index``-th kernel operand."""

    index: int


@dataclass(frozen=True)
class Node:
    """One fused operator application.

    ``op`` keeps the MATLAB spelling (``"*"`` and ``"/"`` stay distinct
    from ``".*"``/``"./"`` even though they lower identically, because
    the dynamic matcher revalidates their scalarness requirement from
    live values).  Unary minus/not are ``"u-"``/``"u~"``; unary builtins
    use their name.
    """

    op: str
    children: tuple


def encode(node, descs) -> str:
    """Canonical text form of a tree — the content-address input."""
    if isinstance(node, Leaf):
        return f"%{node.index}{descs[node.index]}"
    parts = " ".join(encode(child, descs) for child in node.children)
    return f"({node.op} {parts})"


def decode(key: str) -> tuple:
    """Inverse of :func:`encode`: rebuild ``(root, descs)`` from a key.

    The native tier revives kernels across sessions from their canonical
    key alone (the disk cache persists keys, not trees), so the encoding
    must round-trip.  Raises :class:`ValueError` on malformed input.
    """
    pos = 0
    descs: dict[int, str] = {}

    def parse():
        nonlocal pos
        if pos >= len(key):
            raise ValueError("truncated kernel key")
        if key[pos] == "(":
            pos += 1
            end = key.find(" ", pos)
            if end < 0:
                raise ValueError("malformed kernel key (operator)")
            op = key[pos:end]
            pos = end
            children = []
            while pos < len(key) and key[pos] == " ":
                pos += 1
                children.append(parse())
            if pos >= len(key) or key[pos] != ")" or not children:
                raise ValueError("malformed kernel key (node)")
            pos += 1
            return Node(op, tuple(children))
        if key[pos] != "%":
            raise ValueError("malformed kernel key (leaf)")
        pos += 1
        start = pos
        while pos < len(key) and key[pos].isdigit():
            pos += 1
        if pos == start or pos >= len(key):
            raise ValueError("malformed kernel key (leaf index)")
        index = int(key[start:pos])
        desc = key[pos]
        if desc not in (DESC_BOXED, DESC_SCALAR):
            raise ValueError(f"unknown leaf descriptor {desc!r}")
        pos += 1
        existing = descs.get(index)
        if existing is not None and existing != desc:
            raise ValueError("conflicting leaf descriptors")
        descs[index] = desc
        return Leaf(index)

    root = parse()
    if pos != len(key):
        raise ValueError("trailing garbage in kernel key")
    if not isinstance(root, Node):
        raise ValueError("kernel key must encode at least one operator")
    try:
        desc_tuple = tuple(descs[i] for i in range(len(descs)))
    except KeyError:
        raise ValueError("non-contiguous leaf indices in kernel key") from None
    return root, desc_tuple


class _NoFusion(Exception):
    """Internal abort signal: some subexpression disqualifies the tree."""


# ======================================================================
# Typed matcher (JIT)
# ======================================================================
@dataclass
class TypedPlan:
    """A fusion tree matched against inference annotations."""

    root: Node
    leaves: list[ast.Expr]
    op_count: int


def match_typed(expr, ann, dis) -> TypedPlan | None:
    """Match a fused tree rooted at ``expr`` using type annotations.

    Returns ``None`` when the root is not an array-typed elementwise
    operator, the tree collapses fewer than :data:`MIN_OPS` operators, or
    any leaf is impure / possibly non-numeric.
    """
    leaves: list[ast.Expr] = []
    leaf_index: dict = {}
    ops = 0

    def numeric_array(node) -> bool:
        mtype = ann.type_of(node)
        return repr_of_type(mtype) == BOXED and mtype.intrinsic.is_numeric

    def scalar_typed(node) -> bool:
        return ann.type_of(node).is_scalar

    def leaf_of(node) -> Leaf:
        mtype = ann.type_of(node)
        if not mtype.intrinsic.is_numeric:
            raise _NoFusion          # possible string/unknown operand
        if not _leaf_pure(node, dis):
            raise _NoFusion
        if isinstance(node, ast.Ident) and dis.kind_of(node) is SymbolKind.VARIABLE:
            key = ("var", node.name)
        else:
            key = ("expr", id(node))
        index = leaf_index.get(key)
        if index is None:
            if len(leaves) >= MAX_LEAVES:
                raise _NoFusion
            index = len(leaves)
            leaf_index[key] = index
            leaves.append(node)
        return Leaf(index)

    def build(node, is_root: bool):
        nonlocal ops
        if isinstance(node, ast.UnaryOp) and node.op is ast.UnaryKind.POS:
            # mlf_uplus is a plain copy; transparent inside a fresh tree.
            return build(node.operand, is_root)
        op = _typed_op(node, scalar_typed)
        if op is not None and numeric_array(node):
            ops += 1
            if ops > MAX_OPS:
                raise _NoFusion
            children = _operands(node)
            return Node(op, tuple(build(child, False) for child in children))
        if is_root:
            raise _NoFusion
        return leaf_of(node)

    try:
        root = build(expr, True)
    except _NoFusion:
        return None
    if ops < MIN_OPS:
        return None
    return TypedPlan(root=root, leaves=leaves, op_count=ops)


def _typed_op(node, scalar_typed) -> str | None:
    """The fused-op spelling for ``node``, or ``None`` if not fusible."""
    if isinstance(node, ast.BinaryOp):
        if node.op in FUSIBLE_BINOPS:
            return node.op
        if node.op == "*" and (
            scalar_typed(node.left) or scalar_typed(node.right)
        ):
            return "*"               # mlf_mtimes delegates to mlf_times
        if node.op == "/" and scalar_typed(node.right):
            return "/"               # mlf_mrdivide delegates to mlf_rdivide
        return None
    if isinstance(node, ast.UnaryOp):
        if node.op is ast.UnaryKind.NEG:
            return "u-"
        if node.op is ast.UnaryKind.NOT:
            return "u~"
        return None
    if (
        isinstance(node, ast.Apply)
        and node.kind is ast.ApplyKind.BUILTIN
        and node.name in FUSIBLE_UNARY_BUILTINS
        and len(node.args) == 1
    ):
        return node.name
    return None


def _operands(node) -> tuple:
    if isinstance(node, ast.BinaryOp):
        return (node.left, node.right)
    if isinstance(node, ast.UnaryOp):
        return (node.operand,)
    return tuple(node.args)


def _leaf_pure(node, dis) -> bool:
    """True when evaluating ``node`` cannot produce an observable side
    effect (output, RNG draw, user-function re-entry)."""
    from repro.runtime.builtins import BUILTINS

    for sub in ast.walk_expr(node):
        if isinstance(sub, ast.Ident):
            kind = dis.kind_of(sub)
            if kind is SymbolKind.VARIABLE:
                continue
            if kind is SymbolKind.BUILTIN:
                entry = BUILTINS.get(sub.name)
                if entry is not None and entry.pure:
                    continue
            return False
        if isinstance(sub, ast.Apply):
            if sub.kind is ast.ApplyKind.INDEX:
                continue
            if sub.kind is ast.ApplyKind.BUILTIN:
                entry = BUILTINS.get(sub.name)
                if entry is not None and entry.pure:
                    continue
            return False
    return True


# ======================================================================
# Dynamic matcher (interpreter fast path)
# ======================================================================
@dataclass
class DynamicPlan:
    """A structurally matched tree for the interpreter.

    All descriptors are boxed (the interpreter works on ``MxArray``
    values throughout), so one kernel serves every dtype/shape the tree
    meets; ``kernel`` memoizes the compiled function after first use.
    """

    root: Node
    leaves: list[ast.Expr]
    op_count: int
    has_matmul: bool = False
    kernel: object = field(default=None, compare=False)

    def runtime_ok(self, values) -> bool:
        """Revalidate ``*``/``/`` scalarness against live operands."""
        return _scalarness(self.root, values) is not None


def _scalarness(node, values):
    """Bottom-up scalarness: True/False, or ``None`` when a ``*``/``/``
    node would need true matrix semantics (fusion invalid)."""
    if isinstance(node, Leaf):
        return values[node.index].is_scalar
    kinds = [_scalarness(child, values) for child in node.children]
    if None in kinds:
        return None
    if node.op == "*" and not (kinds[0] or kinds[1]):
        return None
    if node.op == "/" and not kinds[1]:
        return None
    return all(kinds)


def match_dynamic(expr) -> DynamicPlan | None:
    """Structural match with no type information (interpreter side).

    Leaves are variables and numeric literals only — anything else (calls,
    indexing, strings) bails to the generic path, keeping evaluation
    order and dynamic resolution observably identical.
    """
    leaves: list[ast.Expr] = []
    leaf_index: dict = {}
    ops = 0
    has_matmul = False

    def leaf_of(node) -> Leaf:
        if isinstance(node, ast.Ident):
            key = ("var", node.name)
        elif isinstance(node, (ast.Number, ast.ImagNumber)):
            key = ("expr", id(node))
        else:
            raise _NoFusion
        index = leaf_index.get(key)
        if index is None:
            if len(leaves) >= MAX_LEAVES:
                raise _NoFusion
            index = len(leaves)
            leaf_index[key] = index
            leaves.append(node)
        return Leaf(index)

    def build(node, is_root: bool):
        nonlocal ops, has_matmul
        if isinstance(node, ast.UnaryOp) and node.op is ast.UnaryKind.POS:
            return build(node.operand, is_root)
        op = None
        if isinstance(node, ast.BinaryOp):
            if node.op in FUSIBLE_BINOPS or node.op in ("*", "/"):
                op = node.op
                has_matmul = has_matmul or node.op in ("*", "/")
        elif isinstance(node, ast.UnaryOp):
            op = "u-" if node.op is ast.UnaryKind.NEG else "u~"
        if op is not None:
            ops += 1
            if ops > MAX_OPS:
                raise _NoFusion
            return Node(op, tuple(build(c, False) for c in _operands(node)))
        if is_root:
            raise _NoFusion
        return leaf_of(node)

    try:
        root = build(expr, True)
    except _NoFusion:
        return None
    if ops < MIN_OPS:
        return None
    return DynamicPlan(
        root=root, leaves=leaves, op_count=ops, has_matmul=has_matmul
    )
