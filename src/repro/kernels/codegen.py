"""Kernel source generation.

Turns a matched fusion tree into one Python function that evaluates the
whole tree over raw ``ndarray`` views — no intermediate ``MxArray``
boxing, one output allocation at the end.  The generated code must be
**bit-identical** to the unfused chain through
:mod:`repro.runtime.elementwise`, so every statement mirrors the
corresponding ``mlf_*`` helper exactly:

* conformance checks raise the same :class:`DimensionError` message, in
  the same (postorder) position the unfused chain would raise it;
* relational/logical results pass through ``astype(np.float64)`` at each
  node, exactly where the unfused chain boxes them;
* ``.^`` replays ``mlf_power``'s value-dependent complex widening, and
  ``sqrt``/``log`` replay ``_unary_math``'s negative-domain widening;
* raw scalar operands are normalized the way ``make_scalar`` would
  normalize them before boxing (so NumPy dtype promotion is unchanged).

Intermediate relational/logical ``float64`` temporaries carry the same
payloads the unfused chain's boxed intermediates would (``from_ndarray``
preserves ``float64``/``complex128`` data verbatim), so skipping the box
is value-transparent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.kernels.fusion import DESC_SCALAR, Leaf, Node
from repro.runtime.mxarray import IntrinsicClass
from repro.runtime.values import from_ndarray

#: Operators whose result is logical (boxed with ``klass = BOOL``).
_BOOL_OPS = {"==", "~=", "<", "<=", ">", ">=", "&", "|", "u~"}

#: Operators whose unfused helper runs under ``np.errstate`` — the whole
#: kernel body is wrapped once when any of these appears (values are
#: unaffected; only FP warnings are suppressed, as the helpers do).
_ERRSTATE_OPS = {"./", "/", ".^"}

#: ``opname`` used in the unfused conformance error message, per op.
_OPNAME = {
    "+": "plus", "-": "minus",
    ".*": "times", "*": "times",
    "./": "rdivide", "/": "rdivide",
    ".^": "power",
    "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    "==": "eq", "~=": "ne", "&": "and", "|": "or",
}

_CMP_FN = {
    "<": "np.less", "<=": "np.less_equal",
    ">": "np.greater", ">=": "np.greater_equal",
}

_UNARY_NP = {
    "abs": "np.abs", "sqrt": "np.sqrt", "exp": "np.exp", "log": "np.log",
    "sin": "np.sin", "cos": "np.cos", "tan": "np.tan",
    "floor": "np.floor", "ceil": "np.ceil", "conj": "np.conj",
}

#: Builtins that widen to complex on negative input (``_NEGATIVE_DOMAIN``).
_WIDEN_BUILTINS = {"sqrt": 0.0, "log": 0.0}


def _cc(a, b, opname: str) -> None:
    """The ``_binary_views`` conformance rule, over views/raw scalars."""
    sa = a.shape if isinstance(a, np.ndarray) else (1, 1)
    sb = b.shape if isinstance(b, np.ndarray) else (1, 1)
    if sa == (1, 1) or sb == (1, 1) or sa == sb:
        return
    raise DimensionError(
        f"matrix dimensions must agree in '{opname}' "
        f"({sa[0]}x{sa[1]} vs {sb[0]}x{sb[1]})"
    )


def _scal(x):
    """Normalize a raw host scalar the way ``make_scalar`` would before
    boxing: bools/ints become floats, and a complex with zero imaginary
    part demotes to its real part — keeping NumPy dtype promotion
    identical to the unfused boxed path."""
    if isinstance(x, complex):
        return x.real if x.imag == 0.0 else x
    return float(x)


#: Globals namespace shared by all generated kernels.
KERNEL_GLOBALS = {
    "np": np,
    "from_ndarray": from_ndarray,
    "IntrinsicClass": IntrinsicClass,
    "DimensionError": DimensionError,
    "_cc": _cc,
    "_scal": _scal,
}


class _Emitter:
    def __init__(self, descs):
        self.descs = descs
        self.lines: list[str] = []
        self.counter = 0

    def fresh(self) -> str:
        name = f"t{self.counter}"
        self.counter += 1
        return name

    def static_scalar(self, node) -> bool:
        if isinstance(node, Leaf):
            return self.descs[node.index] == DESC_SCALAR
        return all(self.static_scalar(child) for child in node.children)

    def emit(self, node) -> str:
        if isinstance(node, Leaf):
            return f"v{node.index}"
        refs = [self.emit(child) for child in node.children]
        out = self.fresh()
        op = node.op
        if len(refs) == 2:
            x, y = refs
            if not (
                self.static_scalar(node.children[0])
                or self.static_scalar(node.children[1])
            ):
                self.lines.append(f"_cc({x}, {y}, {_OPNAME[op]!r})")
            self._emit_binary(op, out, x, y)
        else:
            self._emit_unary(op, out, refs[0])
        return out

    def _emit_binary(self, op, out, x, y) -> None:
        lines = self.lines
        if op == "+":
            lines.append(f"{out} = {x} + {y}")
        elif op == "-":
            lines.append(f"{out} = {x} - {y}")
        elif op in (".*", "*"):
            lines.append(f"{out} = {x} * {y}")
        elif op in ("./", "/"):
            lines.append(f"{out} = np.true_divide({x}, {y})")
        elif op == ".^":
            base = self.fresh()
            lines.append(f"{base} = {x}")
            lines.append(
                f"if (np.any(np.real({base}) < 0)"
                f" and not np.iscomplexobj({base})"
                f" and np.any({y} != np.floor(np.real({y})))):\n"
                f"    {base} = ({base}.astype(np.complex128)"
                f" if isinstance({base}, np.ndarray) else complex({base}))"
            )
            lines.append(f"{out} = np.power({base}, {y})")
        elif op in _CMP_FN:
            lines.append(
                f"{out} = {_CMP_FN[op]}(np.real({x}), np.real({y}))"
                f".astype(np.float64)"
            )
        elif op == "==":
            lines.append(f"{out} = np.equal({x}, {y}).astype(np.float64)")
        elif op == "~=":
            lines.append(f"{out} = np.not_equal({x}, {y}).astype(np.float64)")
        elif op == "&":
            lines.append(
                f"{out} = np.logical_and({x} != 0, {y} != 0)"
                f".astype(np.float64)"
            )
        elif op == "|":
            lines.append(
                f"{out} = np.logical_or({x} != 0, {y} != 0)"
                f".astype(np.float64)"
            )
        else:
            raise ValueError(f"unknown fused binary op {op!r}")

    def _emit_unary(self, op, out, x) -> None:
        lines = self.lines
        if op == "u-":
            lines.append(f"{out} = -({x})")
        elif op == "u~":
            lines.append(f"{out} = np.equal({x}, 0).astype(np.float64)")
        elif op in _WIDEN_BUILTINS:
            arg = self.fresh()
            domain = _WIDEN_BUILTINS[op]
            lines.append(f"{arg} = {x}")
            lines.append(
                f"if (not np.iscomplexobj({arg}) and {arg}.size"
                f" and np.any({arg} < {domain!r})):\n"
                f"    {arg} = {arg}.astype(np.complex128)"
            )
            lines.append(f"{out} = {_UNARY_NP[op]}({arg})")
        elif op in _UNARY_NP:
            lines.append(f"{out} = {_UNARY_NP[op]}({x})")
        else:
            raise ValueError(f"unknown fused unary op {op!r}")


def _needs_errstate(node) -> bool:
    if isinstance(node, Leaf):
        return False
    if node.op in _ERRSTATE_OPS or node.op in _UNARY_NP:
        return True
    return any(_needs_errstate(child) for child in node.children)


def generate_source(name: str, root: Node, descs) -> str:
    """Python source for one fused kernel named ``name``."""
    emitter = _Emitter(descs)
    result = emitter.emit(root)
    params = ", ".join(f"a{i}" for i in range(len(descs)))
    out: list[str] = [f"def {name}({params}):"]
    for i, desc in enumerate(descs):
        if desc == DESC_SCALAR:
            out.append(f"    v{i} = _scal(a{i})")
        else:
            out.append(f"    v{i} = a{i}.view()")
    indent = "    "
    if _needs_errstate(root):
        out.append('    with np.errstate(divide="ignore", invalid="ignore"):')
        indent = "        "
    for stmt in emitter.lines:
        for line in stmt.split("\n"):
            out.append(indent + line)
    out.append(f"    out = from_ndarray({result})")
    if root.op in _BOOL_OPS:
        out.append("    out.klass = IntrinsicClass.BOOL")
    out.append("    return out")
    return "\n".join(out) + "\n"


def compile_kernel(name: str, source: str):
    """Exec ``source`` against the shared kernel globals; return the
    function object."""
    namespace: dict = {}
    exec(compile(source, f"<kernel {name}>", "exec"), KERNEL_GLOBALS, namespace)
    return namespace[name]
