"""Fused elementwise kernels (the vectorizing kernel compiler).

The paper's Figure 3 shows where interpreted MATLAB time goes: one boxed
library call per elementwise operator, each allocating a temporary.  Our
JIT removed that overhead for *scalars* (raw host representation); this
package removes it for *arrays* by collapsing whole elementwise expression
trees — ``+ - .* ./ .^``, comparisons, logical ops and shape-preserving
unary builtins — into single generated-Python NumPy kernels with no
intermediate ``MxArray`` boxing.

Layout:

* :mod:`repro.kernels.fusion` — tree matchers.  ``match_typed`` walks a
  type-annotated expression after inference (the JIT consumer);
  ``match_dynamic`` is the structural matcher behind the interpreter's
  fast path (descriptors resolved per call).
* :mod:`repro.kernels.codegen` — turns a matched tree into Python source
  that replays :mod:`repro.runtime.elementwise` semantics bit-for-bit.
* :mod:`repro.kernels.cache` — the process-wide content-addressed
  :class:`KernelCache` (SHA-256 of tree structure + operand descriptors);
  compiled functions persist across sessions and, via
  ``CompiledObject.kernel_sources``, through the disk-backed
  :class:`~repro.repository.cache.RepositoryCache`.
"""

from repro.kernels.cache import KERNEL_CACHE, CompiledKernel, KernelCache
from repro.kernels.fusion import (
    DESC_BOXED,
    DESC_SCALAR,
    DynamicPlan,
    FUSIBLE_UNARY_BUILTINS,
    Leaf,
    Node,
    TypedPlan,
    decode,
    match_dynamic,
    match_typed,
)
from repro.kernels.codegen import generate_source

__all__ = [
    "KERNEL_CACHE",
    "KernelCache",
    "CompiledKernel",
    "DESC_BOXED",
    "DESC_SCALAR",
    "DynamicPlan",
    "FUSIBLE_UNARY_BUILTINS",
    "Leaf",
    "Node",
    "TypedPlan",
    "decode",
    "match_dynamic",
    "match_typed",
    "generate_source",
]
