"""Process-wide content-addressed kernel cache.

Kernels are addressed by a SHA-256 digest of the canonical tree encoding
plus the operand descriptor vector (see :func:`repro.kernels.fusion.encode`)
and a format version, so two textually different expressions with the same
fused structure share one compiled function — across functions, sessions
and both consumers (JIT and interpreter).

Persistence: the JIT records every kernel a compiled object references in
``CompiledObject.kernel_sources``; the disk-backed
:class:`~repro.repository.cache.RepositoryCache` re-registers those
sources through :meth:`KernelCache.register_source` when it revives an
object in a fresh process, so ``rt.kernel_<hash>`` dispatch never misses
for disk-cached code.

Fault injection: the ``kernel.compile`` site fires inside
:meth:`get_or_compile` (a miss during JIT lowering then aborts that
compile, and the repository falls back to the interpreter); the
``kernel.run`` site is checked by the ``rt`` dispatch shim in
:mod:`repro.codegen.runtime_support`, where the guarded-deopt machinery
absorbs it.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

from repro.faults.plan import SITE_KERNEL_COMPILE
from repro.kernels.codegen import compile_kernel, generate_source
from repro.kernels.fusion import Node, encode

#: Bumped whenever generated kernel code changes shape — keys (and thus
#: the names embedded in persisted compiled objects) change with it.
KERNEL_FORMAT_VERSION = 1


@dataclass
class CompiledKernel:
    """One cached kernel: content key, source text, live function."""

    name: str
    key: str
    source: str
    fn: object


def kernel_name(key: str) -> str:
    digest = hashlib.sha256(
        f"v{KERNEL_FORMAT_VERSION}:{key}".encode()
    ).hexdigest()
    return f"kernel_{digest[:16]}"


class KernelCache:
    """Thread-safe name → :class:`CompiledKernel` map with hit counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._kernels: dict[str, CompiledKernel] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get_or_compile(
        self,
        root: Node,
        descs: tuple,
        fault_plan=None,
        obs=None,
    ) -> CompiledKernel:
        """Return the kernel for ``(root, descs)``, compiling on miss."""
        key = encode(root, descs)
        name = kernel_name(key)
        with self._lock:
            kernel = self._kernels.get(name)
            if kernel is not None:
                self.hits += 1
                hit = True
            else:
                self.misses += 1
                hit = False
        if obs is not None:
            obs.record_kernel_cache(hit)
        if hit:
            return kernel
        if fault_plan is not None:
            fault_plan.check(SITE_KERNEL_COMPILE, name)
        source = generate_source(name, root, descs)
        kernel = CompiledKernel(
            name=name, key=key, source=source, fn=compile_kernel(name, source)
        )
        with self._lock:
            # A racing compile of the same tree is harmless: both
            # functions are identical, first one in wins.
            kernel = self._kernels.setdefault(name, kernel)
        return kernel

    # ------------------------------------------------------------------
    def lookup(self, name: str) -> CompiledKernel | None:
        with self._lock:
            return self._kernels.get(name)

    def register_source(self, name: str, source: str) -> None:
        """Revive a kernel from persisted source (disk-cache load path)."""
        with self._lock:
            if name in self._kernels:
                return
        kernel = CompiledKernel(
            name=name, key="", source=source, fn=compile_kernel(name, source)
        )
        with self._lock:
            self._kernels.setdefault(name, kernel)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "kernels": len(self._kernels),
                "hits": self.hits,
                "misses": self.misses,
            }

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Testing hook: drop every kernel and reset counters."""
        with self._lock:
            self._kernels.clear()
            self.hits = 0
            self.misses = 0


#: The process-wide cache both consumers share.
KERNEL_CACHE = KernelCache()
