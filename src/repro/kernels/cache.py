"""Process-wide content-addressed kernel cache.

Kernels are addressed by a SHA-256 digest of the canonical tree encoding
plus the operand descriptor vector (see :func:`repro.kernels.fusion.encode`)
and a format version, so two textually different expressions with the same
fused structure share one compiled function — across functions, sessions
and both consumers (JIT and interpreter).

Persistence: the JIT records every kernel a compiled object references in
``CompiledObject.kernel_sources``; the disk-backed
:class:`~repro.repository.cache.RepositoryCache` re-registers those
sources through :meth:`KernelCache.register_source` when it revives an
object in a fresh process, so ``rt.kernel_<hash>`` dispatch never misses
for disk-cached code.

Fault injection: the ``kernel.compile`` site fires inside
:meth:`get_or_compile` (a miss during JIT lowering then aborts that
compile, and the repository falls back to the interpreter); the
``kernel.run`` site is checked by the ``rt`` dispatch shim in
:mod:`repro.codegen.runtime_support`, where the guarded-deopt machinery
absorbs it.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass

from repro.faults.plan import SITE_KERNEL_COMPILE
from repro.kernels.codegen import compile_kernel, generate_source
from repro.kernels.fusion import Node, encode

#: Bumped whenever generated kernel code changes shape — keys (and thus
#: the names embedded in persisted compiled objects) change with it.
KERNEL_FORMAT_VERSION = 1

#: Default bound on live kernels per cache.  Long fuzz runs mint an
#: unbounded stream of distinct trees; past this the least recently used
#: kernel is dropped (consumers memoize their own bindings, so an evicted
#: kernel keeps serving existing plans and simply recompiles on the next
#: cold lookup).  Overridable per process via
#: ``MAJIC_KERNEL_CACHE_CAPACITY``.
DEFAULT_KERNEL_CACHE_CAPACITY = 256


def _default_capacity() -> int:
    raw = os.environ.get("MAJIC_KERNEL_CACHE_CAPACITY", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_KERNEL_CACHE_CAPACITY
    return value if value > 0 else DEFAULT_KERNEL_CACHE_CAPACITY


@dataclass
class CompiledKernel:
    """One cached kernel: content key, source text, live function."""

    name: str
    key: str
    source: str
    fn: object


def kernel_name(key: str) -> str:
    digest = hashlib.sha256(
        f"v{KERNEL_FORMAT_VERSION}:{key}".encode()
    ).hexdigest()
    return f"kernel_{digest[:16]}"


class KernelCache:
    """Thread-safe name → :class:`CompiledKernel` map with hit counters.

    Bounded: at most ``capacity`` kernels stay live, in LRU order (a hit
    or lookup refreshes recency).  Eviction only drops the cache's own
    reference — live ``DynamicPlan.kernel`` memos and ``RuntimeSupport``
    instance bindings keep working, and the next cold lookup of the same
    tree simply recompiles (``evictions`` counts how often that tax was
    paid; sessions mirror it into ``majic_kernel_cache_evictions_total``).
    """

    def __init__(self, capacity: int | None = None):
        self._lock = threading.Lock()
        self._kernels: dict[str, CompiledKernel] = {}
        self.capacity = capacity if capacity else _default_capacity()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _touch(self, name: str, kernel: CompiledKernel) -> None:
        """Refresh LRU recency (dict preserves insertion order)."""
        del self._kernels[name]
        self._kernels[name] = kernel

    def _insert(self, name: str, kernel: CompiledKernel) -> tuple:
        """Insert under the lock; returns (winner, evicted_count)."""
        existing = self._kernels.get(name)
        if existing is not None:
            # A racing compile of the same tree is harmless: both
            # functions are identical, first one in wins.
            self._touch(name, existing)
            return existing, 0
        self._kernels[name] = kernel
        evicted = 0
        while len(self._kernels) > self.capacity:
            oldest = next(iter(self._kernels))
            del self._kernels[oldest]
            evicted += 1
        self.evictions += evicted
        return kernel, evicted

    # ------------------------------------------------------------------
    def get_or_compile(
        self,
        root: Node,
        descs: tuple,
        fault_plan=None,
        obs=None,
    ) -> CompiledKernel:
        """Return the kernel for ``(root, descs)``, compiling on miss."""
        key = encode(root, descs)
        name = kernel_name(key)
        with self._lock:
            kernel = self._kernels.get(name)
            if kernel is not None:
                self.hits += 1
                self._touch(name, kernel)
                hit = True
            else:
                self.misses += 1
                hit = False
        if obs is not None:
            obs.record_kernel_cache(hit)
        if hit:
            return kernel
        if fault_plan is not None:
            fault_plan.check(SITE_KERNEL_COMPILE, name)
        source = generate_source(name, root, descs)
        kernel = CompiledKernel(
            name=name, key=key, source=source, fn=compile_kernel(name, source)
        )
        with self._lock:
            kernel, evicted = self._insert(name, kernel)
        if obs is not None and evicted:
            obs.record_kernel_cache_eviction(evicted)
        return kernel

    # ------------------------------------------------------------------
    def lookup(self, name: str) -> CompiledKernel | None:
        with self._lock:
            kernel = self._kernels.get(name)
            if kernel is not None:
                self._touch(name, kernel)
            return kernel

    def register_source(self, name: str, source: str, key: str = "") -> None:
        """Revive a kernel from persisted source (disk-cache load path).

        ``key`` carries the canonical tree encoding when the persisting
        session recorded it (``CompiledObject.kernel_keys``); the native
        tier needs it to rebuild the tree, but revival works without it.
        """
        with self._lock:
            existing = self._kernels.get(name)
            if existing is not None:
                if key and not existing.key:
                    existing.key = key
                return
        kernel = CompiledKernel(
            name=name, key=key, source=source, fn=compile_kernel(name, source)
        )
        with self._lock:
            self._insert(name, kernel)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "kernels": len(self._kernels),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Testing hook: drop every kernel and reset counters."""
        with self._lock:
            self._kernels.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


#: The process-wide cache both consumers share.
KERNEL_CACHE = KernelCache()
