"""Error hierarchy and source locations for PyMaJIC.

Every user-visible failure raised by the front end, the analyses, the
compilers and the runtime derives from :class:`MatlabError`, mirroring the
single error channel the MATLAB interpreter exposes (``error(...)``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a MATLAB source file (1-based line and column)."""

    line: int = 0
    column: int = 0
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class MatlabError(Exception):
    """Base class for all errors surfaced to MaJIC users."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(MatlabError):
    """Raised by the scanner on malformed input text."""


class ParseError(MatlabError):
    """Raised by the parser on a syntactically invalid program."""


class AnalysisError(MatlabError):
    """Raised when a static analysis meets a program it cannot handle."""


class UndefinedSymbolError(MatlabError):
    """A symbol could not be resolved as variable, builtin or function."""


class TypeInferenceError(MatlabError):
    """Raised by the type-inference engine on internal inconsistencies."""


class CodegenError(MatlabError):
    """Raised by either code generator on unsupported constructs."""


class RuntimeMatlabError(MatlabError):
    """An error raised during execution of MATLAB code (``error(...)``,
    subscript violations, dimension mismatches, ...)."""


class SubscriptError(RuntimeMatlabError):
    """Index out of bounds, non-positive or non-integer subscript."""


class DimensionError(RuntimeMatlabError):
    """Operand shapes are not conformable for the attempted operation."""


class RepositoryError(MatlabError):
    """Raised by the code repository (missing function, bad invocation)."""
