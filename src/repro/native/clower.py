"""Fused-tree → C lowering.

The C kernels are the fourth execution tier; the Python fused kernels of
:mod:`repro.kernels.codegen` are their bit-identity reference, so the
lowering only admits operations whose C semantics over ``double`` are
IEEE-754-exact matches for the NumPy ufunc the Python kernel calls:

* ``+ - .* ./`` (and the scalar forms ``* /``) — plain IEEE arithmetic,
  compiled with reassociation and FMA contraction disabled;
* comparisons / logicals — branchless ``1.0``/``0.0`` doubles, exactly
  what ``astype(np.float64)`` produces (NaN compares false, counts as
  nonzero for ``&``/``|``, just like NumPy);
* ``u-  u~  abs  floor  ceil  conj`` — sign-bit / correctly-rounded ops;
* ``sqrt`` — correctly rounded by IEEE 754.  The *negative-domain* case
  widens to complex in MATLAB semantics, which C cannot replay: the
  kernel detects it (``x < 0.0``, false for NaN) and returns a nonzero
  status, and the dispatcher re-runs the Python kernel.

Everything else — ``.^``, ``exp``/``log``/trig — is **ineligible**: libm
and NumPy disagree in the last ulp on those, and "fast but off by one
bit" is exactly what the bit-identity contract forbids.

Operands arrive as ``(const double*, stride)`` pairs — stride 0 for a
scalar broadcast, 1 for a conforming contiguous array — plus plain
``double`` parameters for raw-scalar leaves, so one compiled kernel
serves every conforming shape.  The autotuner's source-level variant
knob is the unroll factor (see :func:`generate_c`).
"""

from __future__ import annotations

from repro.kernels.fusion import DESC_BOXED, DESC_SCALAR, Leaf, Node

#: Operators the native tier may lower (see module docstring for why the
#: transcendental tail of the fusible set is excluded).
NATIVE_BINOPS = {
    "+", "-", ".*", "./", "*", "/",
    "==", "~=", "<", "<=", ">", ">=", "&", "|",
}
NATIVE_UNARY = {"u-", "u~", "abs", "sqrt", "floor", "ceil", "conj"}

_CMP_C = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "~=": "!="}


def native_eligible(node) -> bool:
    """True when every operator in the tree has an exact C lowering."""
    if isinstance(node, Leaf):
        return True
    if len(node.children) == 2:
        if node.op not in NATIVE_BINOPS:
            return False
    elif node.op not in NATIVE_UNARY:
        return False
    return all(native_eligible(child) for child in node.children)


class _CEmitter:
    """Statement-per-node body emitter (mirrors the Python ``_Emitter``)."""

    def __init__(self, descs):
        self.descs = descs
        self.lines: list[str] = []
        self.counter = 0

    def fresh(self) -> str:
        name = f"t{self.counter}"
        self.counter += 1
        return name

    def emit(self, node) -> str:
        if isinstance(node, Leaf):
            if self.descs[node.index] == DESC_SCALAR:
                return f"c{node.index}"
            return f"x{node.index}"
        refs = [self.emit(child) for child in node.children]
        out = self.fresh()
        op = node.op
        lines = self.lines
        if len(refs) == 2:
            x, y = refs
            if op in ("+", "-"):
                lines.append(f"double {out} = {x} {op} {y};")
            elif op in (".*", "*"):
                lines.append(f"double {out} = {x} * {y};")
            elif op in ("./", "/"):
                lines.append(f"double {out} = {x} / {y};")
            elif op in _CMP_C:
                lines.append(
                    f"double {out} = ({x} {_CMP_C[op]} {y}) ? 1.0 : 0.0;"
                )
            elif op == "&":
                lines.append(
                    f"double {out} = ({x} != 0.0 && {y} != 0.0) ? 1.0 : 0.0;"
                )
            elif op == "|":
                lines.append(
                    f"double {out} = ({x} != 0.0 || {y} != 0.0) ? 1.0 : 0.0;"
                )
            else:
                raise ValueError(f"op {op!r} has no native lowering")
        else:
            x = refs[0]
            if op == "u-":
                lines.append(f"double {out} = -({x});")
            elif op == "u~":
                lines.append(f"double {out} = ({x} == 0.0) ? 1.0 : 0.0;")
            elif op == "abs":
                lines.append(f"double {out} = fabs({x});")
            elif op == "sqrt":
                # MATLAB widens to complex for any negative element; the
                # whole array changes dtype, so the kernel must abandon
                # the run entirely.  NaN is not < 0 and passes through.
                lines.append(f"if ({x} < 0.0) return 1;")
                lines.append(f"double {out} = sqrt({x});")
            elif op == "floor":
                lines.append(f"double {out} = floor({x});")
            elif op == "ceil":
                lines.append(f"double {out} = ceil({x});")
            elif op == "conj":
                # Real data only (the dispatch guard rejects complex).
                lines.append(f"double {out} = {x};")
            else:
                raise ValueError(f"op {op!r} has no native lowering")
        return out


def c_signature(name: str, descs) -> str:
    """The kernel's C prototype (mirrored by the ctypes binding)."""
    params = ["long n"]
    for index, desc in enumerate(descs):
        if desc == DESC_BOXED:
            params.append(f"const double* v{index}")
            params.append(f"long s{index}")
        else:
            params.append(f"double c{index}")
    params.append("double* out")
    return f"int {name}({', '.join(params)})"


def generate_c(name: str, root: Node, descs, unroll: int = 1) -> str:
    """C source for one fused kernel.

    ``unroll`` > 1 repeats the (brace-scoped) element body that many
    times per iteration with a scalar remainder loop — the autotuner's
    source-level variant.  Returns 0 on success, nonzero when the run
    must be abandoned to the Python kernel (sqrt negative-domain).
    """
    if not native_eligible(root):
        raise ValueError("tree contains natively ineligible operators")
    emitter = _CEmitter(descs)
    result = emitter.emit(root)
    body: list[str] = [f"long j = {{index}};"]
    for index, desc in enumerate(descs):
        if desc == DESC_BOXED:
            body.append(f"double x{index} = v{index}[j * s{index}];")
    body.extend(emitter.lines)
    body.append(f"out[j] = {result};")

    def block(index_expr: str, pad: str) -> str:
        lines = [pad + "{"]
        for line in body:
            lines.append(pad + "    " + line.format(index=index_expr))
        lines.append(pad + "}")
        return "\n".join(lines)

    out = [
        "#include <math.h>",
        "",
        c_signature(name, descs) + " {",
        "    long i = 0;",
    ]
    if unroll > 1:
        out.append(f"    for (; i + {unroll} <= n; i += {unroll}) {{")
        for k in range(unroll):
            out.append(block(f"i + {k}", "        "))
        out.append("    }")
    out.append("    for (; i < n; ++i) {")
    out.append(block("i", "        "))
    out.append("    }")
    out.append("    return 0;")
    out.append("}")
    return "\n".join(out) + "\n"


#: The autotuned variant menu: (tag, unroll factor, extra flags).  All
#: variants share :data:`~repro.native.toolchain.SAFETY_FLAGS`, so every
#: one is bit-identical — the tuner only picks the fastest, never a
#: different answer.
VARIANTS = (
    ("base", 1, ("-O2",)),
    ("unroll4", 4, ("-O2",)),
    ("o3", 1, ("-O3",)),
)
