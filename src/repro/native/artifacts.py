"""Content-addressed on-disk store for native kernel artifacts.

One artifact is a ``<key>.so`` shared object plus a ``<key>.json`` meta
record.  The key is a SHA-256 over everything that could change the
machine code:

* the native format version (this module's layout / lowering scheme);
* the kernel's canonical tree encoding (which embeds the operand
  descriptor vector — and, via the dispatch guard, fixes the dtype to
  ``float64``);
* the toolchain identity (compiler name + exact version banner);
* the shared safety flag set.

The autotuner's *winning* variant and flags are recorded in the meta —
they are an output of the first compile, not an input to the key, which
is what lets a warm session find the artifact before knowing the winner.

Integrity: the meta stores the ``.so``'s SHA-256; a load whose bytes
disagree (bit rot, torn write, a truncated copy) **quarantines** the key
— both files are deleted, the key is remembered so repeated probes
short-circuit, and the caller recompiles.  A later successful
:meth:`store` of the same key lifts the quarantine, mirroring the
self-healing :class:`~repro.repository.cache.RepositoryCache`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path

from repro.native.toolchain import SAFETY_FLAGS

#: Bumped whenever the C lowering or the artifact layout changes shape.
NATIVE_FORMAT_VERSION = 1

#: Default artifact directory when the session has no repository cache.
DEFAULT_NATIVE_DIR = "~/.pymajic/native"


def artifact_key(kernel_key: str, toolchain_ident: str) -> str:
    """The content address of one native kernel build."""
    digest = hashlib.sha256()
    for part in (
        f"native-v{NATIVE_FORMAT_VERSION}",
        kernel_key,
        toolchain_ident,
        " ".join(SAFETY_FLAGS),
    ):
        digest.update(part.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


class NativeArtifactStore:
    """One directory of ``.so`` + meta pairs, with quarantine healing."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(os.path.expanduser(os.fspath(directory)))
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._quarantined: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corruption_detected = 0

    # ------------------------------------------------------------------
    def _so_path(self, key: str) -> Path:
        return self.directory / f"{key}.so"

    def _meta_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    @property
    def quarantined_keys(self) -> set[str]:
        with self._lock:
            return set(self._quarantined)

    # ------------------------------------------------------------------
    def load(self, key: str) -> tuple[Path, dict] | None:
        """Return ``(so_path, meta)`` for a verified artifact, or ``None``.

        Any inconsistency — missing file, unparseable meta, digest
        mismatch — quarantines the key and reads as a miss.
        """
        with self._lock:
            if key in self._quarantined:
                self.misses += 1
                return None
        so_path = self._so_path(key)
        meta_path = self._meta_path(key)
        try:
            meta = json.loads(meta_path.read_text())
            so_bytes = so_path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (OSError, ValueError):
            self._quarantine(key)
            return None
        digest = hashlib.sha256(so_bytes).hexdigest()
        if not isinstance(meta, dict) or meta.get("so_sha256") != digest:
            self._quarantine(key)
            return None
        with self._lock:
            self.hits += 1
        return so_path, meta

    def store(self, key: str, so_bytes: bytes, meta: dict) -> Path | None:
        """Persist one artifact atomically; returns the final ``.so``
        path (``None`` on IO failure — persistence is best-effort)."""
        meta = dict(meta)
        meta["so_sha256"] = hashlib.sha256(so_bytes).hexdigest()
        meta["format"] = NATIVE_FORMAT_VERSION
        try:
            so_path = self._write_atomic(self._so_path(key), so_bytes)
            self._write_atomic(
                self._meta_path(key),
                json.dumps(meta, indent=1, sort_keys=True).encode("ascii"),
            )
        except OSError:
            return None
        with self._lock:
            self.stores += 1
            self._quarantined.discard(key)
        return so_path

    def _write_atomic(self, path: Path, payload: bytes) -> Path:
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=path.suffix
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
            return path
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _quarantine(self, key: str) -> None:
        with self._lock:
            self.misses += 1
            self.corruption_detected += 1
            self._quarantined.add(key)
        for path in (self._so_path(key), self._meta_path(key)):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def evict(self, key: str) -> bool:
        """Remove one artifact (a crashing ``.so`` must not resurrect)."""
        removed = False
        for path in (self._so_path(key), self._meta_path(key)):
            try:
                path.unlink()
                removed = True
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.so"))

    def stats(self) -> dict:
        with self._lock:
            return {
                "artifacts": len(self),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corruption_detected": self.corruption_detected,
            }
