"""The native execution tier: compile, autotune, cache, dispatch, fall back.

A :class:`NativeEngine` sits *in front of* the Python fused kernels: both
consumers (the interpreter's fused fast path and the ``rt.kernel_<hash>``
dispatch in generated code) offer it every fused-kernel call, and it
either serves the call from a loaded ``.so`` or returns ``None`` — in
which case the caller runs the Python kernel exactly as before.  Every
possible native failure (no toolchain, ineligible tree, compile error,
corrupt artifact, load fault, guard mismatch, sqrt domain widening, a
fault injected at any ``native.*`` site) lands on that same ``None``
path, which is what makes the tier safe: the fallback *is* the
bit-identity reference.

Lifecycle of one kernel:

1. Dispatches count hotness; at ``hot_threshold`` the kernel is queued
   for an out-of-band compile (the session wires ``submit`` to the
   ``SpeculationEngine`` worker pool so the foreground never blocks;
   ``sync=True`` compiles inline for deterministic tests).
2. The compile decodes the canonical key back into a tree, checks
   eligibility, and probes the content-addressed artifact store — a warm
   session loads the previously autotuned ``.so`` and compiles nothing.
3. On a cold miss the autotuner builds the 2–3 variants of
   :data:`~repro.native.clower.VARIANTS` (all bit-identical by
   construction), times them on synthetic data, persists the winner's
   ``.so`` and flags, and loads it.
4. Before first in-process use the fresh ``.so`` runs once in a forked
   trial child (``policy.native_trial``): a crashing artifact kills the
   fork, is evicted from the store, and the kernel is marked failed.
5. Ready dispatches revalidate operands per call (float64, conforming
   shapes, real scalars) and fall back on any mismatch — a shape error
   must surface from the Python kernel with its exact message.
"""

from __future__ import annotations

import ctypes
import os
import signal
import tempfile
import threading
import time

import numpy as np

from repro.faults.plan import (
    SITE_NATIVE_COMPILE,
    SITE_NATIVE_LOAD,
    SITE_NATIVE_RUN,
)
from repro.kernels.codegen import _scal
from repro.kernels.fusion import DESC_BOXED, decode
from repro.native.artifacts import NativeArtifactStore, artifact_key
from repro.native.clower import VARIANTS, generate_c, native_eligible
from repro.native.toolchain import Toolchain, detect_toolchain
from repro.obs import DISABLED as DISABLED_OBS
from repro.runtime.mxarray import IntrinsicClass, MxArray
from repro.runtime.values import from_ndarray

#: Operators whose result is logical (mirrors the Python codegen).
from repro.kernels.codegen import _BOOL_OPS

#: How many consecutive run failures demote a ready kernel to failed.
MAX_RUN_STRIKES = 3

#: Element count and repetitions for the autotune timing loop.
AUTOTUNE_N = 4096
AUTOTUNE_REPS = 5

#: Default size cutoff for native dispatch.  Measured on the qmr-style
#: AXPY chain: below ~8k elements the per-call overhead (operand guard,
#: ctypes marshalling, result boxing) exceeds what the single-pass loop
#: saves over numpy, and the Python kernel wins; by 16k the native
#: kernel is ~3x faster (no temporaries, one traversal).
DEFAULT_MIN_ELEMS = 8192


class _ReadyKernel:
    """One loaded native kernel, ready to dispatch."""

    __slots__ = (
        "name", "key", "descs", "bool_root", "cfn", "lib",
        "variant", "flags", "artifact", "strikes",
    )

    def __init__(self, name, key, descs, bool_root, cfn, lib,
                 variant, flags, artifact):
        self.name = name
        self.key = key
        self.descs = descs
        self.bool_root = bool_root
        self.cfn = cfn
        self.lib = lib          # keep the CDLL alive with the binding
        self.variant = variant
        self.flags = flags
        self.artifact = artifact
        self.strikes = 0


class NativeEngine:
    """Per-session native tier: state machine + dispatcher."""

    def __init__(
        self,
        toolchain: Toolchain | None = None,
        store: NativeArtifactStore | None = None,
        fault_plan=None,
        obs=None,
        policy=None,
        submit=None,
        sync: bool = False,
        hot_threshold: int = 2,
        min_elems: int | None = None,
        probe: bool = True,
        hotness=None,
    ):
        if toolchain is None and probe:
            toolchain = detect_toolchain()
        if policy is None:
            from repro.resilience import DEFAULT_POLICY

            policy = DEFAULT_POLICY
        self.toolchain = toolchain
        self.store = store
        self.fault_plan = fault_plan
        self.obs = obs if obs is not None else DISABLED_OBS
        self.policy = policy
        self.submit = submit
        self.sync = sync
        self.hot_threshold = max(1, int(hot_threshold))
        # Below this element count the per-call dispatch overhead (guard
        # + ctypes marshal + boxing) outweighs the single-pass loop and
        # the Python kernel is simply faster; such calls opt out early.
        self.min_elems = max(
            1, int(DEFAULT_MIN_ELEMS if min_elems is None else min_elems)
        )
        self.enabled = toolchain is not None
        self._lock = threading.Lock()
        #: kernel name -> "queued" | "ready" | "failed" | "ineligible"
        self._state: dict[str, str] = {}
        self._ready: dict[str, _ReadyKernel] = {}
        # Per-kernel dispatch hotness.  The session passes the adaptive
        # controller's shared kernel counter here (repro.tiering); a
        # standalone engine builds a private one with no decay horizon
        # worth tuning (the old ad-hoc dict behaved the same way).
        if hotness is None:
            from repro.tiering.hotness import HotnessCounter

            hotness = HotnessCounter()
        self.hotness = hotness
        # Outcome tallies (tests, the bench script and the harness read
        # these; "cached" loads in a warm session must be > 0 with zero
        # "compiled" for the warm-start acceptance gate).
        self.counts = {
            "compiled": 0, "cached": 0, "failed": 0,
            "ineligible": 0, "runs": 0, "fallbacks": 0,
        }
        self.errors: list[tuple[str, str]] = []
        # Hot-path switch: only check the native.run site when a spec
        # actually addresses it (plan.check takes a lock).
        self._run_fault = fault_plan is not None and any(
            spec.site == SITE_NATIVE_RUN for spec in fault_plan.specs
        )

    # ------------------------------------------------------------------
    # Dispatch (both consumers call this per fused-kernel invocation)
    # ------------------------------------------------------------------
    def dispatch(self, kernel, args):
        """Serve one fused-kernel call natively, or return ``None``.

        ``kernel`` is the :class:`~repro.kernels.cache.CompiledKernel`
        the Python tier would run; ``args`` its operands (boxed MxArrays
        and raw scalars, per the kernel's descriptor vector).
        """
        if not self.enabled:
            return None
        name = kernel.name
        record = self._ready.get(name)
        if record is not None:
            return self._run(record, args)
        if self._first_size(args) < self.min_elems:
            # Too small to ever pay off — don't even heat the counter,
            # so perpetually-tiny kernels cost no compile.
            return None
        with self._lock:
            state = self._state.get(name)
            if state is not None:
                return None
        count = self.hotness.record(name)
        with self._lock:
            if self._state.get(name) is not None:
                return None
            if count < self.hot_threshold or not kernel.key:
                return None
            self._state[name] = "queued"
        self._schedule(name, kernel.key)
        return None

    def _schedule(self, name: str, key: str) -> None:
        if self.sync or self.submit is None:
            self.compile_now(name, key)
            return
        try:
            queued = self.submit(
                lambda: self.compile_now(name, key), f"native:{name}"
            )
        except Exception:
            queued = False
        if not queued:
            # A dead/degraded worker pool must not lose the kernel: the
            # tier just compiles inline, once, on this (cold) dispatch.
            self.compile_now(name, key)

    # ------------------------------------------------------------------
    # Compilation (out-of-band; only ``sync`` sessions run it inline)
    # ------------------------------------------------------------------
    def compile_now(self, name: str, key: str) -> bool:
        """Build-or-revive one kernel; returns True when it went ready."""
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._compile_raw(name, key)
        with tracer.span(name, "native-compile", function=name):
            return self._compile_raw(name, key)

    def _compile_raw(self, name: str, key: str) -> bool:
        try:
            if self.fault_plan is not None:
                self.fault_plan.check(SITE_NATIVE_COMPILE, name)
            root, descs = decode(key)
            if not native_eligible(root):
                self._finish(name, "ineligible")
                return False
            akey = artifact_key(key, self.toolchain.ident)
            bool_root = root.op in _BOOL_OPS
            cached = self.store.load(akey) if self.store is not None else None
            if cached is not None:
                so_path, meta = cached
                record = self._load(
                    name, key, descs, bool_root, os.fspath(so_path),
                    meta.get("variant", "?"),
                    tuple(meta.get("flags", ())), akey, fresh=False,
                )
                self._go_ready(name, record, "cached")
                return True
            so_path, variant, flags = self._autotune(name, key, root, descs, akey)
            record = self._load(
                name, key, descs, bool_root, so_path, variant, flags, akey,
                fresh=True,
            )
            self._go_ready(name, record, "compiled")
            return True
        except Exception as exc:  # noqa: BLE001 - every failure is a fallback
            self._finish(name, "failed")
            self.errors.append((name, repr(exc)))
            return False

    def _go_ready(self, name: str, record: _ReadyKernel, result: str) -> None:
        with self._lock:
            self._ready[name] = record
            self._state[name] = "ready"
            self.counts[result] += 1
        self.obs.record_native_compile(result)

    def _finish(self, name: str, state: str) -> None:
        with self._lock:
            self._state[name] = state
            self.counts[state] += 1
        self.obs.record_native_compile(state)

    # ------------------------------------------------------------------
    def _autotune(self, name, key, root, descs, akey):
        """Build every variant, time them, persist and return the winner.

        All variants are bit-identical by construction (shared IEEE
        safety flags), so the tuner is free to pick purely on speed.
        """
        deadline = self.policy.native_compile_deadline
        with tempfile.TemporaryDirectory(prefix="majic-native-") as tmp:
            candidates = []
            for tag, unroll, flags in VARIANTS:
                c_path = os.path.join(tmp, f"{name}-{tag}.c")
                so_path = os.path.join(tmp, f"{name}-{tag}.so")
                with open(c_path, "w") as handle:
                    handle.write(generate_c(name, root, descs, unroll=unroll))
                try:
                    self.toolchain.compile_shared(
                        c_path, so_path, flags=flags, timeout=deadline
                    )
                except Exception as exc:  # noqa: BLE001 - variant-local failure
                    from repro.native.toolchain import CompileTimeout

                    if isinstance(exc, CompileTimeout):
                        self.obs.record_watchdog_timeout("native-compile")
                    continue
                candidates.append((tag, flags, so_path))
            if not candidates:
                raise RuntimeError(f"all native variants failed for {name}")
            winner_tag, winner_flags, winner_so, timings = self._pick(
                name, descs, candidates
            )
            so_bytes = open(winner_so, "rb").read()
            stored = None
            if self.store is not None:
                stored = self.store.store(akey, so_bytes, {
                    "kernel": name,
                    "kernel_key": key,
                    "toolchain": self.toolchain.ident,
                    "variant": winner_tag,
                    "flags": list(winner_flags),
                    "timings": timings,
                })
            if stored is not None:
                return os.fspath(stored), winner_tag, winner_flags
            # No store (or store IO failure): load from a private copy
            # that outlives the temporary directory.
            fd, keep = tempfile.mkstemp(prefix=f"majic-{name}-", suffix=".so")
            with os.fdopen(fd, "wb") as handle:
                handle.write(so_bytes)
            return keep, winner_tag, winner_flags

    def _pick(self, name, descs, candidates):
        """Time each candidate ``.so`` on synthetic data; return the best."""
        args_np, out = self._synthetic_args(descs, AUTOTUNE_N)
        timings = {}
        best = None
        for tag, flags, so_path in candidates:
            try:
                lib = ctypes.CDLL(so_path)
                cfn = self._bind(lib, name, descs)
            except OSError:
                continue
            argv = self._argv(descs, args_np, AUTOTUNE_N, out)
            elapsed = float("inf")
            for _ in range(AUTOTUNE_REPS):
                start = time.perf_counter()
                status = cfn(*argv)
                elapsed = min(elapsed, time.perf_counter() - start)
                if status != 0:
                    elapsed = float("inf")
                    break
            timings[tag] = None if elapsed == float("inf") else elapsed
            if best is None or elapsed < best[0]:
                best = (elapsed, tag, flags, so_path)
        if best is None or best[0] == float("inf"):
            raise RuntimeError(f"no native variant of {name} survived tuning")
        return best[1], best[2], best[3], timings

    @staticmethod
    def _synthetic_args(descs, n):
        """Positive operand data (keeps sqrt in-domain during tuning)."""
        rng = np.random.default_rng(12345)
        args = []
        for desc in descs:
            if desc == DESC_BOXED:
                args.append(
                    np.ascontiguousarray(rng.uniform(0.5, 1.5, size=(1, n)))
                )
            else:
                args.append(1.25)
        return args, np.empty((1, n), dtype=np.float64)

    @staticmethod
    def _argv(descs, args_np, n, out):
        argv = [n]
        for desc, value in zip(descs, args_np):
            if desc == DESC_BOXED:
                argv.append(value.ctypes.data)
                argv.append(0 if value.size == 1 else 1)
            else:
                argv.append(value)
        argv.append(out.ctypes.data)
        return argv

    @staticmethod
    def _bind(lib, name, descs):
        """Bind with ``c_void_p`` pointer slots so the per-call argv is
        plain ints/floats (``ndarray.ctypes.data``) — building ctypes
        pointer objects per dispatch costs more than small kernels do."""
        cfn = getattr(lib, name)
        argtypes = [ctypes.c_long]
        for desc in descs:
            if desc == DESC_BOXED:
                argtypes.extend((ctypes.c_void_p, ctypes.c_long))
            else:
                argtypes.append(ctypes.c_double)
        argtypes.append(ctypes.c_void_p)
        cfn.argtypes = argtypes
        cfn.restype = ctypes.c_int
        return cfn

    # ------------------------------------------------------------------
    def _load(self, name, key, descs, bool_root, so_path, variant, flags,
              akey, fresh: bool) -> _ReadyKernel:
        """dlopen + bind + (for fresh artifacts) the forked trial run."""
        if self.fault_plan is not None:
            self.fault_plan.check(SITE_NATIVE_LOAD, name)
        try:
            lib = ctypes.CDLL(so_path)
            cfn = self._bind(lib, name, descs)
        except (OSError, AttributeError) as exc:
            # A cached artifact that no longer loads is quarantined so
            # the next session recompiles instead of tripping again.
            if self.store is not None:
                self.store.evict(akey)
            raise RuntimeError(f"native load of {name} failed: {exc}") from exc
        if fresh:
            self._trial(name, cfn, descs, akey)
        return _ReadyKernel(
            name, key, descs, bool_root, cfn, lib, variant, flags, akey
        )

    def _trial(self, name, cfn, descs, akey) -> None:
        """Sandbox the first run of a fresh ``.so`` in a forked child."""
        if not self.policy.native_trial or not hasattr(os, "fork"):
            return
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                args_np, out = self._synthetic_args(descs, 8)
                status = cfn(*self._argv(descs, args_np, 8, out))
                if status in (0, 1) and np.all(np.isfinite(out) | np.isnan(out)):
                    code = 0
            except BaseException:
                code = 1
            os._exit(code)
        deadline = time.monotonic() + self.policy.sandbox_timeout
        while True:
            done, status = os.waitpid(pid, os.WNOHANG)
            if done:
                break
            if time.monotonic() > deadline:
                try:
                    os.kill(pid, signal.SIGKILL)
                    os.waitpid(pid, 0)
                except OSError:
                    pass
                if self.store is not None:
                    self.store.evict(akey)
                raise RuntimeError(f"native trial of {name} timed out")
            time.sleep(0.001)
        if not (os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0):
            if self.store is not None:
                self.store.evict(akey)
            raise RuntimeError(
                f"native trial of {name} died (wait status {status})"
            )

    # ------------------------------------------------------------------
    # The ready-path run: guard, call, box — or fall back
    # ------------------------------------------------------------------
    def _run(self, record, args):
        try:
            if self._run_fault:
                self.fault_plan.check(SITE_NATIVE_RUN, record.name)
            if self._first_size(args) < self.min_elems:
                self.counts["fallbacks"] += 1
                self.obs.record_native_fallback("small")
                return None
            prepared = self._prepare(record.descs, args)
            if prepared is None:
                self.counts["fallbacks"] += 1
                self.obs.record_native_fallback("guard")
                return None
            buffers, shape = prepared
            n = shape[0] * shape[1]
            out = np.empty(shape, dtype=np.float64)
            argv = [n]
            for kind, value, stride in buffers:
                if kind == "b":
                    argv.append(value.ctypes.data)
                    argv.append(stride)
                else:
                    argv.append(value)
            argv.append(out.ctypes.data)
            if self.obs.metrics.enabled:
                start = time.perf_counter()
                status = record.cfn(*argv)
                self.obs.record_native_run(
                    record.name, time.perf_counter() - start
                )
            else:
                status = record.cfn(*argv)
            if status != 0:
                # sqrt negative-domain: MATLAB widens the whole result to
                # complex; only the Python kernel replays that.
                self.counts["fallbacks"] += 1
                self.obs.record_native_fallback("domain")
                return None
            record.strikes = 0
            self.counts["runs"] += 1
            boxed = from_ndarray(out)
            if record.bool_root:
                boxed.klass = IntrinsicClass.BOOL
            return boxed
        except Exception:  # noqa: BLE001 - any native defect is a fallback
            self.counts["fallbacks"] += 1
            self.obs.record_native_fallback("run_fault")
            record.strikes += 1
            if record.strikes >= MAX_RUN_STRIKES:
                with self._lock:
                    self._ready.pop(record.name, None)
                    self._state[record.name] = "failed"
                if self.store is not None:
                    self.store.evict(record.artifact)
            return None

    @staticmethod
    def _first_size(args):
        """Element count of the first array operand (the result size for
        conforming calls) — the cheap pre-guard for the size cutoff."""
        for value in args:
            if isinstance(value, MxArray) and not value.is_scalar:
                return value.view().size
        return 0

    @staticmethod
    def _prepare(descs, args):
        """Per-call operand validation; ``None`` falls back to Python.

        Native kernels only handle real float64 data with conforming
        (equal or scalar-broadcast) shapes; anything else — complex,
        strings, shape mismatches (which must raise the Python kernel's
        exact DimensionError), all-scalar trees — is not served natively.
        """
        if len(args) != len(descs):
            return None
        shape = None
        buffers = []
        for desc, value in zip(descs, args):
            if desc == DESC_BOXED:
                if not isinstance(value, MxArray) or value.is_string:
                    return None
                view = value.view()
                if view.dtype != np.float64:
                    return None
                if not view.flags.c_contiguous:
                    view = np.ascontiguousarray(view)
                if value.is_scalar:
                    buffers.append(("b", view, 0))
                else:
                    if shape is None:
                        shape = view.shape
                    elif view.shape != shape:
                        return None
                    buffers.append(("b", view, 1))
            else:
                if isinstance(value, MxArray):
                    return None
                scal = _scal(value)
                if isinstance(scal, complex):
                    return None
                buffers.append(("s", scal, None))
        if shape is None:
            return None
        return buffers, shape

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            summary = dict(self.counts)
        summary["enabled"] = self.enabled
        summary["toolchain"] = (
            self.toolchain.ident if self.toolchain is not None else None
        )
        summary["ready"] = len(self._ready)
        if self.store is not None:
            summary["store"] = self.store.stats()
        return summary
