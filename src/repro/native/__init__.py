"""The native (C) execution tier.

MaJIC's fourth tier: fused elementwise kernel trees — the compute cores
of the hottest JIT functions and interpreter expressions — are lowered
to C, compiled out-of-band by a detected toolchain, autotuned over a
small variant menu, cached content-addressed on disk, loaded through
``ctypes``, and dispatched in front of the Python fused kernels behind
the existing guarded-deopt chain.  No toolchain, an ineligible tree, or
any compile/load/run fault simply leaves the Python kernels serving the
call bit-identically.

Layout:

* :mod:`repro.native.toolchain` — compiler probe + watchdogged invocation;
* :mod:`repro.native.clower` — fused tree → C lowering (IEEE-exact subset);
* :mod:`repro.native.artifacts` — content-addressed ``.so`` store with
  digest verification and quarantine healing;
* :mod:`repro.native.engine` — hotness promotion, autotune loop, forked
  first-run trial, and the guarded per-call dispatcher.
"""

from repro.native.artifacts import (
    DEFAULT_NATIVE_DIR,
    NATIVE_FORMAT_VERSION,
    NativeArtifactStore,
    artifact_key,
)
from repro.native.clower import (
    NATIVE_BINOPS,
    NATIVE_UNARY,
    VARIANTS,
    generate_c,
    native_eligible,
)
from repro.native.engine import DEFAULT_MIN_ELEMS, NativeEngine
from repro.native.toolchain import (
    CompileError,
    CompileTimeout,
    Toolchain,
    detect_toolchain,
)

__all__ = [
    "CompileError",
    "CompileTimeout",
    "DEFAULT_MIN_ELEMS",
    "DEFAULT_NATIVE_DIR",
    "NATIVE_BINOPS",
    "NATIVE_FORMAT_VERSION",
    "NATIVE_UNARY",
    "NativeArtifactStore",
    "NativeEngine",
    "Toolchain",
    "VARIANTS",
    "artifact_key",
    "detect_toolchain",
    "generate_c",
    "native_eligible",
]
