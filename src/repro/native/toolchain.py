"""C toolchain detection and invocation.

The native tier never assumes a compiler exists: :func:`detect_toolchain`
probes the conventional spellings (``cc``, ``gcc``, ``clang``) plus the
``MAJIC_CC`` override, captures the version banner (part of the artifact
cache key — a compiler upgrade silently invalidates old ``.so``\\ s), and
returns ``None`` on a machine with no toolchain, which disables the tier
without disabling anything else.

Compiles run in a child process with a hard timeout
(``ResiliencePolicy.native_compile_deadline``) — the watchdog for work
that cannot be cancelled by in-process exception injection.  Every
invocation carries :data:`SAFETY_FLAGS`: the fused Python kernels are the
bit-identity reference, so the C side must stay plain IEEE-754 — no
reassociation, no FMA contraction, no errno-driven libm wrappers.
"""

from __future__ import annotations

import os
import shutil
import subprocess
from dataclasses import dataclass

#: Flags present on every variant: IEEE-754-exact code generation.
#: ``-fno-fast-math`` forbids value-changing reassociation,
#: ``-ffp-contract=off`` forbids fusing ``a*b+c`` into an FMA (a different
#: rounding), ``-fno-math-errno`` merely lets ``sqrt`` lower to the
#: (correctly rounded) hardware instruction.
SAFETY_FLAGS = ("-fno-fast-math", "-ffp-contract=off", "-fno-math-errno")

#: Probe order when ``MAJIC_CC`` names nothing.
DEFAULT_CANDIDATES = ("cc", "gcc", "clang")

#: Environment kill switch: set to force the no-toolchain path (tests and
#: CI assert graceful degradation through this).
DISABLE_ENV = "MAJIC_NATIVE_DISABLE"


class CompileError(Exception):
    """A toolchain invocation failed (bad exit, timeout, missing output)."""


class CompileTimeout(CompileError):
    """The compile child overran its watchdog deadline and was killed."""


@dataclass(frozen=True)
class Toolchain:
    """One usable C compiler: absolute path plus its version banner."""

    path: str
    name: str
    version: str

    @property
    def ident(self) -> str:
        """The cache-key component: compiler name + exact version line."""
        return f"{self.name} {self.version}"

    # ------------------------------------------------------------------
    def compile_shared(
        self,
        c_path: str,
        so_path: str,
        flags: tuple[str, ...] = (),
        timeout: float | None = 60.0,
    ) -> None:
        """Compile one C file into a shared object; raise on any failure."""
        command = [
            self.path, "-shared", "-fPIC", *SAFETY_FLAGS, *flags,
            "-o", so_path, c_path, "-lm",
        ]
        try:
            proc = subprocess.run(
                command,
                capture_output=True,
                text=True,
                timeout=timeout,
            )
        except subprocess.TimeoutExpired as exc:
            raise CompileTimeout(
                f"native compile overran its {timeout}s deadline"
            ) from exc
        except OSError as exc:
            raise CompileError(f"cannot invoke {self.path}: {exc}") from exc
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()[:2000]
            raise CompileError(
                f"{self.name} exited {proc.returncode}: {detail}"
            )
        if not os.path.exists(so_path):
            raise CompileError(f"{self.name} produced no output at {so_path}")


def _probe(candidate: str) -> Toolchain | None:
    path = shutil.which(candidate)
    if path is None:
        return None
    try:
        proc = subprocess.run(
            [path, "--version"], capture_output=True, text=True, timeout=10
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    banner = (proc.stdout or proc.stderr or "").splitlines()
    version = banner[0].strip() if banner else "unknown"
    return Toolchain(path=path, name=os.path.basename(candidate), version=version)


def detect_toolchain(candidates=None) -> Toolchain | None:
    """Find a working C compiler, or ``None`` (the tier then stays off).

    ``MAJIC_CC`` overrides the probe order entirely;
    ``MAJIC_NATIVE_DISABLE`` (non-empty) forces ``None`` regardless.
    """
    if os.environ.get(DISABLE_ENV):
        return None
    override = os.environ.get("MAJIC_CC")
    if candidates is None:
        candidates = (override,) if override else DEFAULT_CANDIDATES
    for candidate in candidates:
        toolchain = _probe(candidate)
        if toolchain is not None:
            return toolchain
    return None
