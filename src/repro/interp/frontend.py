"""The MaJIC front end (Section 2).

Users interact with a MATLAB-compatible interpreter that executes top-level
code at roughly interpreter speed, but *defers computationally complex
tasks — function calls — to the code repository*: the front end builds an
:class:`Invocation` (function name + parameter values) and hands it to the
repository, which locates or compiles suitable code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.interp.environment import Environment
from repro.interp.interpreter import Interpreter
from repro.runtime.display import OutputSink
from repro.runtime.mxarray import MxArray
from repro.typesys.signature import Signature, signature_of_values


@dataclass
class Invocation:
    """A deferred function call passed from the front end to the
    repository (Section 2: "an invocation containing the name of a MATLAB
    function and the values of the parameters")."""

    name: str
    args: list[MxArray] = field(default_factory=list)
    nargout: int = 1

    @property
    def signature(self) -> Signature:
        return signature_of_values(self.args)


class MajicFrontEnd:
    """Interactive front end: interprets top-level code, defers calls."""

    def __init__(self, repository, sink: OutputSink | None = None):
        self.repository = repository
        self.sink = sink if sink is not None else OutputSink()
        self.workspace = Environment()
        self.interpreter = Interpreter(
            function_lookup=self._lookup_source,
            sink=self.sink,
            call_dispatcher=self._dispatch,
        )

    # ------------------------------------------------------------------
    def eval(self, text: str) -> None:
        """Execute one chunk of top-level MATLAB code."""
        program = parse(text)
        if not program.is_script:
            raise ValueError(
                "function definitions belong in files on the path; "
                "use repository.add_source/add_path"
            )
        self.interpreter.run_statements(program.script, self.workspace)

    def call(self, name: str, args: list[MxArray], nargout: int = 1):
        """Invoke a function by name through the repository."""
        invocation = Invocation(name=name, args=list(args), nargout=nargout)
        return self.repository.execute(invocation)

    # ------------------------------------------------------------------
    def _dispatch(self, name: str, args: list[MxArray], nargout: int):
        """Front-end deferral hook: route user calls to the repository."""
        if self.repository is None or not self.repository.knows(name):
            return None
        invocation = Invocation(name=name, args=args, nargout=nargout)
        return self.repository.execute(invocation)

    def _lookup_source(self, name: str) -> ast.FunctionDef | None:
        if self.repository is None:
            return None
        return self.repository.lookup_function(name)
