"""The MATLAB interpreter — the paper's execution baseline.

A straightforward tree walker over boxed MxArray values.  Every operation
dispatches dynamically through the generic :mod:`repro.runtime.elementwise`
layer, every subscript is checked, every assignment copies — the costs weak
typing imposes and that MaJIC's compiled code removes.

Symbol resolution follows Section 2.1's dynamic rule exactly: a symbol is a
variable if it is bound in the dynamic symbol table, else a builtin
primitive, else a user function, else an error.

The ``call_dispatcher`` hook is how the MaJIC front end differs from the
stock interpreter: when set, user-function calls are handed to it (it
builds an invocation against the code repository) instead of being
interpreted recursively.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import RuntimeMatlabError, UndefinedSymbolError
from repro.frontend import ast_nodes as ast
from repro.runtime import builtins as rt_builtins
from repro.runtime import display
from repro.runtime import elementwise as ew
from repro.runtime.mxarray import IntrinsicClass, MxArray
from repro.runtime.values import empty, from_ndarray, make_scalar, make_string
from repro.interp.environment import Environment

# Function lookup: name -> FunctionDef (or None).
FunctionLookup = Callable[[str], "ast.FunctionDef | None"]
# Dispatcher: (name, args, nargout) -> outputs, or None to interpret here.
CallDispatcher = Callable[[str, list[MxArray], int], "list[MxArray] | None"]


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    pass


class Interpreter:
    """Tree-walking evaluator over one workspace."""

    def __init__(
        self,
        function_lookup: FunctionLookup | None = None,
        sink: display.OutputSink | None = None,
        call_dispatcher: CallDispatcher | None = None,
        fusion: bool = True,
        native=None,
    ):
        self.function_lookup = function_lookup or (lambda name: None)
        self.sink = sink if sink is not None else display.OutputSink()
        self.call_dispatcher = call_dispatcher
        # Statistics: rough operation counts, used by tests and reports.
        self.op_count = 0
        # Fused-kernel fast path: per-node memo of matched fusion plans
        # (repro.kernels).  Entries hold a strong reference to the expr
        # so id() keys stay valid for the interpreter's lifetime.
        self.fusion_enabled = fusion
        self._fusion_plans: dict[int, tuple] = {}
        # Native tier (repro.native): offered each fused dispatch first.
        self.native = native
        # Adaptive tiering: a HotnessCounter recording fused-kernel
        # dispatches when no native engine is counting them (the engine
        # shares the same counter, so only one side records per call).
        self.kernel_hotness = None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run_script(self, program: ast.Program, env: Environment | None = None) -> Environment:
        env = env if env is not None else Environment()
        try:
            self.exec_block(program.script, env)
        except _Return:
            pass
        return env

    def run_statements(self, body: list[ast.Stmt], env: Environment) -> None:
        try:
            self.exec_block(body, env)
        except _Return:
            pass

    def call_function(
        self, fn: ast.FunctionDef, args: list[MxArray], nargout: int = 1
    ) -> list[MxArray]:
        """Invoke a user function interpretively (call-by-value)."""
        if len(args) > len(fn.params):
            raise RuntimeMatlabError(
                f"{fn.name}: too many input arguments"
            )
        env = Environment()
        for name, value in zip(fn.params, args):
            env.set(name, value.copy())
        try:
            self.exec_block(fn.body, env)
        except _Return:
            pass
        outputs: list[MxArray] = []
        wanted = max(nargout, 1) if fn.outputs else 0
        for name in fn.outputs[:wanted]:
            value = env.get(name)
            if value is None:
                raise RuntimeMatlabError(
                    f"output argument '{name}' of {fn.name} not assigned"
                )
            outputs.append(value)
        return outputs

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_block(self, body: list[ast.Stmt], env: Environment) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.Stmt, env: Environment) -> None:
        self.op_count += 1
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.MultiAssign):
            self._exec_multi_assign(stmt, env)
        elif isinstance(stmt, ast.ExprStmt):
            value = self.eval_expr(stmt.value, env)
            if value is not None:
                env.set("ans", value)
                if stmt.display:
                    self.sink.write(display.format_value(value, "ans"))
        elif isinstance(stmt, ast.If):
            for cond, branch in stmt.branches:
                if self.eval_expr(cond, env).bool_value():
                    self.exec_block(branch, env)
                    return
            self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            while self.eval_expr(stmt.cond, env).bool_value():
                try:
                    self.exec_block(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.Return):
            raise _Return()
        elif isinstance(stmt, ast.Clear):
            env.clear(stmt.names)
        elif isinstance(stmt, ast.Global):
            for name in stmt.names:
                if not env.has(name):
                    env.set(name, empty())
        else:
            raise RuntimeMatlabError(
                f"cannot interpret {type(stmt).__name__}"
            )

    def _exec_assign(self, stmt: ast.Assign, env: Environment) -> None:
        value = self.eval_expr(stmt.value, env)
        target = stmt.target
        if target.indices is None:
            # Call-by-value: assignment stores an independent copy.
            env.set(target.name, value.copy())
        else:
            self._indexed_store(target, value, env)
        if stmt.display:
            self.sink.write(
                display.format_value(env.get(target.name), target.name)
            )

    def _indexed_store(
        self, target: ast.LValue, value: MxArray, env: Environment
    ) -> None:
        array = env.get(target.name)
        if array is None:
            array = empty()
            env.set(target.name, array)
        indices = [
            self._eval_index(index, array, position, len(target.indices), env)
            for position, index in enumerate(target.indices)
        ]
        result = ew.mlf_store(array, value, *indices)
        env.set(target.name, result)

    def _exec_multi_assign(self, stmt: ast.MultiAssign, env: Environment) -> None:
        call = stmt.call
        nargout = len(stmt.targets)
        if not isinstance(call, ast.Apply):
            raise RuntimeMatlabError("multi-assignment requires a function call")
        outputs = self._eval_call(call, env, nargout)
        if len(outputs) < nargout:
            raise RuntimeMatlabError(
                f"{call.name}: not enough output arguments"
            )
        for target, value in zip(stmt.targets, outputs):
            if target.indices is None:
                env.set(target.name, value.copy())
            else:
                self._indexed_store(target, value, env)
        if stmt.display:
            for target in stmt.targets:
                self.sink.write(
                    display.format_value(env.get(target.name), target.name)
                )

    def _exec_for(self, stmt: ast.For, env: Environment) -> None:
        iterable = self.eval_expr(stmt.iterable, env)
        if iterable.is_string:
            columns = [make_string(ch) for ch in iterable.text]
        else:
            view = iterable.view()
            columns = [
                from_ndarray(view[:, k: k + 1].copy())
                for k in range(iterable.cols)
            ]
        for column in columns:
            env.set(stmt.var, column)
            try:
                self.exec_block(stmt.body, env)
            except _Break:
                break
            except _Continue:
                continue

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    _BINOPS = {
        "+": ew.mlf_plus, "-": ew.mlf_minus,
        "*": ew.mlf_mtimes, ".*": ew.mlf_times,
        "/": ew.mlf_mrdivide, "./": ew.mlf_rdivide,
        "\\": ew.mlf_mldivide, ".\\": ew.mlf_ldivide,
        "^": ew.mlf_mpower, ".^": ew.mlf_power,
        "==": ew.mlf_eq, "~=": ew.mlf_ne,
        "<": ew.mlf_lt, "<=": ew.mlf_le, ">": ew.mlf_gt, ">=": ew.mlf_ge,
        "&": ew.mlf_and, "|": ew.mlf_or,
    }

    def eval_expr(self, expr: ast.Expr, env: Environment) -> MxArray:
        self.op_count += 1
        if isinstance(expr, ast.Number):
            return make_scalar(expr.value)
        if isinstance(expr, ast.ImagNumber):
            return make_scalar(complex(0.0, expr.value))
        if isinstance(expr, ast.StringLit):
            return make_string(expr.text)
        if isinstance(expr, ast.Ident):
            return self._eval_ident(expr, env)
        if isinstance(expr, ast.UnaryOp):
            operand = self.eval_expr(expr.operand, env)
            if expr.op is ast.UnaryKind.NEG:
                return ew.mlf_uminus(operand)
            if expr.op is ast.UnaryKind.POS:
                return ew.mlf_uplus(operand)
            return ew.mlf_not(operand)
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "&&":
                left = self.eval_expr(expr.left, env)
                if not left.bool_value():
                    return _bool(False)
                return _bool(self.eval_expr(expr.right, env).bool_value())
            if expr.op == "||":
                left = self.eval_expr(expr.left, env)
                if left.bool_value():
                    return _bool(True)
                return _bool(self.eval_expr(expr.right, env).bool_value())
            if self.fusion_enabled:
                fused = self._eval_fused(expr, env)
                if fused is not None:
                    return fused
            left = self.eval_expr(expr.left, env)
            right = self.eval_expr(expr.right, env)
            return self._BINOPS[expr.op](left, right)
        if isinstance(expr, ast.Transpose):
            operand = self.eval_expr(expr.operand, env)
            if expr.conjugate:
                return ew.mlf_ctranspose(operand)
            return ew.mlf_transpose(operand)
        if isinstance(expr, ast.Range):
            start = self.eval_expr(expr.start, env)
            stop = self.eval_expr(expr.stop, env)
            if expr.step is not None:
                step = self.eval_expr(expr.step, env)
                return ew.mlf_colon(start, step, stop)
            return ew.mlf_colon(start, stop)
        if isinstance(expr, ast.MatrixLit):
            rows = [
                ew.mlf_horzcat([self.eval_expr(item, env) for item in row])
                for row in expr.rows
            ]
            if not rows:
                return empty()
            if len(rows) == 1:
                return rows[0]
            return ew.mlf_vertcat(rows)
        if isinstance(expr, ast.Apply):
            outputs = self._eval_call(expr, env, 1)
            if not outputs:
                return empty()
            return outputs[0]
        raise RuntimeMatlabError(f"cannot interpret {type(expr).__name__}")

    def _eval_fused(self, expr: ast.BinaryOp, env: Environment):
        """Fused elementwise fast path (repro.kernels).

        Routes a structurally recognized operator tree through one cached
        NumPy kernel — bit-identical to the ``mlf_*`` chain by
        construction.  Returns ``None`` to fall back to the generic path
        (unmatched tree, unbound/string leaf, or a ``*``/``/`` node whose
        live operands need true matrix semantics).
        """
        from repro.kernels import KERNEL_CACHE, match_dynamic

        entry = self._fusion_plans.get(id(expr))
        if entry is None:
            plan = match_dynamic(expr)
            self._fusion_plans[id(expr)] = (expr, plan)
        else:
            plan = entry[1]
        if plan is None:
            return None
        values = []
        for leaf in plan.leaves:
            if isinstance(leaf, ast.Ident):
                value = env.get(leaf.name)
                if value is None or value.is_string:
                    return None
            elif isinstance(leaf, ast.Number):
                value = make_scalar(leaf.value)
            else:
                value = make_scalar(complex(0.0, leaf.value))
            values.append(value)
        if plan.has_matmul and not plan.runtime_ok(values):
            return None
        kernel = plan.kernel
        if kernel is None:
            kernel = KERNEL_CACHE.get_or_compile(
                plan.root, ("b",) * len(values)
            )
            plan.kernel = kernel
        if self.native is not None:
            result = self.native.dispatch(kernel, values)
            if result is not None:
                return result
        elif self.kernel_hotness is not None:
            self.kernel_hotness.record(kernel.name)
        return kernel.fn(*values)

    def _eval_ident(self, expr: ast.Ident, env: Environment) -> MxArray:
        value = env.get(expr.name)
        if value is not None:
            return value
        if rt_builtins.is_builtin(expr.name):
            outputs = rt_builtins.call_builtin(expr.name, [], 1, sink=self.sink)
            return outputs[0] if outputs else empty()
        outputs = self._call_user(expr.name, [], 1)
        if outputs is not None:
            return outputs[0] if outputs else empty()
        raise UndefinedSymbolError(
            f"undefined function or variable '{expr.name}'", expr.location
        )

    def _eval_index(
        self,
        index: ast.Expr,
        array: MxArray,
        position: int,
        arity: int,
        env: Environment,
    ) -> MxArray:
        if isinstance(index, ast.ColonAll):
            if arity == 1:
                count = array.numel
            else:
                count = array.rows if position == 0 else array.cols
            return ew.mlf_colon(make_scalar(1), make_scalar(count))
        return self.eval_expr(
            _EndSubstituted(index, array, position, arity, self).value(env)
            if _contains_end(index)
            else index,
            env,
        )

    def _eval_call(
        self, expr: ast.Apply, env: Environment, nargout: int
    ) -> list[MxArray]:
        # Dynamic resolution (Section 2.1): variable > builtin > function.
        array = env.get(expr.name)
        if array is not None:
            indices = [
                self._eval_index(index, array, position, len(expr.args), env)
                for position, index in enumerate(expr.args)
            ]
            if not indices:
                return [array]
            return [ew.mlf_index(array, *indices)]
        if rt_builtins.is_builtin(expr.name):
            args = [self.eval_expr(arg, env) for arg in expr.args]
            return rt_builtins.call_builtin(
                expr.name, args, nargout, sink=self.sink
            )
        args = [self.eval_expr(arg, env) for arg in expr.args]
        outputs = self._call_user(expr.name, args, nargout)
        if outputs is not None:
            return outputs
        raise UndefinedSymbolError(
            f"undefined function or variable '{expr.name}'", expr.location
        )

    def _call_user(
        self, name: str, args: list[MxArray], nargout: int
    ) -> list[MxArray] | None:
        if self.call_dispatcher is not None:
            result = self.call_dispatcher(name, args, nargout)
            if result is not None:
                return result
        fn = self.function_lookup(name)
        if fn is None:
            return None
        return self.call_function(fn, args, nargout)


def _bool(value: bool) -> MxArray:
    from repro.runtime.values import make_bool

    return make_bool(value)


def _contains_end(expr: ast.Expr) -> bool:
    return any(isinstance(n, ast.EndMarker) for n in ast.walk_expr(expr))


class _EndSubstituted:
    """Rewrites ``end`` markers in a subscript to their numeric value."""

    def __init__(self, index, array, position, arity, interp):
        import copy

        self.index = copy.deepcopy(index)
        if arity == 1:
            end_value = array.numel
        else:
            end_value = array.rows if position == 0 else array.cols
        self._substitute(self.index, end_value)

    def _substitute(self, expr, end_value: int) -> None:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.EndMarker):
                node.__class__ = ast.Number
                node.value = float(end_value)

    def value(self, env):
        return self.index
