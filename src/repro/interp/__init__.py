"""Interpreted execution.

:mod:`~repro.interp.interpreter` is the stock-MATLAB-like tree-walking
interpreter — the paper's baseline ``t_i``.  Every value is a boxed MxArray
and every operation goes through the generic runtime-dispatch layer, which
is precisely the overhead compilation removes.

:mod:`~repro.interp.frontend` wraps it into the MaJIC front end of
Section 2: a compatible interpreter that executes top-level code itself but
*defers computationally complex tasks (function calls) to the code
repository* by building invocations.
"""

from repro.interp.environment import Environment
from repro.interp.interpreter import Interpreter
from repro.interp.frontend import MajicFrontEnd, Invocation

__all__ = ["Environment", "Interpreter", "MajicFrontEnd", "Invocation"]
