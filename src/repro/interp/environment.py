"""The dynamic symbol table (workspace) of the interpreter."""

from __future__ import annotations

from repro.runtime.mxarray import MxArray


class Environment:
    """Name → MxArray bindings with MATLAB ``clear`` semantics."""

    def __init__(self):
        self._bindings: dict[str, MxArray] = {}

    def get(self, name: str) -> MxArray | None:
        return self._bindings.get(name)

    def set(self, name: str, value: MxArray) -> None:
        self._bindings[name] = value

    def has(self, name: str) -> bool:
        return name in self._bindings

    def clear(self, names: list[str] | None = None) -> None:
        if not names:
            self._bindings.clear()
            return
        for name in names:
            self._bindings.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._bindings)

    def snapshot(self) -> dict[str, MxArray]:
        return dict(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings
