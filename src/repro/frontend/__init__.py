"""MATLAB front end: scanner, parser, AST and pretty printer.

The parser follows FALCON's grammar for the MATLAB subset the paper's
benchmarks exercise (Section 2: "MaJIC's parser is based on FALCON's parser
with a few minor improvements"): function files with subfunctions, scripts,
the full expression grammar including matrix literals, colon ranges, ``end``
arithmetic in subscripts, and multi-value assignment.
"""

from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse, parse_file, parse_expression
from repro.frontend import ast_nodes as ast
from repro.frontend.pretty import pretty

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_file",
    "parse_expression",
    "ast",
    "pretty",
]
