"""Abstract syntax tree node definitions.

All nodes are dataclasses with identity equality (``eq=False``): the
analyses attach information to nodes through identity-keyed side tables
(:mod:`repro.inference.annotations`), so two structurally equal nodes must
remain distinguishable.

``Apply`` deserves a note: at parse time ``f(x)`` is syntactically ambiguous
between array indexing, a builtin call and a user-function call (Section
2.1).  The parser always produces an ``Apply`` node; the disambiguator
resolves its :attr:`Apply.kind`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SourceLocation

_LOC = SourceLocation()


# ======================================================================
# Expressions
# ======================================================================
@dataclass(eq=False)
class Expr:
    """Base class for expression nodes."""

    location: SourceLocation = field(default=_LOC, kw_only=True)


@dataclass(eq=False)
class Number(Expr):
    """A real numeric literal."""

    value: float


@dataclass(eq=False)
class ImagNumber(Expr):
    """An imaginary literal such as ``2.5i``."""

    value: float


@dataclass(eq=False)
class StringLit(Expr):
    text: str


@dataclass(eq=False)
class Ident(Expr):
    """A bare symbol occurrence (variable, builtin or function name)."""

    name: str


class UnaryKind(enum.Enum):
    NEG = "-"
    POS = "+"
    NOT = "~"


@dataclass(eq=False)
class UnaryOp(Expr):
    op: UnaryKind
    operand: Expr


@dataclass(eq=False)
class BinaryOp(Expr):
    """All infix binary operators; ``op`` holds the MATLAB spelling."""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=False)
class Transpose(Expr):
    operand: Expr
    conjugate: bool


@dataclass(eq=False)
class Range(Expr):
    """The colon range expression ``start:stop`` / ``start:step:stop``."""

    start: Expr
    stop: Expr
    step: Expr | None = None


@dataclass(eq=False)
class ColonAll(Expr):
    """A bare ``:`` subscript selecting a full dimension."""


@dataclass(eq=False)
class EndMarker(Expr):
    """The ``end`` keyword used arithmetically inside a subscript."""


@dataclass(eq=False)
class MatrixLit(Expr):
    """The bracket operator ``[a b; c d]`` (vector constructor)."""

    rows: list[list[Expr]]


class ApplyKind(enum.Enum):
    """Resolution state of an ``f(x)`` form (set by the disambiguator)."""

    UNRESOLVED = "unresolved"
    INDEX = "index"                  # f is a variable: array subscript
    BUILTIN = "builtin"              # f is a builtin primitive
    USER_FUNCTION = "user_function"  # f is a user function on the path
    AMBIGUOUS = "ambiguous"          # defer resolution to runtime (§2.1)


@dataclass(eq=False)
class Apply(Expr):
    """``name(arg, ...)`` — indexing or a call, per :attr:`kind`."""

    name: str
    args: list[Expr]
    kind: ApplyKind = ApplyKind.UNRESOLVED


# ======================================================================
# Statements
# ======================================================================
@dataclass(eq=False)
class Stmt:
    location: SourceLocation = field(default=_LOC, kw_only=True)


@dataclass(eq=False)
class LValue:
    """Assignment target: plain name or subscripted store."""

    name: str
    indices: list[Expr] | None = None
    location: SourceLocation = field(default=_LOC, kw_only=True)

    @property
    def is_indexed(self) -> bool:
        return self.indices is not None


@dataclass(eq=False)
class Assign(Stmt):
    """``lhs = expr`` (single target)."""

    target: LValue
    value: Expr
    display: bool = False


@dataclass(eq=False)
class MultiAssign(Stmt):
    """``[a, b] = f(...)`` (multi-value call result assignment)."""

    targets: list[LValue]
    call: Expr
    display: bool = False


@dataclass(eq=False)
class ExprStmt(Stmt):
    """A bare expression; its value is echoed into ``ans`` when displayed."""

    value: Expr
    display: bool = False


@dataclass(eq=False)
class If(Stmt):
    """``if``/``elseif`` chain; ``branches`` pairs conditions with bodies."""

    branches: list[tuple[Expr, list[Stmt]]]
    orelse: list[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class While(Stmt):
    cond: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class For(Stmt):
    """``for var = iterable`` — iterates columns of the iterable's value."""

    var: str
    iterable: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class Break(Stmt):
    pass


@dataclass(eq=False)
class Continue(Stmt):
    pass


@dataclass(eq=False)
class Return(Stmt):
    pass


@dataclass(eq=False)
class Global(Stmt):
    names: list[str] = field(default_factory=list)


@dataclass(eq=False)
class Clear(Stmt):
    """``clear`` / ``clear x y`` — wipes the dynamic symbol table."""

    names: list[str] = field(default_factory=list)


# ======================================================================
# Top level
# ======================================================================
@dataclass(eq=False)
class FunctionDef:
    """One ``function`` definition (primary or subfunction)."""

    name: str
    params: list[str]
    outputs: list[str]
    body: list[Stmt]
    location: SourceLocation = field(default=_LOC, kw_only=True)

    @property
    def nargin(self) -> int:
        return len(self.params)

    @property
    def nargout(self) -> int:
        return len(self.outputs)


@dataclass(eq=False)
class Program:
    """A parsed source unit: either a script or a function file.

    A function file holds the primary function first, then subfunctions.
    """

    functions: list[FunctionDef] = field(default_factory=list)
    script: list[Stmt] = field(default_factory=list)
    source: str = ""
    filename: str = "<input>"

    @property
    def is_script(self) -> bool:
        return not self.functions

    @property
    def primary(self) -> FunctionDef:
        if not self.functions:
            raise ValueError("script programs have no primary function")
        return self.functions[0]


def walk_expr(node: Expr):
    """Yield ``node`` and every expression beneath it, preorder."""
    yield node
    if isinstance(node, UnaryOp):
        yield from walk_expr(node.operand)
    elif isinstance(node, BinaryOp):
        yield from walk_expr(node.left)
        yield from walk_expr(node.right)
    elif isinstance(node, Transpose):
        yield from walk_expr(node.operand)
    elif isinstance(node, Range):
        yield from walk_expr(node.start)
        if node.step is not None:
            yield from walk_expr(node.step)
        yield from walk_expr(node.stop)
    elif isinstance(node, MatrixLit):
        for row in node.rows:
            for item in row:
                yield from walk_expr(item)
    elif isinstance(node, Apply):
        for arg in node.args:
            yield from walk_expr(arg)


def walk_stmts(body: list[Stmt]):
    """Yield every statement in ``body``, recursively, preorder."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            for _, branch in stmt.branches:
                yield from walk_stmts(branch)
            yield from walk_stmts(stmt.orelse)
        elif isinstance(stmt, (While, For)):
            yield from walk_stmts(stmt.body)


def stmt_exprs(stmt: Stmt):
    """Yield the top-level expressions contained directly in ``stmt``."""
    if isinstance(stmt, Assign):
        if stmt.target.indices:
            yield from stmt.target.indices
        yield stmt.value
    elif isinstance(stmt, MultiAssign):
        for target in stmt.targets:
            if target.indices:
                yield from target.indices
        yield stmt.call
    elif isinstance(stmt, ExprStmt):
        yield stmt.value
    elif isinstance(stmt, If):
        for cond, _ in stmt.branches:
            yield cond
    elif isinstance(stmt, While):
        yield stmt.cond
    elif isinstance(stmt, For):
        yield stmt.iterable
