"""AST pretty printer: renders parse trees back to MATLAB source.

Round-tripping through :func:`pretty` is used by the test suite to validate
the parser (parse → print → parse yields an equivalent tree) and by the
inliner to show its transformed bodies when debugging.
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast

_INDENT = "  "


def pretty_expr(node: ast.Expr) -> str:
    """Render an expression (fully parenthesized where precedence matters)."""
    if isinstance(node, ast.Number):
        value = node.value
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(node, ast.ImagNumber):
        value = node.value
        text = str(int(value)) if value == int(value) else repr(value)
        return f"{text}i"
    if isinstance(node, ast.StringLit):
        return "'" + node.text.replace("'", "''") + "'"
    if isinstance(node, ast.Ident):
        return node.name
    if isinstance(node, ast.UnaryOp):
        return f"{node.op.value}({pretty_expr(node.operand)})"
    if isinstance(node, ast.BinaryOp):
        return f"({pretty_expr(node.left)} {node.op} {pretty_expr(node.right)})"
    if isinstance(node, ast.Transpose):
        mark = "'" if node.conjugate else ".'"
        return f"({pretty_expr(node.operand)}){mark}"
    if isinstance(node, ast.Range):
        if node.step is not None:
            return (
                f"({pretty_expr(node.start)}:{pretty_expr(node.step)}"
                f":{pretty_expr(node.stop)})"
            )
        return f"({pretty_expr(node.start)}:{pretty_expr(node.stop)})"
    if isinstance(node, ast.ColonAll):
        return ":"
    if isinstance(node, ast.EndMarker):
        return "end"
    if isinstance(node, ast.MatrixLit):
        rows = "; ".join(
            ", ".join(pretty_expr(item) for item in row) for row in node.rows
        )
        return f"[{rows}]"
    if isinstance(node, ast.Apply):
        args = ", ".join(pretty_expr(arg) for arg in node.args)
        return f"{node.name}({args})"
    raise TypeError(f"cannot pretty-print {type(node).__name__}")


def _pretty_lvalue(target: ast.LValue) -> str:
    if target.indices is None:
        return target.name
    args = ", ".join(pretty_expr(arg) for arg in target.indices)
    return f"{target.name}({args})"


def pretty_stmt(node: ast.Stmt, depth: int = 0) -> str:
    pad = _INDENT * depth
    if isinstance(node, ast.Assign):
        tail = "" if node.display else ";"
        return f"{pad}{_pretty_lvalue(node.target)} = {pretty_expr(node.value)}{tail}"
    if isinstance(node, ast.MultiAssign):
        targets = ", ".join(_pretty_lvalue(t) for t in node.targets)
        tail = "" if node.display else ";"
        return f"{pad}[{targets}] = {pretty_expr(node.call)}{tail}"
    if isinstance(node, ast.ExprStmt):
        tail = "" if node.display else ";"
        return f"{pad}{pretty_expr(node.value)}{tail}"
    if isinstance(node, ast.If):
        lines = []
        for index, (cond, body) in enumerate(node.branches):
            word = "if" if index == 0 else "elseif"
            lines.append(f"{pad}{word} {pretty_expr(cond)}")
            lines.extend(pretty_stmt(s, depth + 1) for s in body)
        if node.orelse:
            lines.append(f"{pad}else")
            lines.extend(pretty_stmt(s, depth + 1) for s in node.orelse)
        lines.append(f"{pad}end")
        return "\n".join(lines)
    if isinstance(node, ast.While):
        lines = [f"{pad}while {pretty_expr(node.cond)}"]
        lines.extend(pretty_stmt(s, depth + 1) for s in node.body)
        lines.append(f"{pad}end")
        return "\n".join(lines)
    if isinstance(node, ast.For):
        lines = [f"{pad}for {node.var} = {pretty_expr(node.iterable)}"]
        lines.extend(pretty_stmt(s, depth + 1) for s in node.body)
        lines.append(f"{pad}end")
        return "\n".join(lines)
    if isinstance(node, ast.Break):
        return f"{pad}break;"
    if isinstance(node, ast.Continue):
        return f"{pad}continue;"
    if isinstance(node, ast.Return):
        return f"{pad}return;"
    if isinstance(node, ast.Global):
        return f"{pad}global {' '.join(node.names)};"
    if isinstance(node, ast.Clear):
        names = (" " + " ".join(node.names)) if node.names else ""
        return f"{pad}clear{names};"
    raise TypeError(f"cannot pretty-print {type(node).__name__}")


def pretty_function(fn: ast.FunctionDef) -> str:
    header = "function "
    if len(fn.outputs) == 1:
        header += f"{fn.outputs[0]} = "
    elif fn.outputs:
        header += f"[{', '.join(fn.outputs)}] = "
    header += fn.name
    if fn.params:
        header += f"({', '.join(fn.params)})"
    lines = [header]
    lines.extend(pretty_stmt(s, 1) for s in fn.body)
    return "\n".join(lines)


def pretty(program: ast.Program) -> str:
    """Render a whole program (script or function file)."""
    if program.is_script:
        return "\n".join(pretty_stmt(s) for s in program.script) + "\n"
    return "\n\n".join(pretty_function(fn) for fn in program.functions) + "\n"
