"""Recursive-descent parser for the MATLAB subset.

Produces the AST of :mod:`repro.frontend.ast_nodes`.  The grammar follows
MATLAB 6 semantics for everything the paper's benchmarks exercise:

* scripts and function files (primary function + subfunctions, ``end``
  termination optional);
* the full expression grammar with MATLAB precedence, including colon
  ranges, matrix literals, ``end`` arithmetic in subscripts, transpose, and
  short-circuit operators;
* single and multi-value assignments, subscripted stores;
* ``if``/``elseif``/``else``, ``for``, ``while``, ``break``, ``continue``,
  ``return``, ``global`` and command-form ``clear``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind

# Precedence levels for the climbing parser (higher binds tighter).
_PRECEDENCE: dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "&": 4,
    "==": 5, "~=": 5, "<": 5, "<=": 5, ">": 5, ">=": 5,
    # colon ranges live between relational and additive, handled separately
    "+": 7, "-": 7,
    "*": 8, "/": 8, "\\": 8, ".*": 8, "./": 8, ".\\": 8,
    "^": 10, ".^": 10,
}

_RANGE_LEVEL = 6

_SEPARATORS = (TokenKind.NEWLINE, TokenKind.SEMICOLON, TokenKind.COMMA)


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: list[Token], source: str = "", filename: str = "<input>"):
        self.tokens = tokens
        self.index = 0
        self.source = source
        self.filename = filename
        # True while parsing subscript argument lists, where `end` is an
        # expression and `:` may stand alone.
        self._subscript_depth = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if self.index < len(self.tokens) - 1:
            self.index += 1
        return token

    def check(self, kind: TokenKind) -> bool:
        return self.peek().kind is kind

    def accept(self, kind: TokenKind) -> Token | None:
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, what: str = "") -> Token:
        if not self.check(kind):
            token = self.peek()
            raise ParseError(
                f"expected {what or kind.value!r}, found {token.text!r}",
                token.location,
            )
        return self.advance()

    def accept_kw(self, word: str) -> bool:
        if self.peek().is_kw(word):
            self.advance()
            return True
        return False

    def expect_kw(self, word: str) -> None:
        if not self.accept_kw(word):
            token = self.peek()
            raise ParseError(
                f"expected '{word}', found {token.text!r}", token.location
            )

    def _skip_separators(self) -> None:
        while self.peek().kind in _SEPARATORS:
            self.advance()

    def at_eof(self) -> bool:
        return self.check(TokenKind.EOF)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        self._skip_separators()
        program = ast.Program(source=self.source, filename=self.filename)
        if self.peek().is_kw("function"):
            while not self.at_eof():
                program.functions.append(self.parse_function())
                self._skip_separators()
        else:
            program.script = self.parse_statements(stop_keywords=frozenset())
            if not self.at_eof():
                token = self.peek()
                raise ParseError(
                    f"unexpected {token.text!r} at top level", token.location
                )
        return program

    def parse_function(self) -> ast.FunctionDef:
        location = self.peek().location
        self.expect_kw("function")
        outputs: list[str] = []
        # Three header shapes: f(...), o = f(...), [o1, o2] = f(...)
        if self.accept(TokenKind.LBRACKET):
            while not self.check(TokenKind.RBRACKET):
                outputs.append(self.expect(TokenKind.IDENT, "output name").text)
                if not self.accept(TokenKind.COMMA):
                    break
            self.expect(TokenKind.RBRACKET)
            self.expect(TokenKind.ASSIGN)
            name = self.expect(TokenKind.IDENT, "function name").text
        else:
            first = self.expect(TokenKind.IDENT, "function name").text
            if self.accept(TokenKind.ASSIGN):
                outputs = [first]
                name = self.expect(TokenKind.IDENT, "function name").text
            else:
                name = first
        params: list[str] = []
        if self.accept(TokenKind.LPAREN):
            while not self.check(TokenKind.RPAREN):
                params.append(self.expect(TokenKind.IDENT, "parameter").text)
                if not self.accept(TokenKind.COMMA):
                    break
            self.expect(TokenKind.RPAREN)
        body = self.parse_statements(
            stop_keywords=frozenset({"function", "end"})
        )
        # Optional `end` that terminates the function definition.
        self.accept_kw("end")
        return ast.FunctionDef(
            name=name, params=params, outputs=outputs, body=body,
            location=location,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statements(self, stop_keywords: frozenset[str]) -> list[ast.Stmt]:
        stop = stop_keywords | {"elseif", "else", "otherwise", "case"}
        body: list[ast.Stmt] = []
        self._skip_separators()
        while not self.at_eof():
            token = self.peek()
            if token.is_keyword and token.text in stop:
                break
            if token.is_kw("end") and "end" not in stop_keywords:
                break
            body.append(self.parse_statement())
            self._skip_separators()
        return body

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.is_keyword:
            handler = {
                "if": self._parse_if,
                "while": self._parse_while,
                "for": self._parse_for,
                "break": self._parse_break,
                "continue": self._parse_continue,
                "return": self._parse_return,
                "global": self._parse_global,
                "clear": self._parse_clear,
            }.get(token.text)
            if handler is None:
                raise ParseError(
                    f"unexpected keyword '{token.text}'", token.location
                )
            return handler()
        if token.kind is TokenKind.LBRACKET:
            multi = self._try_parse_multi_assign()
            if multi is not None:
                return multi
        return self._parse_expression_statement()

    def _statement_display_flag(self) -> bool:
        """Consume the statement terminator; ``;`` suppresses display."""
        if self.accept(TokenKind.SEMICOLON):
            return False
        if self.peek().kind in (TokenKind.NEWLINE, TokenKind.COMMA, TokenKind.EOF):
            if not self.at_eof():
                self.advance()
            return True
        # Statements directly followed by a block keyword (e.g. `end`).
        if self.peek().is_keyword:
            return True
        token = self.peek()
        raise ParseError(
            f"expected end of statement, found {token.text!r}", token.location
        )

    def _parse_expression_statement(self) -> ast.Stmt:
        location = self.peek().location
        expr = self.parse_expression()
        if self.check(TokenKind.ASSIGN):
            target = self._expr_to_lvalue(expr)
            self.advance()
            value = self.parse_expression()
            display = self._statement_display_flag()
            return ast.Assign(
                target=target, value=value, display=display, location=location
            )
        display = self._statement_display_flag()
        return ast.ExprStmt(value=expr, display=display, location=location)

    def _expr_to_lvalue(self, expr: ast.Expr) -> ast.LValue:
        if isinstance(expr, ast.Ident):
            return ast.LValue(name=expr.name, location=expr.location)
        if isinstance(expr, ast.Apply):
            return ast.LValue(
                name=expr.name, indices=expr.args, location=expr.location
            )
        raise ParseError("invalid assignment target", expr.location)

    def _try_parse_multi_assign(self) -> ast.MultiAssign | None:
        """Attempt ``[a, b] = f(...)``; backtrack if it is a matrix literal."""
        saved = self.index
        location = self.peek().location
        self.advance()  # consume '['
        targets: list[ast.LValue] = []
        while True:
            if not self.check(TokenKind.IDENT):
                self.index = saved
                return None
            name = self.advance().text
            indices: list[ast.Expr] | None = None
            if self.check(TokenKind.LPAREN):
                try:
                    indices = self._parse_subscript_args()
                except ParseError:
                    self.index = saved
                    return None
            targets.append(ast.LValue(name=name, indices=indices))
            if self.accept(TokenKind.COMMA):
                continue
            break
        if not (self.accept(TokenKind.RBRACKET) and self.check(TokenKind.ASSIGN)):
            self.index = saved
            return None
        self.advance()  # '='
        call = self.parse_expression()
        display = self._statement_display_flag()
        return ast.MultiAssign(
            targets=targets, call=call, display=display, location=location
        )

    def _parse_if(self) -> ast.Stmt:
        location = self.peek().location
        self.expect_kw("if")
        branches: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        cond = self.parse_expression()
        self._skip_separators()
        body = self.parse_statements(frozenset())
        branches.append((cond, body))
        orelse: list[ast.Stmt] = []
        while True:
            if self.accept_kw("elseif"):
                cond = self.parse_expression()
                self._skip_separators()
                branches.append((cond, self.parse_statements(frozenset())))
                continue
            if self.accept_kw("else"):
                self._skip_separators()
                orelse = self.parse_statements(frozenset())
            break
        self.expect_kw("end")
        return ast.If(branches=branches, orelse=orelse, location=location)

    def _parse_while(self) -> ast.Stmt:
        location = self.peek().location
        self.expect_kw("while")
        cond = self.parse_expression()
        self._skip_separators()
        body = self.parse_statements(frozenset())
        self.expect_kw("end")
        return ast.While(cond=cond, body=body, location=location)

    def _parse_for(self) -> ast.Stmt:
        location = self.peek().location
        self.expect_kw("for")
        var = self.expect(TokenKind.IDENT, "loop variable").text
        self.expect(TokenKind.ASSIGN)
        iterable = self.parse_expression()
        self._skip_separators()
        body = self.parse_statements(frozenset())
        self.expect_kw("end")
        return ast.For(var=var, iterable=iterable, body=body, location=location)

    def _parse_break(self) -> ast.Stmt:
        location = self.peek().location
        self.expect_kw("break")
        self._statement_display_flag()
        return ast.Break(location=location)

    def _parse_continue(self) -> ast.Stmt:
        location = self.peek().location
        self.expect_kw("continue")
        self._statement_display_flag()
        return ast.Continue(location=location)

    def _parse_return(self) -> ast.Stmt:
        location = self.peek().location
        self.expect_kw("return")
        self._statement_display_flag()
        return ast.Return(location=location)

    def _parse_global(self) -> ast.Stmt:
        location = self.peek().location
        self.expect_kw("global")
        names = []
        while self.check(TokenKind.IDENT):
            names.append(self.advance().text)
            self.accept(TokenKind.COMMA)
        self._statement_display_flag()
        return ast.Global(names=names, location=location)

    def _parse_clear(self) -> ast.Stmt:
        location = self.peek().location
        self.expect_kw("clear")
        names = []
        while self.check(TokenKind.IDENT):
            names.append(self.advance().text)
        self._statement_display_flag()
        return ast.Clear(names=names, location=location)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self._parse_loose(1)

    def _parse_loose(self, min_level: int) -> ast.Expr:
        """Levels 1–5: short-circuit, elementwise logical, relational."""
        if min_level > 5:
            return self._parse_range()
        left = self._parse_loose(min_level + 1)
        while True:
            token = self.peek()
            op = token.text if token.kind.value in _PRECEDENCE else None
            if op is None or _PRECEDENCE[op] != min_level:
                return left
            self.advance()
            right = self._parse_loose(min_level + 1)
            left = ast.BinaryOp(op=op, left=left, right=right, location=token.location)

    def _parse_range(self) -> ast.Expr:
        """Colon level: ``a : b`` and ``a : s : b``."""
        start = self._parse_additive()
        if not self.check(TokenKind.COLON):
            return start
        location = self.advance().location
        second = self._parse_additive()
        if self.check(TokenKind.COLON):
            self.advance()
            stop = self._parse_additive()
            return ast.Range(start=start, step=second, stop=stop, location=location)
        return ast.Range(start=start, stop=second, location=location)

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            token = self.advance()
            right = self._parse_multiplicative()
            left = ast.BinaryOp(
                op=token.text, left=left, right=right, location=token.location
            )
        return left

    _MUL_KINDS = (
        TokenKind.STAR,
        TokenKind.SLASH,
        TokenKind.BACKSLASH,
        TokenKind.DOT_STAR,
        TokenKind.DOT_SLASH,
        TokenKind.DOT_BACKSLASH,
    )

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self.peek().kind in self._MUL_KINDS:
            token = self.advance()
            right = self._parse_unary()
            left = ast.BinaryOp(
                op=token.text, left=left, right=right, location=token.location
            )
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.MINUS:
            self.advance()
            return ast.UnaryOp(
                op=ast.UnaryKind.NEG, operand=self._parse_unary(),
                location=token.location,
            )
        if token.kind is TokenKind.PLUS:
            self.advance()
            return ast.UnaryOp(
                op=ast.UnaryKind.POS, operand=self._parse_unary(),
                location=token.location,
            )
        if token.kind is TokenKind.NOT:
            self.advance()
            return ast.UnaryOp(
                op=ast.UnaryKind.NOT, operand=self._parse_unary(),
                location=token.location,
            )
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_postfix()
        token = self.peek()
        if token.kind in (TokenKind.CARET, TokenKind.DOT_CARET):
            self.advance()
            # MATLAB power is left-associative; exponent may be unary.
            exponent = self._parse_power_operand()
            result = ast.BinaryOp(
                op=token.text, left=base, right=exponent, location=token.location
            )
            while self.peek().kind in (TokenKind.CARET, TokenKind.DOT_CARET):
                op_token = self.advance()
                result = ast.BinaryOp(
                    op=op_token.text,
                    left=result,
                    right=self._parse_power_operand(),
                    location=op_token.location,
                )
            return result
        return base

    def _parse_power_operand(self) -> ast.Expr:
        token = self.peek()
        if token.kind in (TokenKind.MINUS, TokenKind.PLUS, TokenKind.NOT):
            self.advance()
            kind = {
                TokenKind.MINUS: ast.UnaryKind.NEG,
                TokenKind.PLUS: ast.UnaryKind.POS,
                TokenKind.NOT: ast.UnaryKind.NOT,
            }[token.kind]
            return ast.UnaryOp(
                op=kind, operand=self._parse_power_operand(),
                location=token.location,
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.peek()
            if token.kind is TokenKind.QUOTE:
                self.advance()
                expr = ast.Transpose(
                    operand=expr, conjugate=True, location=token.location
                )
            elif token.kind is TokenKind.DOT_QUOTE:
                self.advance()
                expr = ast.Transpose(
                    operand=expr, conjugate=False, location=token.location
                )
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.Number(value=float(token.text), location=token.location)
        if token.kind is TokenKind.IMAGINARY:
            self.advance()
            return ast.ImagNumber(value=float(token.text), location=token.location)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.StringLit(text=token.text, location=token.location)
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.check(TokenKind.LPAREN):
                args = self._parse_subscript_args()
                return ast.Apply(name=token.text, args=args, location=token.location)
            return ast.Ident(name=token.text, location=token.location)
        if token.is_kw("end") and self._subscript_depth > 0:
            self.advance()
            return ast.EndMarker(location=token.location)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.LBRACKET:
            return self._parse_matrix()
        raise ParseError(f"unexpected token {token.text!r}", token.location)

    def _parse_subscript_args(self) -> list[ast.Expr]:
        """Parse ``( ... )`` where ``end`` and bare ``:`` are permitted."""
        self.expect(TokenKind.LPAREN)
        self._subscript_depth += 1
        args: list[ast.Expr] = []
        try:
            if not self.check(TokenKind.RPAREN):
                while True:
                    if self.check(TokenKind.COLON) and self.peek(1).kind in (
                        TokenKind.COMMA,
                        TokenKind.RPAREN,
                    ):
                        location = self.advance().location
                        args.append(ast.ColonAll(location=location))
                    else:
                        args.append(self.parse_expression())
                    if not self.accept(TokenKind.COMMA):
                        break
            self.expect(TokenKind.RPAREN)
        finally:
            self._subscript_depth -= 1
        return args

    def _parse_matrix(self) -> ast.Expr:
        location = self.expect(TokenKind.LBRACKET).location
        rows: list[list[ast.Expr]] = []
        current: list[ast.Expr] = []
        while not self.check(TokenKind.RBRACKET):
            if self.accept(TokenKind.SEMICOLON) or self.accept(TokenKind.NEWLINE):
                if current:
                    rows.append(current)
                    current = []
                continue
            if self.accept(TokenKind.COMMA):
                continue
            current.append(self.parse_expression())
        self.expect(TokenKind.RBRACKET)
        if current:
            rows.append(current)
        return ast.MatrixLit(rows=rows, location=location)


def parse(source: str, filename: str = "<input>") -> ast.Program:
    """Parse MATLAB source text into a :class:`~repro.frontend.ast_nodes.Program`."""
    return Parser(tokenize(source, filename), source, filename).parse_program()


def parse_file(path) -> ast.Program:
    """Parse a ``.m`` file from disk."""
    import os

    with open(path) as handle:
        text = handle.read()
    return parse(text, filename=os.fspath(path))


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (testing convenience)."""
    parser = Parser(tokenize(source), source)
    expr = parser.parse_expression()
    parser._skip_separators()
    if not parser.at_eof():
        token = parser.peek()
        raise ParseError(f"trailing input {token.text!r}", token.location)
    return expr
