"""Token kinds and the token record produced by the scanner."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SourceLocation


class TokenKind(enum.Enum):
    NUMBER = "number"            # 3, 2.5, 1e-3
    IMAGINARY = "imaginary"      # 3i, 2.5j
    STRING = "string"            # 'text'
    IDENT = "ident"
    KEYWORD = "keyword"

    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    BACKSLASH = "\\"
    CARET = "^"
    DOT_STAR = ".*"
    DOT_SLASH = "./"
    DOT_BACKSLASH = ".\\"
    DOT_CARET = ".^"
    QUOTE = "'"                  # complex-conjugate transpose
    DOT_QUOTE = ".'"             # plain transpose

    EQ = "=="
    NE = "~="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    AND = "&"
    OR = "|"
    ANDAND = "&&"
    OROR = "||"
    NOT = "~"

    ASSIGN = "="
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    NEWLINE = "\n"

    EOF = "eof"


KEYWORDS = frozenset(
    {
        "function",
        "for",
        "while",
        "if",
        "elseif",
        "else",
        "end",
        "break",
        "continue",
        "return",
        "global",
        "clear",
        "otherwise",
        "switch",
        "case",
    }
)

# Binary operator token kinds, used by the parser's precedence climber.
BINARY_OPS = frozenset(
    {
        TokenKind.PLUS,
        TokenKind.MINUS,
        TokenKind.STAR,
        TokenKind.SLASH,
        TokenKind.BACKSLASH,
        TokenKind.CARET,
        TokenKind.DOT_STAR,
        TokenKind.DOT_SLASH,
        TokenKind.DOT_BACKSLASH,
        TokenKind.DOT_CARET,
        TokenKind.EQ,
        TokenKind.NE,
        TokenKind.LT,
        TokenKind.LE,
        TokenKind.GT,
        TokenKind.GE,
        TokenKind.AND,
        TokenKind.OR,
        TokenKind.ANDAND,
        TokenKind.OROR,
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location."""

    kind: TokenKind
    text: str
    location: SourceLocation

    @property
    def is_keyword(self) -> bool:
        return self.kind is TokenKind.KEYWORD

    def is_kw(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r})"
