"""The MATLAB scanner.

Handles the lexical quirks that make MATLAB scanning context-sensitive:

* ``'`` is either the transpose operator or a string delimiter, depending on
  the previous token (transpose after an identifier, number, closing bracket
  or another transpose; string otherwise);
* ``...`` continues a logical line across physical lines;
* ``%`` starts a comment to end of line;
* newlines are significant (statement separators) and are emitted as tokens;
* ``3i`` / ``2.5j`` are imaginary literals.
"""

from __future__ import annotations

from repro.errors import LexError, SourceLocation
from repro.frontend.tokens import KEYWORDS, Token, TokenKind

_TRANSPOSE_CONTEXT = {
    TokenKind.IDENT,
    TokenKind.NUMBER,
    TokenKind.IMAGINARY,
    TokenKind.RPAREN,
    TokenKind.RBRACKET,
    TokenKind.QUOTE,
    TokenKind.DOT_QUOTE,
    TokenKind.STRING,
}

_TWO_CHAR = {
    "==": TokenKind.EQ,
    "~=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.ANDAND,
    "||": TokenKind.OROR,
    ".*": TokenKind.DOT_STAR,
    "./": TokenKind.DOT_SLASH,
    ".\\": TokenKind.DOT_BACKSLASH,
    ".^": TokenKind.DOT_CARET,
    ".'": TokenKind.DOT_QUOTE,
}

_ONE_CHAR = {
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "\\": TokenKind.BACKSLASH,
    "^": TokenKind.CARET,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "&": TokenKind.AND,
    "|": TokenKind.OR,
    "~": TokenKind.NOT,
    "=": TokenKind.ASSIGN,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    ":": TokenKind.COLON,
}


class Lexer:
    """Streaming scanner over one source string."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens: list[Token] = []
        # Stack of open grouping characters; whitespace only acts as an
        # element separator when the innermost open group is a bracket.
        self._groups: list[str] = []

    # ------------------------------------------------------------------
    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _emit(self, kind: TokenKind, text: str, location: SourceLocation) -> None:
        if kind is TokenKind.LBRACKET:
            self._groups.append("[")
        elif kind is TokenKind.LPAREN:
            self._groups.append("(")
        elif kind in (TokenKind.RBRACKET, TokenKind.RPAREN) and self._groups:
            self._groups.pop()
        self.tokens.append(Token(kind, text, location))

    @property
    def _in_bracket(self) -> bool:
        return bool(self._groups) and self._groups[-1] == "["

    def _previous_kind(self) -> TokenKind | None:
        return self.tokens[-1].kind if self.tokens else None

    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r":
                if self._in_bracket and self._bracket_space_separates():
                    location = self._location()
                    while self._peek() in " \t\r":
                        self._advance()
                    self._emit(TokenKind.COMMA, ",", location)
                    continue
                self._advance()
                continue
            if ch == "%":
                while self._peek() and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "." and self.source.startswith("...", self.pos):
                # Continuation: swallow through end of line.
                while self._peek() and self._peek() != "\n":
                    self._advance()
                self._advance()  # the newline itself
                continue
            if ch == "\n":
                location = self._location()
                self._advance()
                if self._in_bracket:
                    # A newline inside brackets is a row separator.
                    if self._previous_kind() not in (
                        TokenKind.SEMICOLON,
                        TokenKind.LBRACKET,
                    ):
                        self._emit(TokenKind.SEMICOLON, ";", location)
                elif self._previous_kind() not in (None, TokenKind.NEWLINE):
                    self._emit(TokenKind.NEWLINE, "\n", location)
                continue
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                self._scan_number()
                continue
            if ch.isalpha() or ch == "_":
                self._scan_identifier()
                continue
            if ch == "'":
                if self._previous_kind() in _TRANSPOSE_CONTEXT:
                    location = self._location()
                    self._advance()
                    self._emit(TokenKind.QUOTE, "'", location)
                else:
                    self._scan_string()
                continue
            two = self.source[self.pos: self.pos + 2]
            if two in _TWO_CHAR:
                location = self._location()
                self._advance(2)
                self._emit(_TWO_CHAR[two], two, location)
                continue
            if ch in _ONE_CHAR:
                location = self._location()
                self._advance()
                self._emit(_ONE_CHAR[ch], ch, location)
                continue
            raise LexError(f"unexpected character {ch!r}", self._location())
        self._emit(TokenKind.EOF, "", self._location())
        return self.tokens

    def _bracket_space_separates(self) -> bool:
        """MATLAB's whitespace rule inside ``[...]``.

        A run of spaces separates two elements when the previous token ends
        an expression and the upcoming text starts one.  ``[1 -2]`` has two
        elements; ``[1 - 2]`` has one.
        """
        if self._previous_kind() not in _TRANSPOSE_CONTEXT:
            return False
        offset = 0
        while self._peek(offset) in " \t\r":
            offset += 1
        nxt = self._peek(offset)
        if not nxt or nxt in "*/\\^=<>&|,;:)]%\n":
            return False
        if nxt == ".":
            after = self._peek(offset + 1)
            return bool(after.isdigit())
        if nxt in "+-":
            after = self._peek(offset + 1)
            return bool(after) and after not in " \t\r="
        if nxt == "~":
            return self._peek(offset + 1) != "="
        if nxt == "'":
            return True  # string literal element
        return nxt.isalnum() or nxt in "_(["

    # ------------------------------------------------------------------
    def _scan_number(self) -> None:
        location = self._location()
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != "." and not self._peek(1).isalpha():
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start: self.pos]
        if self._peek() and self._peek() in "ij" and not (
            self._peek(1).isalnum() or self._peek(1) == "_"
        ):
            self._advance()
            self._emit(TokenKind.IMAGINARY, text, location)
            return
        self._emit(TokenKind.NUMBER, text, location)

    def _scan_identifier(self) -> None:
        location = self._location()
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start: self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        self._emit(kind, text, location)

    def _scan_string(self) -> None:
        location = self._location()
        self._advance()  # opening quote
        chunks: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", location)
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    chunks.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            chunks.append(ch)
            self._advance()
        self._emit(TokenKind.STRING, "".join(chunks), location)


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Scan ``source`` into a token list ending with EOF."""
    return Lexer(source, filename).tokenize()
