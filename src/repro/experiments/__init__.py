"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`~repro.experiments.table1` — benchmark inventory;
* :mod:`~repro.experiments.figure4` — speedups, SPARC platform;
* :mod:`~repro.experiments.figure5` — speedups, MIPS platform;
* :mod:`~repro.experiments.figure6` — composition of JIT execution time;
* :mod:`~repro.experiments.figure7` — disabling JIT optimizations;
* :mod:`~repro.experiments.table2` — JIT vs. speculative type inference;
* :mod:`~repro.experiments.responsiveness` — foreground-visible compile
  cost: cold vs. background vs. warm disk cache;
* :mod:`~repro.experiments.adaptive` — profile-guided adaptive tiering
  vs. each static tier over a mixed call stream.
"""

from repro.experiments.harness import (
    ENGINES,
    RunResult,
    run_benchmark,
    speedup_table,
)

__all__ = ["ENGINES", "RunResult", "run_benchmark", "speedup_table"]
