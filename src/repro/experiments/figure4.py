"""Figure 4: performance on the SPARC platform.

Four bars per benchmark — mcc, FALCON, MaJIC JIT (compile time included),
MaJIC speculative (compiled ahead of time) — as speedups over the
interpreter, on a log scale.

FALCON bars are omitted for ``ackermann``, ``fractal``, ``fibonacci`` and
``mandel``: "these were not part of the original FALCON benchmark series
and are unsuitable for compilation with FALCON" (recursion; the builtin
``i``).  We still *can* run them, but the figure reproduces the paper's
omission; the full data is available from the harness.
"""

from __future__ import annotations

from repro.benchsuite.registry import benchmark_names
from repro.core.platformcfg import SPARC
from repro.experiments.harness import speedup_table
from repro.experiments.report import render_speedup_chart

#: Benchmarks whose FALCON bars the paper omits.
FALCON_OMITTED = frozenset({"ackermann", "fractal", "fibonacci", "mandel"})

ENGINES = ("mcc", "falcon", "jit", "spec")


def generate(
    names: list[str] | None = None,
    repeats: int = 3,
    scale_overrides: dict[str, tuple] | None = None,
) -> dict[str, dict[str, float]]:
    names = names or benchmark_names()
    table = speedup_table(
        names,
        engines=ENGINES,
        platform=SPARC,
        repeats=repeats,
        scale_overrides=scale_overrides,
    )
    for name in FALCON_OMITTED:
        if name in table:
            table[name].pop("falcon", None)
    return table


def render(table: dict[str, dict[str, float]]) -> str:
    return render_speedup_chart(
        table, engines=ENGINES,
        title="Figure 4: Performance on the SPARC platform",
    )


def main() -> str:  # pragma: no cover - CLI convenience
    text = render(generate(repeats=1))
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
