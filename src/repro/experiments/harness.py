"""The measurement harness (Section 3.2's methodology).

* the gauge is speedup ``s = t_i / t_c`` over the interpreter;
* JIT runtimes *include* JIT compile time (fresh, empty repository per
  run); speculative runtimes assume the repository compiled ahead of time
  (compile excluded) unless the speculative code fails to match, in which
  case the JIT kicks in during the run;
* mcc and FALCON are batch compilers measured with compilation excluded;
* times are "best of N runs".

The shared random stream is reseeded identically before every run so
randomized benchmarks compute identical results under every engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.falcon import FalconCompilerEngine
from repro.baselines.mcc import MccCompilerEngine
from repro.benchsuite.registry import benchmark, source_of
from repro.benchsuite.workloads import boxed_workload, checksum
from repro.core.majic import MajicSession, ensure_recursion_limit
from repro.core.platformcfg import AblationFlags, PlatformConfig, SPARC
from repro.core.timing import ExecutionBreakdown
from repro.frontend.parser import parse
from repro.interp.interpreter import Interpreter
from repro.runtime.builtins import GLOBAL_RANDOM
from repro.runtime.display import OutputSink

ENGINES = ("interp", "mcc", "falcon", "jit", "spec")

_SEED = 12345


@dataclass
class RunResult:
    """One benchmark × engine measurement."""

    benchmark: str
    engine: str
    platform: str
    runtime_s: float
    checksum: float
    repeats: int
    compile_s: float = 0.0           # excluded (batch/speculative) compile
    breakdown: ExecutionBreakdown | None = None
    scale: tuple = ()
    #: The measured session, kept only when observability was requested
    #: (``run_benchmark(trace=..., metrics=...)``) so callers can export
    #: the trace/metrics of the best run.
    session: object = None


def _sources(name: str) -> list[str]:
    spec = benchmark(name)
    return [source_of(name)] + [source_of(h) for h in spec.helpers]


def _result_digest(outputs) -> float:
    return checksum(outputs[0]) if outputs else 0.0


# ----------------------------------------------------------------------
# Engine runners
# ----------------------------------------------------------------------
def _run_interp(name: str, args, nargout: int, repeats: int):
    table = {}
    for text in _sources(name):
        program = parse(text)
        for fn in program.functions:
            table[fn.name] = fn
    interp = Interpreter(function_lookup=table.get, sink=OutputSink())
    best = float("inf")
    digest = 0.0
    for _ in range(repeats):
        GLOBAL_RANDOM.seed(_SEED)
        fresh_args = [a.copy() for a in args]
        start = time.perf_counter()
        outputs = interp.call_function(table[name], fresh_args, nargout)
        best = min(best, time.perf_counter() - start)
        digest = _result_digest(outputs)
    return best, digest, 0.0, None


def _run_jit(
    name: str, args, nargout: int, repeats: int,
    platform: PlatformConfig, ablation: AblationFlags,
    trace: bool = False, metrics: bool = False,
):
    best = float("inf")
    digest = 0.0
    breakdown = None
    kept = None
    for _ in range(repeats):
        session = MajicSession(
            platform=platform, ablation=ablation, seed=None,
            trace=trace, metrics=metrics,
        )
        for text in _sources(name):
            session.add_source(text)
        GLOBAL_RANDOM.seed(_SEED)
        fresh_args = [a.copy() for a in args]
        start = time.perf_counter()
        outputs = session.call_boxed(name, fresh_args, nargout=nargout)
        elapsed = time.perf_counter() - start
        digest = _result_digest(outputs)
        if elapsed < best:
            best = elapsed
            if trace:
                # Spans carry the full phase/execution attribution, so the
                # Figure 6 breakdown comes straight from the trace.
                breakdown = ExecutionBreakdown.from_spans(
                    session.obs.tracer.spans()
                )
            else:
                breakdown = ExecutionBreakdown()
                for _, mode, phases in session.repository.compile_log:
                    if mode == "jit":
                        breakdown.add_phases(phases)
                breakdown.execution = max(elapsed - breakdown.compile, 0.0)
            if trace or metrics:
                kept = session
    return best, digest, 0.0, breakdown, kept


def _run_spec(
    name: str, args, nargout: int, repeats: int,
    platform: PlatformConfig, ablation: AblationFlags,
    trace: bool = False, metrics: bool = False,
):
    session = MajicSession(
        platform=platform, ablation=ablation, seed=None,
        trace=trace, metrics=metrics,
    )
    for text in _sources(name):
        session.add_source(text)
    compile_start = time.perf_counter()
    session.speculate_all()
    hidden_compile = time.perf_counter() - compile_start
    best = float("inf")
    digest = 0.0
    for _ in range(repeats):
        GLOBAL_RANDOM.seed(_SEED)
        fresh_args = [a.copy() for a in args]
        start = time.perf_counter()
        outputs = session.call_boxed(name, fresh_args, nargout=nargout)
        best = min(best, time.perf_counter() - start)
        digest = _result_digest(outputs)
    breakdown = (
        ExecutionBreakdown.from_spans(session.obs.tracer.spans())
        if trace else None
    )
    kept = session if (trace or metrics) else None
    return best, digest, hidden_compile, breakdown, kept


def _run_baseline(
    engine_name: str, name: str, args, nargout: int, repeats: int,
    platform: PlatformConfig,
):
    if engine_name == "mcc":
        engine = MccCompilerEngine()
    else:
        engine = FalconCompilerEngine(
            native_opt_level=platform.native_opt_level
        )
    for text in _sources(name):
        engine.add_source(text)
    # Warm-up call performs batch compilation (excluded from runtime).
    GLOBAL_RANDOM.seed(_SEED)
    engine.execute(name, [a.copy() for a in args], nargout)
    best = float("inf")
    digest = 0.0
    for _ in range(repeats):
        GLOBAL_RANDOM.seed(_SEED)
        fresh_args = [a.copy() for a in args]
        start = time.perf_counter()
        outputs = engine.execute(name, fresh_args, nargout)
        best = min(best, time.perf_counter() - start)
        digest = _result_digest(outputs)
    return best, digest, engine.compile_seconds, None


# ----------------------------------------------------------------------
def run_benchmark(
    name: str,
    engine: str = "jit",
    platform: PlatformConfig = SPARC,
    scale: tuple | None = None,
    repeats: int = 3,
    ablation: AblationFlags | None = None,
    nargout: int = 1,
    trace: bool = False,
    metrics: bool = False,
) -> RunResult:
    """Measure one benchmark under one engine; best-of-``repeats``.

    ``trace``/``metrics`` (jit/spec engines only) turn on the session's
    observability recorders; the best run's session rides along on
    ``RunResult.session`` for export, and a traced jit/spec breakdown is
    derived from the span tree instead of wall-clock subtraction.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    # The bare-interpreter and baseline engines run without a MajicSession,
    # so request the recursion headroom (ackermann) explicitly here.
    ensure_recursion_limit(platform.host_recursion_limit)
    spec = benchmark(name)
    scale = tuple(scale if scale is not None else spec.default_scale)
    args = boxed_workload(name, scale)
    ablation = ablation or AblationFlags()
    session = None

    if engine == "interp":
        best, digest, hidden, breakdown = _run_interp(
            name, args, nargout, repeats
        )
    elif engine == "jit":
        best, digest, hidden, breakdown, session = _run_jit(
            name, args, nargout, repeats, platform, ablation,
            trace=trace, metrics=metrics,
        )
    elif engine == "spec":
        best, digest, hidden, breakdown, session = _run_spec(
            name, args, nargout, repeats, platform, ablation,
            trace=trace, metrics=metrics,
        )
    else:
        best, digest, hidden, breakdown = _run_baseline(
            engine, name, args, nargout, repeats, platform
        )
    return RunResult(
        benchmark=name,
        engine=engine,
        platform=platform.name,
        runtime_s=best,
        checksum=digest,
        repeats=repeats,
        compile_s=hidden,
        breakdown=breakdown,
        scale=scale,
        session=session,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: measure one benchmark, optionally with observability exports.

    Usage::

        PYTHONPATH=src python -m repro.experiments.harness fibonacci \\
            --engine jit --trace --metrics \\
            --trace-out trace.json --metrics-out metrics.prom
    """
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("benchmark", help="benchsuite program to measure")
    parser.add_argument("--engine", default="jit", choices=ENGINES)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--scale", type=float, nargs="*", default=None,
        help="override the benchmark's default workload scale",
    )
    parser.add_argument("--trace", action="store_true",
                        help="record hierarchical spans (jit/spec engines)")
    parser.add_argument("--metrics", action="store_true",
                        help="record the metrics registry (jit/spec engines)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write Chrome-trace JSON of the best run")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write Prometheus text of the best run")
    options = parser.parse_args(argv)
    trace = options.trace or options.trace_out is not None
    metrics = options.metrics or options.metrics_out is not None
    scale = tuple(options.scale) if options.scale else None
    result = run_benchmark(
        options.benchmark,
        engine=options.engine,
        scale=scale,
        repeats=options.repeats,
        trace=trace,
        metrics=metrics,
    )
    print(
        f"{result.benchmark} [{result.engine}] best of {result.repeats}: "
        f"{result.runtime_s:.6f}s (checksum {result.checksum})"
    )
    if result.breakdown is not None:
        shares = result.breakdown.fractions()
        print(
            "breakdown: "
            + ", ".join(f"{k}={v:.1%}" for k, v in shares.items())
        )
    session = result.session
    if session is not None:
        print()
        print(session.summary())
        if options.trace_out:
            with open(options.trace_out, "w", encoding="utf-8") as handle:
                handle.write(session.trace_json())
            print(f"trace written to {options.trace_out}")
        if options.metrics_out:
            with open(options.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(session.metrics_text())
            print(f"metrics written to {options.metrics_out}")
        session.close()
    return 0


def speedup_table(
    names: list[str],
    engines: tuple[str, ...] = ("mcc", "falcon", "jit", "spec"),
    platform: PlatformConfig = SPARC,
    repeats: int = 3,
    scale_overrides: dict[str, tuple] | None = None,
) -> dict[str, dict[str, float]]:
    """Speedups over the interpreter for a set of benchmarks/engines."""
    overrides = scale_overrides or {}
    table: dict[str, dict[str, float]] = {}
    for name in names:
        scale = overrides.get(name)
        base = run_benchmark(
            name, "interp", platform=platform, scale=scale, repeats=repeats
        )
        row: dict[str, float] = {"interp_s": base.runtime_s}
        for engine in engines:
            result = run_benchmark(
                name, engine, platform=platform, scale=scale, repeats=repeats
            )
            row[engine] = (
                base.runtime_s / result.runtime_s
                if result.runtime_s > 0
                else float("inf")
            )
        table[name] = row
    return table


if __name__ == "__main__":
    raise SystemExit(main())
