"""Table 1: the benchmark inventory.

Regenerates the paper's table — name, source, description, problem size,
lines of code, and interpreted runtime — with both the paper's reported
values and our measurements at the configured scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.registry import (
    BENCHMARKS,
    actual_lines,
    benchmark,
    benchmark_names,
)
from repro.experiments.harness import run_benchmark
from repro.experiments.report import format_table


@dataclass
class Table1Row:
    name: str
    source: str
    description: str
    paper_size: str
    paper_lines: int
    paper_runtime_s: float
    our_scale: tuple
    our_lines: int
    our_interp_runtime_s: float


def generate(
    names: list[str] | None = None,
    repeats: int = 3,
    use_paper_scale: bool = False,
) -> list[Table1Row]:
    rows = []
    for name in names or benchmark_names():
        spec = benchmark(name)
        scale = spec.paper_scale if use_paper_scale else spec.default_scale
        result = run_benchmark(name, "interp", scale=scale, repeats=repeats)
        rows.append(
            Table1Row(
                name=name,
                source=spec.source,
                description=spec.description,
                paper_size=spec.paper_problem_size,
                paper_lines=spec.paper_lines,
                paper_runtime_s=spec.paper_runtime_s,
                our_scale=scale,
                our_lines=actual_lines(name),
                our_interp_runtime_s=result.runtime_s,
            )
        )
    return rows


def render(rows: list[Table1Row]) -> str:
    return format_table(
        [
            "benchmark", "source", "description", "paper size",
            "paper LoC", "paper t_i(s)", "our scale", "our LoC",
            "our t_i(s)",
        ],
        [
            [
                r.name, r.source, r.description, r.paper_size,
                r.paper_lines, r.paper_runtime_s, str(r.our_scale),
                r.our_lines, r.our_interp_runtime_s,
            ]
            for r in rows
        ],
    )


def main() -> str:  # pragma: no cover - CLI convenience
    text = render(generate(repeats=1))
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
