"""ASCII rendering of experiment results (tables and log-scale bars)."""

from __future__ import annotations

import math


def format_table(headers: list[str], rows: list[list]) -> str:
    """Simple fixed-width table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = [
        "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([line, rule] + body)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def log_bar(value: float, lo: float = 0.1, hi: float = 1000.0, width: int = 40) -> str:
    """One log-scale bar, the Figure 4/5 visual."""
    if value <= 0 or math.isnan(value):
        return ""
    clamped = min(max(value, lo), hi)
    fraction = (math.log10(clamped) - math.log10(lo)) / (
        math.log10(hi) - math.log10(lo)
    )
    return "#" * max(int(fraction * width), 1)


def render_speedup_chart(
    table: dict[str, dict[str, float]],
    engines: tuple[str, ...] = ("mcc", "falcon", "jit", "spec"),
    title: str = "",
) -> str:
    """Log-scale grouped bar chart as text (Figures 4 and 5)."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"(log scale, {0.1} .. {1000}x speedup over the interpreter)")
    for name, row in table.items():
        lines.append(f"{name}")
        for engine in engines:
            value = row.get(engine)
            if value is None:
                lines.append(f"  {engine:7s} (not run)")
                continue
            lines.append(
                f"  {engine:7s} {log_bar(value)} {value:.2f}x"
            )
    return "\n".join(lines)


def render_stacked_fractions(
    rows: dict[str, dict[str, float]],
    parts: tuple[str, ...] = ("disamb", "typeinf", "codegen", "exec"),
    width: int = 50,
) -> str:
    """Figure 6's 100% stacked bars, in text."""
    symbols = {"disamb": "d", "typeinf": "t", "codegen": "c", "exec": "."}
    lines = [f"100% stacked: {', '.join(f'{symbols[p]}={p}' for p in parts)}"]
    for name, fractions in rows.items():
        bar = ""
        for part in parts:
            count = int(round(fractions.get(part, 0.0) * width))
            bar += symbols[part] * count
        bar = (bar + "." * width)[:width]
        shares = " ".join(
            f"{part}={fractions.get(part, 0.0) * 100:.1f}%" for part in parts
        )
        lines.append(f"{name:10s} |{bar}| {shares}")
    return "\n".join(lines)
