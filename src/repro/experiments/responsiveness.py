"""The responsiveness experiment: hiding compile time behind think-time.

The paper's central responsiveness claim is that speculative compilation
moves compile time *off the user's critical path*: the foreground prompt
should never block on the compiler.  This experiment measures the
foreground-visible cost of preparing a whole program three ways:

* **cold (synchronous)** — a fresh session runs :meth:`speculate_all` on
  the foreground thread; the prompt blocks for the full compile time.
  This is the worst case the paper sets out to eliminate.
* **cold (background)** — the same fresh program, but speculation is
  *submitted* to the worker pool (:meth:`speculate_async`) and the
  foreground-visible cost is just the enqueue; compilation proceeds
  off-thread while the "user" thinks.
* **warm (disk cache)** — a later session over the same sources with the
  persistent repository cache populated; every compiled object loads
  from disk and the session compiles **zero** functions.

Usage::

    PYTHONPATH=src python -m repro.experiments.responsiveness
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass

from repro.benchsuite.registry import benchmark, benchmark_names, source_of
from repro.core.majic import MajicSession
from repro.experiments.report import format_table

#: A representative subset: recursive scalar code, Fortran-style loops,
#: small-vector code and an iterative solver.
DEFAULT_NAMES = ("fibonacci", "dirich", "fractal", "cgopt")


@dataclass
class Phase:
    """One way of preparing the program, and what the prompt paid for it."""

    label: str
    foreground_s: float  #: time the user's prompt was blocked
    total_s: float  #: wall clock until all compilation had finished
    compiles: int  #: functions actually compiled in this phase
    cache_hits: int  #: compiled objects served from the disk cache


def _sources(names: tuple[str, ...] | list[str]) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for name in names:
        spec = benchmark(name)
        for item in (name, *spec.helpers):
            if item not in seen:
                seen.add(item)
                out.append(source_of(item))
    return out


def _cold(sources: list[str], cache_dir) -> Phase:
    session = MajicSession(cache_dir=cache_dir)
    for text in sources:
        session.add_source(text)
    start = time.perf_counter()
    session.speculate_all()
    elapsed = time.perf_counter() - start
    return Phase(
        "cold (synchronous)",
        foreground_s=elapsed,
        total_s=elapsed,
        compiles=session.stats.speculative_compiles,
        cache_hits=session.stats.cache_hits,
    )


def _background(sources: list[str], workers: int | None = None) -> Phase:
    with MajicSession(background=True, workers=workers) as session:
        for text in sources:
            session.add_source(text)
        start = time.perf_counter()
        session.speculate_async()
        foreground = time.perf_counter() - start  # the prompt is free again
        drained = session.drain_speculation(timeout=300)
        total = time.perf_counter() - start
        assert drained, "background speculation did not finish"
        return Phase(
            "cold (background)",
            foreground_s=foreground,
            total_s=total,
            compiles=session.stats.background_compiles,
            cache_hits=session.stats.cache_hits,
        )


def _warm(sources: list[str], cache_dir) -> Phase:
    session = MajicSession(cache_dir=cache_dir)
    for text in sources:
        session.add_source(text)
    start = time.perf_counter()
    session.speculate_all()
    elapsed = time.perf_counter() - start
    return Phase(
        "warm (disk cache)",
        foreground_s=elapsed,
        total_s=elapsed,
        compiles=session.stats.speculative_compiles,
        cache_hits=session.stats.cache_hits,
    )


def generate(
    names: tuple[str, ...] | list[str] | None = None,
    cache_dir=None,
    workers: int | None = None,
) -> dict[str, Phase]:
    """Measure all three phases over one program set.

    ``cache_dir`` holds the persistent cache shared by the cold and warm
    synchronous phases (a throwaway temp directory by default); the
    background phase runs uncached so its compiles are real.
    """
    names = tuple(names or DEFAULT_NAMES)
    unknown = set(names) - set(benchmark_names())
    if unknown:
        raise ValueError(f"unknown benchmarks: {sorted(unknown)}")
    sources = _sources(names)
    if cache_dir is None:
        with tempfile.TemporaryDirectory(prefix="pymajic-resp-") as tmp:
            cold = _cold(sources, tmp)
            warm = _warm(sources, tmp)
    else:
        cold = _cold(sources, cache_dir)
        warm = _warm(sources, cache_dir)
    background = _background(sources, workers=workers)
    return {"cold": cold, "background": background, "warm": warm}


def render(phases: dict[str, Phase]) -> str:
    header = (
        "Responsiveness: foreground-visible compile cost, three ways\n"
        "(background hides t_c behind think-time; the warm cache removes it)"
    )
    table = format_table(
        ["phase", "foreground (ms)", "total (ms)", "compiles", "cache hits"],
        [
            [
                phase.label,
                f"{phase.foreground_s * 1e3:.2f}",
                f"{phase.total_s * 1e3:.2f}",
                phase.compiles,
                phase.cache_hits,
            ]
            for phase in phases.values()
        ],
    )
    return header + "\n" + table


def main() -> str:  # pragma: no cover - CLI convenience
    text = render(generate())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
