"""Table 2: JIT vs. speculative type inference.

"[Table 2] compares the speedups produced by the same code generator using
type annotations generated with either speculation or JIT type inference
(the speedups were calculated without considering compile time)."

Both columns therefore run the *same* (optimizing) code generator on the
SPARC configuration; only the origin of the type annotations differs:

* **JIT** — forward inference from the invocation's actual signature;
* **spec** — the speculator's backward/forward alternation, no calling
  context.  When the speculated signature does not accept the actual
  invocation, the JIT kicks in and the run uses invocation-derived
  annotations (the paper's recursive-benchmark case).

Compile time is excluded (batch warm-up before timing).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.engine import BaselineEngine
from repro.benchsuite.registry import benchmark_names
from repro.codegen.jitgen import CompiledObject
from repro.codegen.srcgen import SourceCompiler, SrcOptions
from repro.experiments.harness import _SEED, _sources, run_benchmark
from repro.experiments.report import format_table
from repro.frontend import ast_nodes as ast
from repro.inference.speculation import Speculator
from repro.runtime.builtins import GLOBAL_RANDOM
from repro.runtime.mxarray import MxArray
from repro.typesys.signature import Signature, signature_of_values
from repro.benchsuite.workloads import boxed_workload


class AnnotationEngine(BaselineEngine):
    """Optimizing codegen fed by either JIT or speculative annotations."""

    def __init__(self, use_speculation: bool, native_opt_level: int = 1):
        super().__init__()
        self.use_speculation = use_speculation
        self.options = SrcOptions(
            native_opt_level=native_opt_level, majic_opts=True
        )
        self.spec_misses: list[str] = []

    def _compile(self, name: str, example_args: list[MxArray]) -> CompiledObject:
        fn = self.prepared(name)
        compiler = SourceCompiler(self.options)
        invocation_sig = signature_of_values(example_args)
        if _has_dynamic_calls(fn, self.knows):
            invocation_sig = Signature.of(
                t.widen_range() for t in invocation_sig.types
            )
        if self.use_speculation:
            result = Speculator(options=self.options.inference).speculate(fn)
            padded = _pad(invocation_sig, len(result.signature))
            if result.signature.accepts(padded):
                return compiler.compile(
                    fn, result.signature,
                    annotations=result.annotations, mode="spec-ann",
                    is_user_function=self.knows,
                )
            # Speculation failed the safety check: the JIT kicks in with
            # invocation-derived annotations.
            self.spec_misses.append(name)
        return compiler.compile(
            fn, invocation_sig, mode="jit-ann", is_user_function=self.knows
        )


def _pad(signature: Signature, arity: int) -> Signature:
    from repro.typesys.mtype import MType

    if len(signature) >= arity:
        return signature
    return Signature.of(
        list(signature.types)
        + [MType.bottom() for _ in range(arity - len(signature))]
    )


def _has_dynamic_calls(fn: ast.FunctionDef, knows) -> bool:
    for stmt in ast.walk_stmts(fn.body):
        for expr in ast.stmt_exprs(stmt):
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.Apply) and knows(node.name):
                    return True
    return False


@dataclass
class Table2Row:
    benchmark: str
    spec_speedup: float
    jit_speedup: float
    spec_missed: bool  # runtime recompilation was required


def _measure(engine: AnnotationEngine, name: str, args, repeats: int) -> float:
    GLOBAL_RANDOM.seed(_SEED)
    engine.execute(name, [a.copy() for a in args], 1)  # warm-up compile
    best = float("inf")
    for _ in range(repeats):
        GLOBAL_RANDOM.seed(_SEED)
        fresh = [a.copy() for a in args]
        start = time.perf_counter()
        engine.execute(name, fresh, 1)
        best = min(best, time.perf_counter() - start)
    return best


def generate(
    names: list[str] | None = None,
    repeats: int = 3,
    scale_overrides: dict[str, tuple] | None = None,
) -> list[Table2Row]:
    overrides = scale_overrides or {}
    rows = []
    for name in names or benchmark_names():
        scale = overrides.get(name)
        interp = run_benchmark(name, "interp", scale=scale, repeats=repeats)
        args = boxed_workload(name, scale)

        jit_engine = AnnotationEngine(use_speculation=False)
        spec_engine = AnnotationEngine(use_speculation=True)
        for text in _sources(name):
            jit_engine.add_source(text)
            spec_engine.add_source(text)
        jit_time = _measure(jit_engine, name, args, repeats)
        spec_time = _measure(spec_engine, name, args, repeats)
        rows.append(
            Table2Row(
                benchmark=name,
                spec_speedup=interp.runtime_s / spec_time if spec_time else 0.0,
                jit_speedup=interp.runtime_s / jit_time if jit_time else 0.0,
                spec_missed=bool(spec_engine.spec_misses),
            )
        )
    return rows


def render(rows: list[Table2Row]) -> str:
    header = "Table 2: JIT vs. speculative type inference (compile time excluded)"
    table = format_table(
        ["benchmark", "spec.", "JIT", "spec/JIT", "runtime recompile"],
        [
            [
                r.benchmark,
                r.spec_speedup,
                r.jit_speedup,
                r.spec_speedup / r.jit_speedup if r.jit_speedup else 0.0,
                "yes" if r.spec_missed else "",
            ]
            for r in rows
        ],
    )
    return header + "\n" + table


def main() -> str:  # pragma: no cover - CLI convenience
    text = render(generate(repeats=1))
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
