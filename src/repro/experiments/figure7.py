"""Figure 7: the effect of disabling individual JIT optimizations.

For each benchmark, the JIT runtime with one optimization disabled is
compared against the fully optimized JIT (performance relative to full
JIT, so 100% = no loss):

* **no ranges** — range propagation off; primarily disables subscript
  check removal (array-access-heavy codes suffer most);
* **no min. shapes** — minimum-shape propagation off; disables some check
  removal and all small-vector unrolling (small-vector codes suffer most);
* **no regalloc** — the linear-scan allocator spills every register
  ("roughly equivalent to compiling with -g").

Following the paper's intent (it isolates *steady-state* code quality,
not compile time), runtimes here exclude JIT compile time.
"""

from __future__ import annotations

from repro.benchsuite.registry import benchmark_names
from repro.core.platformcfg import AblationFlags, SPARC
from repro.experiments.harness import run_benchmark
from repro.experiments.report import format_table

ABLATIONS = {
    "no ranges": AblationFlags(no_ranges=True),
    "no min. shapes": AblationFlags(no_min_shapes=True),
    "no regalloc": AblationFlags(no_regalloc=True),
}


def _execution_time(result) -> float:
    if result.breakdown is not None:
        return result.breakdown.execution
    return result.runtime_s


def generate(
    names: list[str] | None = None,
    repeats: int = 3,
    scale_overrides: dict[str, tuple] | None = None,
) -> dict[str, dict[str, float]]:
    """benchmark -> {ablation label: performance relative to full JIT}."""
    overrides = scale_overrides or {}
    rows: dict[str, dict[str, float]] = {}
    for name in names or benchmark_names():
        scale = overrides.get(name)
        full = run_benchmark(
            name, "jit", platform=SPARC, scale=scale, repeats=repeats
        )
        full_time = _execution_time(full)
        row: dict[str, float] = {}
        for label, flags in ABLATIONS.items():
            ablated = run_benchmark(
                name, "jit", platform=SPARC, scale=scale,
                repeats=repeats, ablation=flags,
            )
            ablated_time = _execution_time(ablated)
            row[label] = full_time / ablated_time if ablated_time > 0 else 1.0
        rows[name] = row
    return rows


def render(rows: dict[str, dict[str, float]]) -> str:
    labels = list(ABLATIONS)
    header = "Figure 7: Disabling JIT optimizations (performance relative to fully optimized JIT)"
    table = format_table(
        ["benchmark"] + labels,
        [
            [name] + [f"{row.get(label, 1.0) * 100:.0f}%" for label in labels]
            for name, row in rows.items()
        ],
    )
    return header + "\n" + table


def main() -> str:  # pragma: no cover - CLI convenience
    text = render(generate(repeats=1))
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
