"""The Section 5 hand-optimization experiment.

"In order to estimate the effect of adding more optimizations to the JIT
compiler, we hand-optimized the finedif benchmark by hand-unrolling its
innermost loop and performing common subexpression elimination.  We
obtained a version of finedif that was almost 100% faster than the normal
JIT-compiled finedif, and within 20% of the performance of the best
(native compiler-generated) version of the code."

We replay the experiment: ``HAND_OPTIMIZED`` is finedif with its inner
i-loop unrolled by two and the repeated subexpressions factored into
temporaries, exactly the transformations named above.  The harness
measures (a) plain JIT finedif, (b) JIT hand-optimized finedif, and
(c) the best ahead-of-time code, all with compile time excluded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.benchsuite.registry import source_of
from repro.benchsuite.workloads import boxed_workload
from repro.core.majic import MajicSession
from repro.core.platformcfg import SPARC
from repro.runtime.builtins import GLOBAL_RANDOM

#: finedif with the innermost loop unrolled 2x and CSE applied by hand.
HAND_OPTIMIZED = """
function U = finedif_hand(n, m, c)
h = 1 / (n - 1);
k = 1 / (m - 1);
r = c * k / h;
r2 = r * r;
r22 = r * r / 2;
s1 = 1 - r * r;
s2 = 2 - 2 * r * r;
U = zeros(n, m);
for i = 2:n-1,
  x = h * (i - 1);
  sx = sin(pi * x);
  U(i, 1) = sx;
  U(i, 2) = s1 * sx + r22 * (sin(pi * (x + h)) + sin(pi * (x - h)));
end
odd = mod(n - 2, 2);
last = n - 1 - odd;
for j = 3:m,
  jm1 = j - 1;
  jm2 = j - 2;
  for i = 2:2:last-1,
    um = U(i-1, jm1);
    u0 = U(i, jm1);
    up = U(i+1, jm1);
    upp = U(i+2, jm1);
    U(i, j) = s2 * u0 + r2 * (um + up) - U(i, jm2);
    U(i+1, j) = s2 * up + r2 * (u0 + upp) - U(i+1, jm2);
  end
  if odd > 0,
    U(n-1, j) = s2 * U(n-1, jm1) + r2 * (U(n-2, jm1) + U(n, jm1)) - U(n-1, jm2);
  end
end
"""


@dataclass
class HandOptResult:
    jit_s: float
    hand_s: float
    best_aot_s: float

    @property
    def hand_gain(self) -> float:
        """How much faster the hand-optimized JIT code is (paper: ~2x)."""
        return self.jit_s / self.hand_s

    @property
    def gap_to_best(self) -> float:
        """hand-optimized time relative to the best AOT code
        (paper: within 20%, i.e. <= ~1.2)."""
        return self.hand_s / self.best_aot_s


def _steady_state(session: MajicSession, name: str, args, repeats: int) -> float:
    GLOBAL_RANDOM.seed(0)
    session.call_boxed(name, [a.copy() for a in args], nargout=1)  # compile
    best = float("inf")
    for _ in range(repeats):
        GLOBAL_RANDOM.seed(0)
        start = time.perf_counter()
        session.call_boxed(name, [a.copy() for a in args], nargout=1)
        best = min(best, time.perf_counter() - start)
    return best


def generate(scale: tuple = (64, 64, 1.0), repeats: int = 3) -> HandOptResult:
    args = boxed_workload("finedif", scale)

    jit = MajicSession(platform=SPARC)
    jit.add_source(source_of("finedif"))
    jit_s = _steady_state(jit, "finedif", args, repeats)

    hand = MajicSession(platform=SPARC)
    hand.add_source(HAND_OPTIMIZED)
    hand_s = _steady_state(hand, "finedif_hand", args, repeats)

    best = MajicSession(platform=SPARC)
    best.add_source(source_of("finedif"))
    best.speculate_all()
    best_s = _steady_state(best, "finedif", args, repeats)

    return HandOptResult(jit_s=jit_s, hand_s=hand_s, best_aot_s=best_s)


def render(result: HandOptResult) -> str:
    return "\n".join(
        [
            "Section 5 hand-optimization experiment (finedif)",
            f"  plain JIT             : {result.jit_s * 1e3:9.2f} ms",
            f"  hand-optimized JIT    : {result.hand_s * 1e3:9.2f} ms "
            f"({result.hand_gain:.2f}x faster; paper: ~2x)",
            f"  best ahead-of-time    : {result.best_aot_s * 1e3:9.2f} ms "
            f"(hand-optimized is {result.gap_to_best:.2f}x of it; "
            "paper: within 20%)",
        ]
    )


def main() -> str:  # pragma: no cover - CLI convenience
    text = render(generate())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
