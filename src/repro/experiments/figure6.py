"""Figure 6: the composition of JIT execution time.

For each benchmark run in JIT mode from an empty repository, the fraction
of total runtime spent in disambiguation, type inference, code generation
and actual execution (a 100% stacked bar per benchmark in the paper).
"""

from __future__ import annotations

from repro.benchsuite.registry import benchmark_names
from repro.core.platformcfg import SPARC
from repro.experiments.harness import run_benchmark
from repro.experiments.report import render_stacked_fractions


def generate(
    names: list[str] | None = None,
    repeats: int = 3,
    scale_overrides: dict[str, tuple] | None = None,
) -> dict[str, dict[str, float]]:
    overrides = scale_overrides or {}
    rows: dict[str, dict[str, float]] = {}
    for name in names or benchmark_names():
        result = run_benchmark(
            name, "jit", platform=SPARC,
            scale=overrides.get(name), repeats=repeats,
        )
        assert result.breakdown is not None
        rows[name] = result.breakdown.fractions()
    return rows


def render(rows: dict[str, dict[str, float]]) -> str:
    title = "Figure 6: The composition of JIT execution"
    return title + "\n" + "=" * len(title) + "\n" + render_stacked_fractions(rows)


def main() -> str:  # pragma: no cover - CLI convenience
    text = render(generate(repeats=1))
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
