"""Figure 5: performance on the MIPS platform.

Same four bars as Figure 4 under the MIPS configuration: the modelled
native backend is strong (FALCON and speculative code inherit it), while
the JIT "is not yet completely implemented on this platform" — several of
its selection optimizations are off and its register file is smaller.
``adapt`` is excluded, as in the paper.
"""

from __future__ import annotations

from repro.benchsuite.registry import benchmark_names
from repro.core.platformcfg import MIPS
from repro.experiments.harness import speedup_table
from repro.experiments.report import render_speedup_chart
from repro.experiments.figure4 import FALCON_OMITTED

ENGINES = ("mcc", "falcon", "jit", "spec")


def generate(
    names: list[str] | None = None,
    repeats: int = 3,
    scale_overrides: dict[str, tuple] | None = None,
) -> dict[str, dict[str, float]]:
    names = [
        n for n in (names or benchmark_names())
        if n not in MIPS.excluded_benchmarks
    ]
    table = speedup_table(
        names,
        engines=ENGINES,
        platform=MIPS,
        repeats=repeats,
        scale_overrides=scale_overrides,
    )
    for name in FALCON_OMITTED:
        if name in table:
            table[name].pop("falcon", None)
    return table


def render(table: dict[str, dict[str, float]]) -> str:
    return render_speedup_chart(
        table, engines=ENGINES,
        title="Figure 5: Performance on the MIPS platform",
    )


def main() -> str:  # pragma: no cover - CLI convenience
    text = render(generate(repeats=1))
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
