"""The adaptive-tiering experiment: speed *and* responsiveness at once.

The paper frames MaJIC as a trade between responsiveness (don't block
the prompt) and speed (run hot code compiled).  The adaptive tier
controller claims both: a mixed stream of calls starts on the
interpreter (no compile pause), and the controller promotes each
function interpreter -> JIT -> optimizing srcgen out-of-band as its
measured hotness crosses the thresholds — no ``speculate_all`` and no
manual ``jit_compile``.  This experiment drives one mixed workload
stream through four engines and compares:

* **interpreter** — the t_i baseline; zero prep, every call interpreted.
* **static jit** — the default session; first call per signature eats
  the JIT pause, the rest run compiled.
* **static spec** — ``speculate_all`` ahead of time; the prep column is
  the blocking compile pause the paper sets out to hide.
* **adaptive** — ``MajicSession(adaptive=True)``; zero prep, and the
  stream column includes every mid-stream promotion.  The
  *time-to-peak-tier* column reports how far into the stream the
  controller reached its steady-state tier assignment.

A second (warm) adaptive session over the same persistent cache then
restores the saved hotness profiles: it must reach the same peak tiers
with **zero** promotion recompiles — every winning compiled object
loads from disk.

Usage::

    PYTHONPATH=src python -m repro.experiments.adaptive
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field

from repro.benchsuite.registry import benchmark, benchmark_names, source_of
from repro.benchsuite.workloads import boxed_workload, checksum
from repro.core.majic import MajicSession, ensure_recursion_limit
from repro.experiments.report import format_table
from repro.frontend.parser import parse
from repro.interp.interpreter import Interpreter
from repro.runtime.builtins import GLOBAL_RANDOM
from repro.runtime.display import OutputSink

_SEED = 20020617  # PLDI 2002

#: The mixed stream: recursive scalar code, a Fortran-style stencil,
#: small-vector elementwise code and an iterative solver, interleaved.
DEFAULT_NAMES = ("fibonacci", "dirich", "fractal", "cgopt")

#: Small scales so the stream is call-bound, not compute-bound — the
#: regime where tier choice (and compile pauses) dominate wall time.
STREAM_SCALES = {
    "fibonacci": (12.0,),
    "dirich": (10.0, 0.5, 4.0),
    "fractal": (200.0,),
    "cgopt": (40.0, 1e-8, 60.0),
}


@dataclass
class EngineRun:
    """One engine's pass over the mixed stream."""

    label: str
    prep_s: float        #: blocking preparation (speculate_all) cost
    stream_s: float      #: wall time for the full call stream
    calls: int
    time_to_peak_s: float | None = None  #: adaptive only
    final_tiers: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.calls / self.stream_s if self.stream_s else 0.0


def _sources(names) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for name in names:
        spec = benchmark(name)
        for item in (name, *spec.helpers):
            if item not in seen:
                seen.add(item)
                out.append(source_of(item))
    return out


def _fresh_args(name: str):
    GLOBAL_RANDOM.seed(_SEED)
    return boxed_workload(name, STREAM_SCALES[name])


def _digest(outputs) -> float:
    return checksum(outputs[0]) if outputs else 0.0


def _run_interpreter_stream(names, rounds: int):
    table = {}
    for text in _sources(names):
        for fn in parse(text).functions:
            table[fn.name] = fn
    interp = Interpreter(function_lookup=table.get, sink=OutputSink())
    ensure_recursion_limit(100_000)
    digests: dict[str, float] = {}
    start = time.perf_counter()
    for _ in range(rounds):
        for name in names:
            args = _fresh_args(name)
            digests[name] = _digest(interp.call_function(table[name], args, 1))
    elapsed = time.perf_counter() - start
    run = EngineRun("interpreter", 0.0, elapsed, rounds * len(names))
    return run, digests


def _run_session_stream(
    label, names, rounds, speculate=False, passes=1, **kwargs
):
    session = MajicSession(seed=None, **kwargs)
    try:
        for text in _sources(names):
            session.add_source(text)
        prep_s = 0.0
        if speculate:
            start = time.perf_counter()
            session.speculate_all()
            prep_s = time.perf_counter() - start
        adaptive = session.tiering is not None
        if adaptive:
            # The warm-session analogue of speculate_all: restore saved
            # profiles up front (disk-cache hits) and let the async
            # fallback compiles land before the stream starts.  Cold
            # sessions have no profiles, so this is ~free and the ramp
            # stays in the stream.
            start = time.perf_counter()
            if session.tiering.restore_all():
                session.drain_speculation(timeout=60)
            prep_s = time.perf_counter() - start
        digests: dict[str, float] = {}
        marks: list[tuple[float, tuple]] = []
        stream_s = None
        # Steady-state engines run the stream ``passes`` times and keep
        # the best pass (noise control); a cold adaptive run is one-shot
        # by nature, so its single pass includes the promotion ramp.
        for pass_idx in range(passes):
            track = adaptive and pass_idx == 0
            start = time.perf_counter()
            for _ in range(rounds):
                for name in names:
                    args = _fresh_args(name)
                    digests[name] = _digest(
                        session.call_boxed(name, args, nargout=1)
                    )
                    if track:
                        marks.append((
                            time.perf_counter() - start,
                            tuple(session.tiering.tier_of(n) for n in names),
                        ))
            elapsed = time.perf_counter() - start
            stream_s = elapsed if stream_s is None else min(stream_s, elapsed)
        run = EngineRun(label, prep_s, stream_s, rounds * len(names))
        if adaptive:
            session.drain_speculation(timeout=120)
            peak = marks[-1][1]
            run.final_tiers = dict(zip(names, peak))
            for elapsed, tiers in marks:
                if tiers == peak:
                    run.time_to_peak_s = elapsed
                    break
        extras = {
            "jit_compiles": session.stats.jit_compiles,
            "speculative_compiles": session.stats.speculative_compiles,
            "cache_hits": session.stats.cache_hits,
        }
        if adaptive:
            extras["report"] = session.tiering.report()
        return run, digests, extras
    finally:
        session.close()


def generate(
    rounds: int = 40,
    names=None,
    cache_dir=None,
    policy=None,
    warm_rounds: int = 4,
) -> dict:
    """Run the mixed stream through every engine and a warm re-run.

    Returns ``{"engines": {label: EngineRun}, "warm": {...}, ...}``.
    Every engine's per-benchmark checksum is asserted bit-identical to
    the interpreter's before any number is reported.
    """
    names = tuple(names or DEFAULT_NAMES)
    unknown = set(names) - set(benchmark_names())
    if unknown:
        raise ValueError(f"unknown benchmarks: {sorted(unknown)}")

    interp_run, expected = _run_interpreter_stream(names, rounds)
    engines: dict[str, EngineRun] = {"interpreter": interp_run}

    jit_run, jit_digests, _ = _run_session_stream(
        "static jit", names, rounds, passes=3
    )
    spec_run, spec_digests, _ = _run_session_stream(
        "static spec", names, rounds, speculate=True, passes=3
    )
    engines["jit"] = jit_run
    engines["spec"] = spec_run

    def adaptive_stream(stream_rounds, passes):
        return _run_session_stream(
            "adaptive", names, stream_rounds, passes=passes,
            adaptive=True, cache_dir=cache_dir, tiering=policy,
        )

    if cache_dir is None:
        with tempfile.TemporaryDirectory(prefix="pymajic-adaptive-") as tmp:
            cache_dir = tmp
            cold_run, cold_digests, cold_extras = adaptive_stream(rounds, 1)
            warm_run, warm_digests, warm_extras = adaptive_stream(
                warm_rounds, 3
            )
    else:
        cold_run, cold_digests, cold_extras = adaptive_stream(rounds, 1)
        warm_run, warm_digests, warm_extras = adaptive_stream(warm_rounds, 3)
    engines["adaptive"] = cold_run

    for label, digests in (
        ("jit", jit_digests), ("spec", spec_digests),
        ("adaptive", cold_digests), ("adaptive-warm", warm_digests),
    ):
        assert digests == expected, (
            f"{label} diverged from the interpreter: "
            f"{digests!r} != {expected!r}"
        )

    warm_report = warm_extras["report"]
    warm = {
        "stream_s": warm_run.stream_s,
        "calls": warm_run.calls,
        "final_tiers": warm_run.final_tiers,
        "profile_restores": warm_report["profile_restores"],
        # The headline guarantee: the warm session reached its peak tiers
        # without compiling anything — profiles + the disk cache did it.
        "promotion_recompiles": (
            warm_extras["jit_compiles"] + warm_extras["speculative_compiles"]
        ),
        "cache_hits": warm_extras["cache_hits"],
    }
    return {
        "rounds": rounds,
        "names": names,
        "engines": engines,
        "warm": warm,
        "adaptive_report": cold_extras["report"],
    }


def render(result: dict) -> str:
    header = (
        "Adaptive tiering over a mixed call stream\n"
        "(prep = blocking compile pause before the stream; adaptive pays "
        "none and\n promotes mid-stream)"
    )
    rows = []
    for run in result["engines"].values():
        tiers = (
            " ".join(f"{k}:{v}" for k, v in run.final_tiers.items())
            if run.final_tiers else "-"
        )
        peak = (
            f"{run.time_to_peak_s * 1e3:.0f}"
            if run.time_to_peak_s is not None else "-"
        )
        rows.append([
            run.label,
            f"{run.prep_s * 1e3:.1f}",
            f"{run.stream_s * 1e3:.1f}",
            f"{run.throughput:.1f}",
            peak,
            tiers,
        ])
    table = format_table(
        ["engine", "prep (ms)", "stream (ms)", "calls/s",
         "to-peak (ms)", "final tiers"],
        rows,
    )
    warm = result["warm"]
    footer = (
        f"warm session: {warm['profile_restores']} profiles restored, "
        f"{warm['promotion_recompiles']} promotion recompiles, "
        f"{warm['cache_hits']} cache hits"
    )
    return header + "\n" + table + "\n" + footer


def main() -> str:  # pragma: no cover - CLI convenience
    text = render(generate())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
