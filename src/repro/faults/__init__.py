"""Fault injection and the differential robustness harness.

``repro.faults`` provides the pieces that let the test suite (and CI)
*prove* the tiered-execution safety property instead of assuming it:

* :class:`~repro.faults.plan.FaultPlan` — a deterministic, seeded,
  site/count-addressable schedule of injected failures, hooked into
  ``JitCompiler.compile``, ``SourceCompiler.compile`` and
  ``RuntimeSupport``;
* :mod:`~repro.faults.harness` — runs benchsuite programs under injected
  compile- and run-time faults and checks outputs stay bit-identical to
  the pure interpreter.
"""

from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    FiredFault,
    InjectedFault,
    RT_ANY,
    SITE_JIT,
    SITE_SPEC,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "InjectedFault",
    "RT_ANY",
    "SITE_JIT",
    "SITE_SPEC",
]
