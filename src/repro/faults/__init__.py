"""Fault injection and the differential robustness harness.

``repro.faults`` provides the pieces that let the test suite (and CI)
*prove* the tiered-execution safety property instead of assuming it:

* :class:`~repro.faults.plan.FaultPlan` — a deterministic, seeded,
  site/count-addressable schedule of injected failures, hooked into
  ``JitCompiler.compile``, ``SourceCompiler.compile`` and
  ``RuntimeSupport``;
* :mod:`~repro.faults.harness` — runs benchsuite programs under injected
  compile- and run-time faults and checks outputs stay bit-identical to
  the pure interpreter.
"""

from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    FiredFault,
    InjectedFault,
    RT_ANY,
    SITE_CACHE_CORRUPT,
    SITE_CACHE_PARTIAL,
    SITE_CRASH,
    SITE_HANG,
    SITE_JIT,
    SITE_OOM,
    SITE_SPEC,
    SimulatedCrash,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "InjectedFault",
    "SimulatedCrash",
    "RT_ANY",
    "SITE_JIT",
    "SITE_SPEC",
    "SITE_HANG",
    "SITE_CRASH",
    "SITE_OOM",
    "SITE_CACHE_CORRUPT",
    "SITE_CACHE_PARTIAL",
]
